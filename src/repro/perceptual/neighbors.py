"""Nearest-neighbour utilities over perceptual spaces.

These helpers back the paper's Table 2 (example movies and their five
nearest neighbours) and are also used for sanity checks of synthetic
spaces.  Everything is brute force but chunked, which is plenty for the
tens of thousands of items the experiments use.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import PerceptualSpaceError
from repro.perceptual.space import PerceptualSpace


def pairwise_distances(
    first: np.ndarray, second: np.ndarray | None = None, *, chunk_size: int = 2048
) -> np.ndarray:
    """Euclidean distance matrix between the rows of *first* and *second*.

    Computed in chunks to bound peak memory for large item sets.
    """
    first = np.asarray(first, dtype=np.float64)
    second = first if second is None else np.asarray(second, dtype=np.float64)
    if first.ndim != 2 or second.ndim != 2:
        raise PerceptualSpaceError("pairwise_distances expects 2-d arrays")
    if first.shape[1] != second.shape[1]:
        raise PerceptualSpaceError("dimensionality mismatch between the two point sets")
    result = np.empty((first.shape[0], second.shape[0]), dtype=np.float64)
    second_sq = np.einsum("ij,ij->i", second, second)
    for start in range(0, first.shape[0], chunk_size):
        block = first[start : start + chunk_size]
        block_sq = np.einsum("ij,ij->i", block, block)
        cross = block @ second.T
        squared = block_sq[:, None] + second_sq[None, :] - 2.0 * cross
        np.maximum(squared, 0.0, out=squared)
        result[start : start + chunk_size] = np.sqrt(squared)
    return result


def nearest_neighbors(
    space: PerceptualSpace,
    item_id: int,
    k: int = 5,
    *,
    candidate_ids: Sequence[int] | None = None,
) -> list[tuple[int, float]]:
    """The *k* nearest neighbours of *item_id* among *candidate_ids*.

    Defaults to searching the whole space; the item itself is excluded.
    """
    if candidate_ids is None:
        return space.nearest_neighbors(item_id, k)
    query = space.vector(item_id)[None, :]
    candidates = [int(c) for c in candidate_ids if int(c) != int(item_id)]
    if not candidates:
        return []
    matrix = space.vectors(candidates)
    distances = pairwise_distances(query, matrix)[0]
    order = np.argsort(distances, kind="stable")[:k]
    return [(candidates[i], float(distances[i])) for i in order]


def neighborhood_purity(
    space: PerceptualSpace,
    labels: dict[int, bool],
    *,
    k: int = 10,
    sample_ids: Sequence[int] | None = None,
) -> float:
    """Average fraction of an item's k nearest neighbours sharing its label.

    A quick structural quality measure for perceptual spaces: spaces that
    encode perception well place same-label items close together.
    """
    ids = [i for i in (sample_ids or space.item_ids) if i in labels]
    if not ids:
        raise PerceptualSpaceError("no labelled items to evaluate neighbourhood purity on")
    labelled_ids = [i for i in space.item_ids if i in labels]
    agreement = []
    for item_id in ids:
        neighbors = nearest_neighbors(space, item_id, k, candidate_ids=labelled_ids)
        if not neighbors:
            continue
        same = sum(1 for neighbor_id, _d in neighbors if labels[neighbor_id] == labels[item_id])
        agreement.append(same / len(neighbors))
    if not agreement:
        raise PerceptualSpaceError("no neighbourhoods could be evaluated")
    return float(np.mean(agreement))
