"""The perceptual space: item coordinates with similarity queries.

The space is what the schema-expansion layer consumes: a matrix of item
coordinates whose Euclidean geometry encodes the aggregated perception of
all raters.  It offers the operations the paper relies on — looking up item
vectors for classifier features, nearest-neighbour queries (Table 2) and
pairwise distances.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Sequence

import numpy as np

from repro.errors import PerceptualSpaceError, UnknownItemError


class PerceptualSpace:
    """Item coordinates in R^d plus identifier bookkeeping."""

    def __init__(
        self,
        item_ids: Sequence[int],
        coordinates: np.ndarray,
        *,
        metadata: Mapping[str, Any] | None = None,
    ) -> None:
        coordinates = np.asarray(coordinates, dtype=np.float64)
        if coordinates.ndim != 2:
            raise PerceptualSpaceError("coordinates must be a 2-d array")
        if len(item_ids) != coordinates.shape[0]:
            raise PerceptualSpaceError(
                f"{len(item_ids)} item ids but {coordinates.shape[0]} coordinate rows"
            )
        if len({int(i) for i in item_ids}) != len(item_ids):
            raise PerceptualSpaceError("item ids must be unique")
        self._item_ids = [int(i) for i in item_ids]
        self._coordinates = coordinates
        self._index = {item_id: position for position, item_id in enumerate(self._item_ids)}
        self.metadata = dict(metadata or {})

    # -- basic properties -----------------------------------------------------------

    @property
    def n_items(self) -> int:
        """Number of items in the space."""
        return len(self._item_ids)

    @property
    def n_dimensions(self) -> int:
        """Dimensionality d of the space."""
        return self._coordinates.shape[1]

    @property
    def item_ids(self) -> list[int]:
        """All item identifiers (in coordinate-row order)."""
        return list(self._item_ids)

    @property
    def coordinates(self) -> np.ndarray:
        """The full coordinate matrix (n_items x d); do not mutate."""
        return self._coordinates

    def __contains__(self, item_id: int) -> bool:
        return int(item_id) in self._index

    def __len__(self) -> int:
        return self.n_items

    def __repr__(self) -> str:
        return f"PerceptualSpace(n_items={self.n_items}, d={self.n_dimensions})"

    # -- lookups ----------------------------------------------------------------------

    def position(self, item_id: int) -> int:
        """Row index of *item_id* in the coordinate matrix."""
        try:
            return self._index[int(item_id)]
        except KeyError as exc:
            raise UnknownItemError(item_id) from exc

    def vector(self, item_id: int) -> np.ndarray:
        """Coordinate vector of *item_id*."""
        return self._coordinates[self.position(item_id)]

    def vectors(self, item_ids: Iterable[int]) -> np.ndarray:
        """Matrix of coordinate vectors for *item_ids* (in the given order)."""
        rows = [self.position(item_id) for item_id in item_ids]
        return self._coordinates[rows]

    def feature_matrix(self, item_ids: Iterable[int] | None = None) -> tuple[np.ndarray, list[int]]:
        """Return ``(X, ids)`` for the given items (default: all items).

        This is the feature representation handed to the extraction
        classifier in Section 3.4.
        """
        if item_ids is None:
            return self._coordinates.copy(), list(self._item_ids)
        ids = [int(i) for i in item_ids]
        return self.vectors(ids), ids

    # -- geometry -----------------------------------------------------------------------

    def distance(self, first_item: int, second_item: int) -> float:
        """Euclidean distance between two items."""
        return float(np.linalg.norm(self.vector(first_item) - self.vector(second_item)))

    def distances_from(self, item_id: int) -> np.ndarray:
        """Distances from *item_id* to every item (aligned with :attr:`item_ids`)."""
        diff = self._coordinates - self.vector(item_id)
        return np.sqrt(np.einsum("ij,ij->i", diff, diff))

    def nearest_neighbors(
        self, item_id: int, k: int = 5, *, exclude_self: bool = True
    ) -> list[tuple[int, float]]:
        """The *k* items closest to *item_id* as ``(item_id, distance)`` pairs."""
        if k <= 0:
            raise PerceptualSpaceError("k must be positive")
        distances = self.distances_from(item_id)
        order = np.argsort(distances, kind="stable")
        neighbors: list[tuple[int, float]] = []
        own_position = self.position(item_id)
        for position in order:
            if exclude_self and position == own_position:
                continue
            neighbors.append((self._item_ids[position], float(distances[position])))
            if len(neighbors) == k:
                break
        return neighbors

    # -- derived spaces -------------------------------------------------------------------

    def subspace(self, item_ids: Iterable[int]) -> "PerceptualSpace":
        """A new space restricted to *item_ids* (keeping their coordinates)."""
        ids = [int(i) for i in item_ids]
        return PerceptualSpace(ids, self.vectors(ids), metadata=dict(self.metadata))

    def with_metadata(self, **entries: Any) -> "PerceptualSpace":
        """Return a copy of the space with extra metadata entries."""
        metadata = dict(self.metadata)
        metadata.update(entries)
        return PerceptualSpace(self._item_ids, self._coordinates.copy(), metadata=metadata)
