"""Quality-control policies applied by the simulated crowd platform.

Three mechanisms from the paper are modelled:

* **Country exclusion** (Experiment 2): requesters exclude the few countries
  almost all malicious workers originated from.
* **Trusted-worker pools**: only workers who have proven their honesty and
  knowledge receive the HITs (used for gold-sample collection).
* **Gold questions** (Experiment 3): items with known answers are mixed into
  the HITs; workers who repeatedly answer them incorrectly are excluded
  during execution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.crowd.hit import Answer, Judgment, TaskItem
from repro.crowd.worker import WorkerPool, WorkerProfile


class QualityPolicy:
    """Base class for quality-control policies (no-op by default)."""

    def filter_pool(self, pool: WorkerPool) -> WorkerPool:
        """Restrict which workers may receive HITs."""
        return pool

    def on_judgment(self, worker: WorkerProfile, item: TaskItem, judgment: Judgment) -> None:
        """Observe a submitted judgment (gold checking etc.)."""

    def is_banned(self, worker_id: int) -> bool:
        """True if the worker must not receive further assignments."""
        return False


@dataclass
class CountryFilter(QualityPolicy):
    """Exclude workers from the given countries upfront."""

    excluded_countries: tuple[str, ...]

    def __init__(self, excluded_countries: Iterable[str]) -> None:
        self.excluded_countries = tuple(c.upper() for c in excluded_countries)

    def filter_pool(self, pool: WorkerPool) -> WorkerPool:
        """Remove all workers whose country is excluded."""
        return pool.without_countries(self.excluded_countries)


class TrustedWorkerPolicy(QualityPolicy):
    """Only dispatch HITs to workers marked as trusted."""

    def filter_pool(self, pool: WorkerPool) -> WorkerPool:
        """Keep only trusted workers."""
        return pool.only_trusted()


@dataclass
class GoldQuestionPolicy(QualityPolicy):
    """Ban workers who repeatedly fail items with known answers."""

    max_gold_errors: int = 2
    _errors: dict[int, int] = field(default_factory=dict)
    _banned: set[int] = field(default_factory=set)

    def on_judgment(self, worker: WorkerProfile, item: TaskItem, judgment: Judgment) -> None:
        """Check gold items and ban the worker when the error budget is spent."""
        if not item.is_gold or item.gold_answer is None:
            return
        if judgment.answer is Answer.DONT_KNOW:
            return
        if judgment.answer is not item.gold_answer:
            errors = self._errors.get(worker.worker_id, 0) + 1
            self._errors[worker.worker_id] = errors
            if errors >= self.max_gold_errors:
                self._banned.add(worker.worker_id)

    def is_banned(self, worker_id: int) -> bool:
        """True once the worker exceeded the allowed number of gold errors."""
        return worker_id in self._banned

    @property
    def banned_workers(self) -> frozenset[int]:
        """Identifiers of all banned workers."""
        return frozenset(self._banned)

    @property
    def gold_error_counts(self) -> dict[int, int]:
        """Number of gold errors observed per worker."""
        return dict(self._errors)


class QualityControl:
    """Composite of quality policies applied together."""

    def __init__(self, policies: Iterable[QualityPolicy] = ()) -> None:
        self._policies = list(policies)

    @classmethod
    def none(cls) -> "QualityControl":
        """A quality control that does nothing (Experiment 1)."""
        return cls()

    def add(self, policy: QualityPolicy) -> "QualityControl":
        """Add *policy* and return self for chaining."""
        self._policies.append(policy)
        return self

    @property
    def policies(self) -> tuple[QualityPolicy, ...]:
        """All registered policies."""
        return tuple(self._policies)

    def filter_pool(self, pool: WorkerPool) -> WorkerPool:
        """Apply every policy's pool filter in order."""
        for policy in self._policies:
            pool = policy.filter_pool(pool)
        return pool

    def on_judgment(self, worker: WorkerProfile, item: TaskItem, judgment: Judgment) -> None:
        """Forward a submitted judgment to every policy."""
        for policy in self._policies:
            policy.on_judgment(worker, item, judgment)

    def is_banned(self, worker_id: int) -> bool:
        """True if any policy has banned the worker."""
        return any(policy.is_banned(worker_id) for policy in self._policies)
