"""Species estimation over streaming crowd answers (open-world enumeration).

When the crowd *enumerates* an open-ended result set ("list all ice cream
flavors") instead of labelling known rows, the engine has to decide when to
stop paying for more HITs.  "Getting It All from the Crowd" (Trushkowsky
et al., ICDE 2013) frames this as a species-estimation problem: the stream
of worker answers is a sample from an unknown population of distinct items,
and sample-coverage estimators predict how much of the population the
sample has already seen.

:class:`Chao92Estimator` implements the estimator this module is named
after (Chao & Lee 1992, sample-coverage based) in streaming form:

* the **sample coverage** ``C_hat = 1 - f1/n`` (``f1`` = singletons, ``n``
  = total observations) estimates the probability mass of the species seen
  so far;
* the **population estimate** is ``N_hat = D / C_hat`` (``D`` = distinct
  species observed);
* when every observation is a singleton (``f1 == n``, the degenerate
  small-sample case where ``C_hat == 0`` would divide by zero), the
  estimator falls back to the bias-corrected Chao1 form
  ``N_hat = D + f1*(f1-1) / (2*(f2+1))``, which is finite even with no
  doubletons (``f2 == 0``).

The two forms agree exactly on the boundary (an all-singleton sample of
size ``D`` yields ``D*(D+1)/2`` either way), which gives the estimator the
monotonicity properties the stopping rule relies on — observing a
duplicate can never *raise* ``est_total`` (see
``tests/crowd/test_estimation.py`` for the property suite).

No coefficient-of-variation correction term is applied: the homogeneous
form keeps the estimator deterministic and provably monotone under
duplicate-only batches, which is what makes the stopping rule safe to gate
in CI.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, Iterable, Optional

__all__ = [
    "Chao92Estimator",
    "ENUMERATION_PREFIX",
    "ENUMERATION_TABLE",
    "EnumerationStats",
    "enumeration_attribute",
    "enumeration_predicate",
    "normalize_entity",
]

_WHITESPACE = re.compile(r"\s+")

#: Synthetic attribute-name prefix enumeration batches are requested under.
#: Value sources recognise it to switch from fill mode (answer one cell per
#: row) to enumeration mode (answer one *list* of items per batch index).
ENUMERATION_PREFIX = "__enum__:"

#: Synthetic table name open-world enumerations use for answer-cache keys
#: (one cache cell per (predicate, batch index)).  Shared between the
#: ``CrowdEnumerate`` operator and the durability layer, which journals
#: dispatched batches and warm-starts recovered answers under this key.
ENUMERATION_TABLE = "__crowd__"


def enumeration_attribute(predicate: str) -> str:
    """The synthetic attribute name enumeration batches use for *predicate*."""
    return ENUMERATION_PREFIX + predicate


def enumeration_predicate(attribute: str) -> Optional[str]:
    """The predicate of an enumeration attribute, or None for fill attributes."""
    if attribute.startswith(ENUMERATION_PREFIX):
        return attribute[len(ENUMERATION_PREFIX):]
    return None


def normalize_entity(value: Any) -> str:
    """Canonical dedup key for one enumerated answer.

    Entity resolution for open-world answers is deliberately simple and
    deterministic: case folding plus whitespace collapsing, so "Rocky
    Road", "rocky road" and "ROCKY  ROAD" resolve to one species while
    genuinely different answers stay distinct.
    """
    return _WHITESPACE.sub(" ", str(value).strip()).casefold()


class Chao92Estimator:
    """Streaming Chao92 sample-coverage estimator over answer keys.

    Feed every raw crowd answer through :meth:`observe` (already-normalized
    keys); the estimator maintains the frequency-of-frequencies counters
    (``f1``/``f2``) incrementally, so each observation is O(1) and the
    stopping rule can be evaluated after every HIT batch.
    """

    def __init__(self) -> None:
        self._counts: dict[str, int] = {}
        self._n = 0
        self._f1 = 0
        self._f2 = 0

    # -- stream input --------------------------------------------------------

    def observe(self, key: str) -> bool:
        """Record one observation of *key*; True if it is new to the sample."""
        self._n += 1
        count = self._counts.get(key, 0) + 1
        self._counts[key] = count
        if count == 1:
            self._f1 += 1
        elif count == 2:
            self._f1 -= 1
            self._f2 += 1
        elif count == 3:
            self._f2 -= 1
        return count == 1

    def observe_all(self, keys: Iterable[str]) -> int:
        """Record a batch of observations; returns how many were new."""
        return sum(1 for key in keys if self.observe(key))

    def __contains__(self, key: str) -> bool:
        return key in self._counts

    # -- counters ------------------------------------------------------------

    @property
    def sample_size(self) -> int:
        """``n``: total observations (with duplicates)."""
        return self._n

    @property
    def unique_seen(self) -> int:
        """``D``: distinct species observed so far."""
        return len(self._counts)

    @property
    def singletons(self) -> int:
        """``f1``: species observed exactly once."""
        return self._f1

    @property
    def doubletons(self) -> int:
        """``f2``: species observed exactly twice."""
        return self._f2

    # -- estimates -----------------------------------------------------------

    def coverage(self) -> float:
        """Sample coverage ``C_hat = 1 - f1/n``, clamped into [0, 1]."""
        if self._n == 0:
            return 0.0
        return min(1.0, max(0.0, 1.0 - self.singletons / self._n))

    def est_total(self) -> float:
        """Estimated number of distinct species in the population.

        ``D / C_hat`` when the sample coverage is positive; the
        bias-corrected Chao1 fallback ``D + f1*(f1-1)/(2*(f2+1))`` when the
        sample is too small to carry a coverage estimate (all singletons).
        """
        distinct = self.unique_seen
        if distinct == 0:
            return 0.0
        coverage = self.coverage()
        if coverage > 0.0:
            return distinct / coverage
        f1 = self.singletons
        return distinct + (f1 * (f1 - 1)) / (2.0 * (self.doubletons + 1))

    def est_coverage(self) -> float:
        """Estimated fraction of the population already seen (``D / N_hat``)."""
        total = self.est_total()
        if total <= 0.0:
            return 0.0
        return min(1.0, max(0.0, self.unique_seen / total))


@dataclass
class EnumerationStats:
    """Counters of one open-world enumeration, as surfaced everywhere.

    The same object backs the ``CrowdEnumerate`` operator's EXPLAIN ANALYZE
    line, the :class:`~repro.db.sql.executor.QueryResult.enumeration` field
    of ``INSERT ... FROM CROWD``, and the ``enumeration`` response field of
    the wire protocol — one shape, three surfaces.
    """

    predicate: str = ""
    rows_enumerated: int = 0
    unique_seen: int = 0
    est_total: float = 0.0
    est_coverage: float = 0.0
    stopped_on: Optional[str] = None
    batches: int = 0
    sample_size: int = 0
    cache_hits: int = 0
    coalesced: int = 0
    cost: float = 0.0
    completeness_target: Optional[float] = None
    budget: Optional[float] = None
    _extra: dict[str, Any] = field(default_factory=dict, repr=False)

    def as_dict(self) -> dict[str, Any]:
        """JSON-safe dict for the wire protocol and client surfaces."""
        return {
            "predicate": self.predicate,
            "rows_enumerated": self.rows_enumerated,
            "unique_seen": self.unique_seen,
            "est_total": round(self.est_total, 4),
            "est_coverage": round(self.est_coverage, 4),
            "stopped_on": self.stopped_on,
            "batches": self.batches,
            "sample_size": self.sample_size,
            "cache_hits": self.cache_hits,
            "coalesced": self.coalesced,
            "cost": round(self.cost, 6),
            "completeness_target": self.completeness_target,
            "budget": self.budget,
        }
