"""Cost model and spending ledger for crowd-sourcing runs.

The paper reports costs as (number of HIT assignments) x (payment per HIT)
plus "a small service fee paid to Crowdflower"; the default fee rate here
follows CrowdFlower's historical ~20 % markup but is configurable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import BudgetExceededError


@dataclass(frozen=True)
class CostModel:
    """Pricing of a crowd-sourcing service."""

    payment_per_hit: float = 0.02
    service_fee_rate: float = 0.0
    budget: float | None = None

    def assignment_cost(self) -> float:
        """Total cost of one completed HIT assignment (payment + fee)."""
        return self.payment_per_hit * (1.0 + self.service_fee_rate)

    def cost_of(self, n_assignments: int) -> float:
        """Cost of *n_assignments* completed assignments."""
        return n_assignments * self.assignment_cost()


@dataclass
class SpendingLedger:
    """Tracks money spent over simulated time."""

    cost_model: CostModel
    total_spent: float = 0.0
    entries: list[tuple[float, float]] = field(default_factory=list)

    def charge_assignment(self, timestamp_minutes: float) -> float:
        """Charge one completed assignment at *timestamp_minutes*.

        Raises :class:`~repro.errors.BudgetExceededError` if the charge
        would exceed the configured budget.
        """
        cost = self.cost_model.assignment_cost()
        if (
            self.cost_model.budget is not None
            and self.total_spent + cost > self.cost_model.budget + 1e-12
        ):
            raise BudgetExceededError(self.cost_model.budget, self.total_spent + cost)
        self.total_spent += cost
        self.entries.append((timestamp_minutes, self.total_spent))
        return cost

    def spent_by(self, timestamp_minutes: float) -> float:
        """Cumulative spending up to and including *timestamp_minutes*."""
        spent = 0.0
        for time_point, cumulative in self.entries:
            if time_point <= timestamp_minutes:
                spent = cumulative
            else:
                break
        return spent

    def remaining_budget(self) -> float | None:
        """Remaining budget, or None if no budget was configured."""
        if self.cost_model.budget is None:
            return None
        return max(0.0, self.cost_model.budget - self.total_spent)
