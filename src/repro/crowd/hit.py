"""HITs (Human Intelligence Tasks), questions, answers and judgments.

Terminology follows the paper: a *HIT* is the smallest unit of
crowd-sourceable work (here: judge a batch of items on one question), many
similar HITs are organised into a *HIT group*, and each completed item
judgment by one worker is recorded as a :class:`Judgment`.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

from repro.errors import HITConfigurationError


class Answer(enum.Enum):
    """Possible answers to a binary perceptual classification question."""

    POSITIVE = "positive"
    NEGATIVE = "negative"
    DONT_KNOW = "dont_know"

    @classmethod
    def from_bool(cls, value: bool) -> "Answer":
        """Map a boolean ground-truth label to the corresponding answer."""
        return cls.POSITIVE if value else cls.NEGATIVE

    def to_bool(self) -> bool | None:
        """Map this answer back to a boolean label (None for DONT_KNOW)."""
        if self is Answer.POSITIVE:
            return True
        if self is Answer.NEGATIVE:
            return False
        return None


@dataclass(frozen=True)
class Question:
    """The question asked in a HIT.

    Parameters
    ----------
    attribute:
        Name of the attribute being judged (e.g. ``is_comedy``).
    prompt:
        Instruction text shown to the worker.
    allow_dont_know:
        Whether the "I do not know this item" option is offered.  Removing
        it (as in the paper's Experiment 3) forces workers to answer, which
        only makes sense for lookup-style factual tasks.
    lookup_allowed:
        Whether workers are instructed to look up the answer on the Web.
    """

    attribute: str
    prompt: str = ""
    allow_dont_know: bool = True
    lookup_allowed: bool = False


@dataclass(frozen=True)
class TaskItem:
    """One item to be judged inside a HIT."""

    item_id: int
    payload: dict[str, Any] = field(default_factory=dict)
    is_gold: bool = False
    gold_answer: Answer | None = None


@dataclass
class HIT:
    """A batch of task items judged together by a single worker assignment."""

    hit_id: int
    question: Question
    items: tuple[TaskItem, ...]
    payment: float

    def __post_init__(self) -> None:
        if not self.items:
            raise HITConfigurationError(f"HIT {self.hit_id} contains no items")
        if self.payment < 0:
            raise HITConfigurationError(f"HIT {self.hit_id} has negative payment")

    def __len__(self) -> int:
        return len(self.items)

    @property
    def gold_items(self) -> tuple[TaskItem, ...]:
        """Items in this HIT whose correct answer is known upfront."""
        return tuple(item for item in self.items if item.is_gold)


@dataclass(frozen=True)
class Judgment:
    """One answer given by one worker to one item of a HIT assignment."""

    item_id: int
    worker_id: int
    answer: Answer
    hit_id: int
    timestamp_minutes: float
    is_gold: bool = False

    @property
    def informative(self) -> bool:
        """True unless the worker declined to judge the item."""
        return self.answer is not Answer.DONT_KNOW


@dataclass
class HITGroup:
    """A group of HITs covering a set of items with repeated judgments.

    The group asks *question* about every item in *items*; each item must be
    judged by ``judgments_per_item`` distinct workers, and items are bundled
    into HITs of ``items_per_hit``.
    """

    question: Question
    items: Sequence[TaskItem]
    judgments_per_item: int = 10
    items_per_hit: int = 10
    payment_per_hit: float = 0.02

    def __post_init__(self) -> None:
        if self.judgments_per_item <= 0:
            raise HITConfigurationError("judgments_per_item must be positive")
        if self.items_per_hit <= 0:
            raise HITConfigurationError("items_per_hit must be positive")
        if not self.items:
            raise HITConfigurationError("a HIT group needs at least one item")

    def build_hits(self) -> list[HIT]:
        """Partition the items into HITs of ``items_per_hit`` each."""
        hits: list[HIT] = []
        counter = itertools.count(1)
        batch: list[TaskItem] = []
        for item in self.items:
            batch.append(item)
            if len(batch) == self.items_per_hit:
                hits.append(
                    HIT(
                        hit_id=next(counter),
                        question=self.question,
                        items=tuple(batch),
                        payment=self.payment_per_hit,
                    )
                )
                batch = []
        if batch:
            hits.append(
                HIT(
                    hit_id=next(counter),
                    question=self.question,
                    items=tuple(batch),
                    payment=self.payment_per_hit,
                )
            )
        return hits

    @property
    def total_assignments(self) -> int:
        """Number of HIT assignments needed to satisfy ``judgments_per_item``."""
        return len(self.build_hits()) * self.judgments_per_item

    @property
    def total_judgments(self) -> int:
        """Number of individual item judgments the group will produce."""
        return len(self.items) * self.judgments_per_item

    @property
    def max_cost(self) -> float:
        """Cost of completing every assignment (before service fees)."""
        return self.total_assignments * self.payment_per_hit


def make_task_items(
    item_ids: Iterable[int],
    *,
    payloads: dict[int, dict[str, Any]] | None = None,
    gold_answers: dict[int, Answer] | None = None,
) -> list[TaskItem]:
    """Convenience constructor for a list of :class:`TaskItem` objects."""
    payloads = payloads or {}
    gold_answers = gold_answers or {}
    items = []
    for item_id in item_ids:
        gold = gold_answers.get(item_id)
        items.append(
            TaskItem(
                item_id=item_id,
                payload=payloads.get(item_id, {}),
                is_gold=gold is not None,
                gold_answer=gold,
            )
        )
    return items
