"""Simulated crowd workers.

The paper's Experiment 1 analysis identifies two clearly separated worker
groups: spammers "who supposedly knew nearly every movie (94 %) and judged
them as being comedies in 56 % of all cases", and honest workers "who knew
only roughly 26 % of all movies" and whose judgments reflect the true class
ratio.  Experiment 3 adds a third behaviour: workers who look the answer up
on the Web (slow, but ~95 % accurate).  The worker models here are
parameterised directly from those observations.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.crowd.hit import Answer, Question, TaskItem
from repro.utils.rng import RandomState, ensure_rng, spawn_rng


class WorkerArchetype(enum.Enum):
    """Behavioural classes of simulated workers."""

    HONEST = "honest"
    SPAMMER = "spammer"
    LOOKUP = "lookup"
    EXPERT = "expert"


@dataclass
class WorkerProfile:
    """Behavioural parameters of one simulated worker.

    Parameters
    ----------
    worker_id:
        Unique identifier.
    archetype:
        Behavioural class (used for reporting; behaviour itself is fully
        described by the remaining parameters).
    country:
        ISO-style country code; quality control may exclude countries.
    knowledge_prob:
        Probability the worker actually knows a given item.
    claimed_knowledge_prob:
        Probability the worker *claims* to know an item (spammers claim to
        know nearly everything).
    accuracy:
        Probability of judging an item they know correctly.
    positive_bias:
        Probability of answering POSITIVE when guessing blindly.
    minutes_per_hit:
        Mean time to complete one HIT assignment.
    session_hits:
        Mean number of HIT assignments the worker completes before leaving.
    trusted:
        Whether the worker belongs to the requester's trusted pool.
    """

    worker_id: int
    archetype: WorkerArchetype
    country: str = "US"
    knowledge_prob: float = 0.26
    claimed_knowledge_prob: float | None = None
    accuracy: float = 0.85
    positive_bias: float = 0.5
    minutes_per_hit: float = 1.0
    session_hits: int = 20
    trusted: bool = False

    def __post_init__(self) -> None:
        if self.claimed_knowledge_prob is None:
            self.claimed_knowledge_prob = self.knowledge_prob
        for name in ("knowledge_prob", "claimed_knowledge_prob", "accuracy", "positive_bias"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.minutes_per_hit <= 0:
            raise ValueError("minutes_per_hit must be positive")
        if self.session_hits <= 0:
            raise ValueError("session_hits must be positive")

    # -- behaviour --------------------------------------------------------------

    def judge(
        self,
        item: TaskItem,
        question: Question,
        true_answer: Answer,
        rng: np.random.Generator,
    ) -> Answer:
        """Produce this worker's answer for *item* given the ground truth.

        The ground truth is only used to *simulate* the worker's cognition;
        a real platform obviously does not know it.
        """
        if question.lookup_allowed:
            # Worker looks the answer up on the Web: accurate but not perfect
            # (source disagreement, sloppiness).
            if rng.random() < self.accuracy:
                return true_answer
            return self._flip(true_answer)

        claims_to_know = rng.random() < float(self.claimed_knowledge_prob)
        actually_knows = rng.random() < self.knowledge_prob

        if not claims_to_know and question.allow_dont_know:
            return Answer.DONT_KNOW

        if actually_knows:
            if rng.random() < self.accuracy:
                return true_answer
            return self._flip(true_answer)

        # Claims to know but does not: guess with the worker's positive bias.
        if rng.random() < self.positive_bias:
            return Answer.POSITIVE
        return Answer.NEGATIVE

    @staticmethod
    def _flip(answer: Answer) -> Answer:
        return Answer.NEGATIVE if answer is Answer.POSITIVE else Answer.POSITIVE

    def draw_hit_duration(self, rng: np.random.Generator) -> float:
        """Sample the time (simulated minutes) to complete one HIT."""
        # Log-normal noise around the worker's mean speed keeps durations
        # positive and right-skewed, like real completion times.
        noise = rng.lognormal(mean=0.0, sigma=0.35)
        return float(self.minutes_per_hit * noise)

    def draw_session_length(self, rng: np.random.Generator) -> int:
        """Sample how many HIT assignments the worker completes before leaving."""
        return int(max(1, rng.geometric(1.0 / self.session_hits)))


# ---------------------------------------------------------------------------
# Worker factory helpers (parameterised from the paper's observations)
# ---------------------------------------------------------------------------

#: Countries the paper's Experiment 2 heuristic would exclude.  The names are
#: synthetic placeholders — what matters is that spammers concentrate there.
SPAM_COUNTRIES = ("XX", "YY", "ZZ")
HONEST_COUNTRIES = ("US", "GB", "DE", "CA", "FR", "IN", "AU", "NL")


def make_spam_worker(worker_id: int, rng: np.random.Generator) -> WorkerProfile:
    """A worker who claims to know ~94 % of items and answers arbitrarily."""
    return WorkerProfile(
        worker_id=worker_id,
        archetype=WorkerArchetype.SPAMMER,
        country=str(rng.choice(SPAM_COUNTRIES)),
        knowledge_prob=0.10,
        claimed_knowledge_prob=0.94,
        accuracy=0.60,
        positive_bias=0.56,
        minutes_per_hit=float(rng.uniform(0.3, 0.8)),
        session_hits=40,
    )


def make_honest_worker(worker_id: int, rng: np.random.Generator) -> WorkerProfile:
    """A worker who only judges items they know and does so fairly well."""
    return WorkerProfile(
        worker_id=worker_id,
        archetype=WorkerArchetype.HONEST,
        country=str(rng.choice(HONEST_COUNTRIES)),
        knowledge_prob=float(rng.uniform(0.18, 0.34)),
        claimed_knowledge_prob=None,
        accuracy=float(rng.uniform(0.82, 0.92)),
        positive_bias=0.32,
        minutes_per_hit=float(rng.uniform(0.8, 1.6)),
        session_hits=25,
    )


def make_lookup_worker(worker_id: int, rng: np.random.Generator) -> WorkerProfile:
    """A worker who looks answers up on the Web: accurate but slow."""
    return WorkerProfile(
        worker_id=worker_id,
        archetype=WorkerArchetype.LOOKUP,
        country=str(rng.choice(HONEST_COUNTRIES + SPAM_COUNTRIES)),
        knowledge_prob=0.26,
        claimed_knowledge_prob=1.0,
        accuracy=float(rng.uniform(0.92, 0.97)),
        positive_bias=0.40,
        minutes_per_hit=float(rng.uniform(3.0, 6.0)),
        session_hits=30,
    )


def make_expert_worker(worker_id: int, rng: np.random.Generator) -> WorkerProfile:
    """A trusted domain expert used for gold-sample collection."""
    return WorkerProfile(
        worker_id=worker_id,
        archetype=WorkerArchetype.EXPERT,
        country=str(rng.choice(HONEST_COUNTRIES)),
        knowledge_prob=0.95,
        claimed_knowledge_prob=0.95,
        accuracy=0.97,
        positive_bias=0.30,
        minutes_per_hit=float(rng.uniform(1.0, 2.0)),
        session_hits=50,
        trusted=True,
    )


class WorkerPool:
    """A population of simulated workers with a given archetype mix.

    The pool size models the paper's observation that "each requester in a
    crowd-sourcing platform can only utilize a relatively small human worker
    pool": experiments draw arriving workers from this finite population.
    """

    def __init__(self, workers: Sequence[WorkerProfile]) -> None:
        if not workers:
            raise ValueError("worker pool must not be empty")
        self._workers = list(workers)

    @classmethod
    def build(
        cls,
        *,
        n_honest: int = 0,
        n_spammers: int = 0,
        n_lookup: int = 0,
        n_experts: int = 0,
        seed: RandomState = None,
    ) -> "WorkerPool":
        """Construct a pool with the given archetype counts."""
        rng = ensure_rng(seed)
        counter = itertools.count(1)
        workers: list[WorkerProfile] = []
        for _ in range(n_honest):
            workers.append(make_honest_worker(next(counter), rng))
        for _ in range(n_spammers):
            workers.append(make_spam_worker(next(counter), rng))
        for _ in range(n_lookup):
            workers.append(make_lookup_worker(next(counter), rng))
        for _ in range(n_experts):
            workers.append(make_expert_worker(next(counter), rng))
        return cls(workers)

    def __len__(self) -> int:
        return len(self._workers)

    def __iter__(self):
        return iter(self._workers)

    @property
    def workers(self) -> tuple[WorkerProfile, ...]:
        """All workers in the pool."""
        return tuple(self._workers)

    def filter(self, predicate) -> "WorkerPool":
        """Return a new pool with only the workers satisfying *predicate*."""
        selected = [worker for worker in self._workers if predicate(worker)]
        if not selected:
            raise ValueError("filter removed every worker from the pool")
        return WorkerPool(selected)

    def without_countries(self, countries: Iterable[str]) -> "WorkerPool":
        """Return a pool excluding workers from the given countries."""
        excluded = {country.upper() for country in countries}
        return self.filter(lambda worker: worker.country.upper() not in excluded)

    def only_trusted(self) -> "WorkerPool":
        """Return a pool with only trusted workers."""
        return self.filter(lambda worker: worker.trusted)

    def arrival_order(self, seed: RandomState = None) -> list[WorkerProfile]:
        """Return the workers in a randomised arrival order."""
        rng = spawn_rng(seed, "worker-arrival")
        order = rng.permutation(len(self._workers))
        return [self._workers[i] for i in order]

    def archetype_counts(self) -> dict[WorkerArchetype, int]:
        """Histogram of archetypes in the pool."""
        counts: dict[WorkerArchetype, int] = {}
        for worker in self._workers:
            counts[worker.archetype] = counts.get(worker.archetype, 0) + 1
        return counts
