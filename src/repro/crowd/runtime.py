"""Concurrent crowd-acquisition runtime with cross-query answer caching.

The query engine's acquisition operators
(:class:`~repro.db.sql.operators.CrowdFill` and
:class:`~repro.db.sql.operators.PredictFill`) do not talk to a
:class:`~repro.db.crowd_operators.ValueSource` directly any more: they hand
their per-attribute HIT-group batches to an :class:`AcquisitionRuntime`,
which is shared by every connection of a catalog.  The runtime adds the
three behaviours that make crowd-backed queries tractable under concurrent
traffic — crowd latency dominates query time, so the wins come from
overlapping and deduplicating platform work, not from faster CPU:

* **concurrent dispatch** — a bounded worker pool (``max_concurrent_batches``
  threads) executes the platform calls of different attributes and batches
  in parallel, so a query touching four crowd-sourced columns pays one
  platform round-trip of wall-clock latency instead of four;
* **in-flight coalescing** — a registry of pending ``(table, attribute,
  rowid)`` cells lets concurrently executing cursors (and connections
  sharing a catalog) join a dispatch another query already started instead
  of paying the platform twice for the same cell;
* **cross-query answer caching** — an :class:`AnswerCache` (capacity- and
  TTL-bounded, LRU) serves repeat requests with zero platform calls.  The
  cache is *provenance-aware by construction*: only values that came back
  from a crowd dispatch are ever inserted, so predicted cells can never
  poison it, and a direct ``UPDATE`` on a cached cell invalidates its entry
  (the storage layer forwards cell invalidations through the catalog).

The runtime itself never interprets values; it moves batches, deduplicates
cells and accounts statistics.  Determinism under concurrency is the value
source's job (see
:class:`~repro.crowd.sources.SimulatedCrowdValueSource`, which derives its
per-dispatch child seeds from request identity rather than dispatch order).
"""

from __future__ import annotations

import threading
import time
import weakref
from collections import OrderedDict
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

from repro.crowd.worker_quality import WorkerQualityTracker
from repro.db.types import is_missing

__all__ = ["AcquisitionRuntime", "AnswerCache", "AnswerCacheStats", "AcquisitionOutcome"]

#: A cached/coalesced cell: ``(table, attribute, rowid)`` (names lowercased).
CellKey = tuple[str, str, int]


def _cell_key(table: str, attribute: str, rowid: int) -> CellKey:
    return (table.lower(), attribute.lower(), rowid)


# ---------------------------------------------------------------------------
# Answer cache
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class AnswerCacheStats:
    """Counters of an :class:`AnswerCache` (monotonic since creation)."""

    hits: int
    misses: int
    expirations: int
    evictions: int
    invalidations: int
    size: int
    capacity: int

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


@dataclass
class _CacheEntry:
    value: Any
    inserted_at: float


class AnswerCache:
    """Cross-query cache of crowd answers, keyed on ``(table, attribute, rowid)``.

    * **Capacity-bounded**: at most *capacity* entries; the least recently
      *used* entry is evicted on overflow (lookups refresh recency).
    * **TTL-bounded**: entries older than *ttl_seconds* expire on lookup
      (``None`` disables expiry).  Expired cells look exactly like misses,
      which is what triggers re-acquisition from the platform.
    * **Provenance-aware**: the :class:`AcquisitionRuntime` inserts only
      values returned by a crowd dispatch — predicted cells never enter the
      cache, so a cache hit is always a real (aggregated) human answer.
    * **Invalidation**: a direct ``UPDATE`` of a cell makes the stored value
      authoritative again; the storage layer calls :meth:`invalidate` so the
      stale crowd answer is dropped.

    All methods are thread-safe.  *clock* is injectable for TTL tests.
    """

    def __init__(
        self,
        capacity: int = 1024,
        ttl_seconds: float | None = None,
        *,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if capacity < 0:
            raise ValueError("answer cache capacity must be >= 0")
        if ttl_seconds is not None and ttl_seconds <= 0:
            raise ValueError("answer cache ttl_seconds must be positive (or None)")
        self.capacity = capacity
        self.ttl_seconds = ttl_seconds
        self._clock = clock
        self._lock = threading.Lock()
        self._entries: OrderedDict[CellKey, _CacheEntry] = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._expirations = 0
        self._evictions = 0
        self._invalidations = 0

    # -- lookups ------------------------------------------------------------

    def get(self, table: str, attribute: str, rowid: int) -> tuple[bool, Any]:
        """Return ``(hit, value)`` for one cell, refreshing its LRU position."""
        key = _cell_key(table, attribute, rowid)
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
                return False, None
            if (
                self.ttl_seconds is not None
                and self._clock() - entry.inserted_at >= self.ttl_seconds
            ):
                del self._entries[key]
                self._expirations += 1
                self._misses += 1
                return False, None
            self._entries.move_to_end(key)
            self._hits += 1
            return True, entry.value

    # -- population ---------------------------------------------------------

    def put(self, table: str, attribute: str, rowid: int, value: Any) -> None:
        """Insert one *crowd-sourced* answer (callers must not cache predictions)."""
        if self.capacity == 0 or is_missing(value):
            return
        key = _cell_key(table, attribute, rowid)
        with self._lock:
            self._entries[key] = _CacheEntry(value=value, inserted_at=self._clock())
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self._evictions += 1

    # -- invalidation -------------------------------------------------------

    def invalidate(self, table: str, attribute: str, rowid: int) -> bool:
        """Drop one cell (direct UPDATE made the stored value authoritative)."""
        key = _cell_key(table, attribute, rowid)
        with self._lock:
            if self._entries.pop(key, None) is not None:
                self._invalidations += 1
                return True
            return False

    def invalidate_table(self, table: str) -> int:
        """Drop every cached cell of *table* (e.g. after DROP TABLE)."""
        prefix = table.lower()
        with self._lock:
            stale = [key for key in self._entries if key[0] == prefix]
            for key in stale:
                del self._entries[key]
            self._invalidations += len(stale)
            return len(stale)

    def clear(self) -> None:
        """Drop every entry (counters are preserved)."""
        with self._lock:
            self._entries.clear()

    # -- introspection ------------------------------------------------------

    def stats(self) -> AnswerCacheStats:
        """Current hit/miss/expiry/eviction/invalidation counters."""
        with self._lock:
            return AnswerCacheStats(
                hits=self._hits,
                misses=self._misses,
                expirations=self._expirations,
                evictions=self._evictions,
                invalidations=self._invalidations,
                size=len(self._entries),
                capacity=self.capacity,
            )

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: CellKey) -> bool:
        with self._lock:
            return key in self._entries


# ---------------------------------------------------------------------------
# Acquisition outcome (what CrowdFill gets back)
# ---------------------------------------------------------------------------


@dataclass
class AcquisitionOutcome:
    """Result of one :meth:`AcquisitionRuntime.acquire` call.

    ``values`` maps each requested attribute to its resolved
    ``rowid -> value`` entries, merged from all three supply paths (cache,
    coalesced in-flight dispatches, own platform dispatches).  The counters
    say how the cells were supplied; EXPLAIN ANALYZE surfaces them per
    operator.
    """

    values: dict[str, dict[int, Any]] = field(default_factory=dict)
    #: Cells served from the :class:`AnswerCache` (zero platform work).
    cache_hits: int = 0
    #: Cells joined onto another cursor's in-flight dispatch.
    coalesced: int = 0
    #: Platform calls this acquire issued itself.
    dispatches: int = 0
    #: Dollars spent by the dispatches this acquire issued.
    cost: float = 0.0
    #: attribute -> rowid -> posterior cell confidence, reported by
    #: quality-tracked dispatches (accuracy-weighted aggregation); stored
    #: as provenance confidence so low-confidence crowd answers feed the
    #: re-acquisition loop exactly like low-confidence predictions.
    confidences: dict[str, dict[int, float]] = field(default_factory=dict)
    #: Platform assignments adaptive sizing avoided versus paying
    #: ``max_assignments`` for every settled item.
    assignments_saved: int = 0
    #: Mean estimated accuracy of the workers that answered this acquire's
    #: quality-tracked dispatches (None when none ran).
    mean_worker_accuracy: float | None = None


class _PendingBatch:
    """One in-flight platform dispatch, joinable by concurrent acquirers."""

    __slots__ = ("done", "values", "error", "skipped", "quality")

    def __init__(self) -> None:
        self.done = threading.Event()
        #: rowid -> resolved value, populated by the owning dispatch.
        self.values: dict[int, Any] = {}
        self.error: BaseException | None = None
        #: True when the owner skipped the dispatch (budget exhausted) —
        #: joiners with budget of their own should re-acquire these cells.
        self.skipped = False
        #: Quality stats of the owning dispatch (confidences per rowid,
        #: assignments saved, mean worker accuracy); None on flat paths.
        self.quality: dict[str, Any] | None = None


# ---------------------------------------------------------------------------
# Runtime
# ---------------------------------------------------------------------------


class AcquisitionRuntime:
    """Catalog-shared scheduler for crowd-acquisition batches.

    Parameters
    ----------
    max_concurrent_batches:
        Size of the worker pool executing platform dispatches; ``1``
        serializes all crowd calls (the ablation baseline), higher values
        overlap the latency of different attributes' and batches' HIT
        groups.
    cache_size, cache_ttl_seconds:
        Capacity and expiry of the :class:`AnswerCache` (``ttl=None`` never
        expires).  ``cache_size=0`` disables caching.
    clock:
        Injectable monotonic clock used by the cache's TTL accounting.

    One runtime is shared by every connection of a
    :class:`~repro.db.catalog.Catalog` (see
    :meth:`~repro.db.catalog.Catalog.acquisition_runtime`), which is what
    makes coalescing and caching effective *across* queries and sessions,
    not just within one cursor.
    """

    def __init__(
        self,
        *,
        max_concurrent_batches: int = 4,
        cache_size: int = 1024,
        cache_ttl_seconds: float | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_concurrent_batches < 1:
            raise ValueError("max_concurrent_batches must be >= 1")
        self.max_concurrent_batches = max_concurrent_batches
        self.cache = AnswerCache(cache_size, cache_ttl_seconds, clock=clock)
        self._lock = threading.Lock()
        self._in_flight: dict[CellKey, _PendingBatch] = {}
        self._pool: ThreadPoolExecutor | None = None
        # Serializes dispatches of legacy sources whose cost can only be
        # observed as a total_cost delta — concurrent sampling would race
        # and over-charge session budgets.  Sources implementing
        # request_values_with_cost stay fully concurrent.
        self._legacy_cost_lock = threading.Lock()
        #: Platform dispatches executed over the runtime's lifetime.
        self.total_dispatches = 0
        #: Cells ever served from the cache / joined onto in-flight work.
        self.total_cache_hits = 0
        self.total_coalesced = 0
        #: Prediction batches routed through :meth:`run_prediction`.
        self.prediction_batches = 0
        self.prediction_seconds = 0.0
        #: Catalog-wide per-worker accuracy estimates, shared by every
        #: session dispatching through this runtime (cross-tenant, like
        #: the answer cache).  The catalog hooks its shared runtime's
        #: tracker to WAL journaling and warm-starts registered trackers
        #: from recovered worker stats.
        self.worker_quality = WorkerQualityTracker()
        #: Assignments adaptive sizing avoided over the runtime's lifetime.
        self.total_assignments_saved = 0

    # -- worker pool --------------------------------------------------------

    def _executor(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.max_concurrent_batches,
                    thread_name_prefix="acquisition",
                )
                # Stop the (non-daemon) worker threads promptly when the
                # runtime itself is garbage collected — e.g. a dropped
                # catalog or a discarded session-private runtime — so
                # short-lived runtimes cannot accumulate idle threads.
                weakref.finalize(self, self._pool.shutdown, wait=False)
            return self._pool

    def shutdown(self) -> None:
        """Stop the worker pool (idempotent; in-flight dispatches finish)."""
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    # -- the acquisition entry point ---------------------------------------

    def acquire(
        self,
        source: Any,
        table: str,
        requests: Sequence[tuple[str, Sequence[tuple[int, dict[str, Any]]]]],
        *,
        session: Any = None,
        _retry_skipped: bool = True,
    ) -> AcquisitionOutcome:
        """Resolve the MISSING cells of one CrowdFill flush.

        *requests* holds ``(attribute, items)`` pairs, one per attribute of
        the flushed batch (items are ``(rowid, row)`` pairs).  For every
        cell the runtime tries, in order: the :class:`AnswerCache`, the
        in-flight registry (joining a dispatch another cursor already
        started), and finally one platform dispatch per attribute for the
        cells nobody else is acquiring — all own dispatches execute
        concurrently on the worker pool, bounded by
        ``max_concurrent_batches``.

        Blocks until every cell is resolved (or the platform declined to
        answer it) and returns the merged :class:`AcquisitionOutcome`.
        When *session* is given, each dispatch this call issues re-checks
        ``session.budget_exhausted`` right before executing — a dispatch
        that finds the budget spent is skipped, leaving its cells
        MISSING — and charges its cost as it completes (coalesced cells
        are paid by the dispatch owner; cache hits are free).  A session
        with a cost cap (``max_cost``) has its dispatches executed
        *serially* so the cap is enforced exactly: dispatch costs are
        unknowable up front, and N concurrent dispatches could otherwise
        all pass the budget check before any cost lands, overspending the
        cap by up to N batches.  Concurrency is for unbudgeted sessions.
        """
        outcome = AcquisitionOutcome()
        own: list[tuple[str, list[tuple[int, dict[str, Any]]], _PendingBatch, list[CellKey]]] = []
        joined: list[tuple[str, int, dict[str, Any], _PendingBatch]] = []

        for attribute, items in requests:
            resolved = outcome.values.setdefault(attribute, {})
            to_dispatch: list[tuple[int, dict[str, Any]]] = []
            keys: list[CellKey] = []
            pending = _PendingBatch()
            # In-flight registry and cache are consulted under one lock
            # (taken once per attribute batch), registry first: a
            # completing dispatch caches its answers *before*
            # unregistering its cells (also under this lock), so a cell
            # found unregistered here is guaranteed to already show its
            # answer in the cache — there is no window to re-dispatch a
            # just-answered cell.
            with self._lock:
                for rowid, row in items:
                    key = _cell_key(table, attribute, rowid)
                    other = self._in_flight.get(key)
                    if other is not None:
                        joined.append((attribute, rowid, row, other))
                        outcome.coalesced += 1
                        continue
                    hit, value = self.cache.get(table, attribute, rowid)
                    if hit:
                        resolved[rowid] = value
                        outcome.cache_hits += 1
                        continue
                    self._in_flight[key] = pending
                    to_dispatch.append((rowid, row))
                    keys.append(key)
            if to_dispatch:
                own.append((attribute, to_dispatch, pending, keys))

        serialize = session is not None and getattr(session, "max_cost", None) is not None
        if own and serialize:
            # Exact budget enforcement: run the dispatches one after the
            # other on the caller's thread, so each one observes the cost
            # the previous ones already charged.
            for index, (attribute, items, pending, keys) in enumerate(own):
                try:
                    cost, dispatched = self._run_dispatch(
                        source, table, attribute, items, pending, keys, session
                    )
                except BaseException as exc:
                    self._abandon_from(own, index + 1, exc)
                    raise
                outcome.cost += cost
                if dispatched:
                    outcome.dispatches += 1
                outcome.values.setdefault(attribute, {}).update(pending.values)
                self._merge_quality(outcome, attribute, pending)
        elif own:
            futures: list[tuple[str, _PendingBatch, Future[tuple[float, bool]]]] = []
            pool = self._executor()
            for index, (attribute, items, pending, keys) in enumerate(own):
                try:
                    future = pool.submit(
                        self._run_dispatch,
                        source,
                        table,
                        attribute,
                        items,
                        pending,
                        keys,
                        session,
                    )
                except BaseException as exc:
                    # submit failed (e.g. a racing shutdown): unregister
                    # this and every not-yet-submitted batch and wake
                    # their coalesced waiters, or later queries touching
                    # those cells would block forever on dead batches.
                    self._abandon_from(own, index, exc)
                    raise
                futures.append((attribute, pending, future))

            # Collect own dispatches first (their futures also propagate
            # errors and per-dispatch cost), then the joined batches.
            for attribute, pending, future in futures:
                cost, dispatched = future.result()
                outcome.cost += cost
                if dispatched:
                    outcome.dispatches += 1
                outcome.values.setdefault(attribute, {}).update(pending.values)
                self._merge_quality(outcome, attribute, pending)
        retry_cells: dict[str, list[tuple[int, dict[str, Any]]]] = {}
        for attribute, rowid, row, pending in joined:
            pending.done.wait()
            if pending.error is not None:
                # The *owner's* dispatch failed.  Its error is not ours:
                # re-acquire the cell through our own source/session below
                # instead of aborting an unrelated query.  (In a retry
                # round the error propagates — a second failure means the
                # problem is not specific to the original owner.)
                if _retry_skipped:
                    retry_cells.setdefault(attribute, []).append((rowid, row))
                    continue
                raise pending.error
            if rowid in pending.values:
                outcome.values.setdefault(attribute, {})[rowid] = pending.values[rowid]
                quality = pending.quality
                if quality and rowid in quality.get("confidences", {}):
                    outcome.confidences.setdefault(attribute, {})[rowid] = quality[
                        "confidences"
                    ][rowid]
            elif pending.skipped:
                retry_cells.setdefault(attribute, []).append((rowid, row))

        with self._lock:
            self.total_dispatches += outcome.dispatches
            self.total_cache_hits += outcome.cache_hits
            self.total_coalesced += outcome.coalesced
            self.total_assignments_saved += outcome.assignments_saved

        if (
            retry_cells
            and _retry_skipped
            and not (session is not None and getattr(session, "budget_exhausted", False))
        ):
            # We coalesced onto a dispatch that never produced answers —
            # its owner was out of budget, or its source errored.  This
            # session can still try with its own dispatch (one retry
            # round; cells that fail again stay MISSING or raise).
            sub = self.acquire(
                source,
                table,
                list(retry_cells.items()),
                session=session,
                _retry_skipped=False,
            )
            outcome.cache_hits += sub.cache_hits
            outcome.coalesced += sub.coalesced
            outcome.dispatches += sub.dispatches
            outcome.cost += sub.cost
            outcome.assignments_saved += sub.assignments_saved
            for attribute, values in sub.values.items():
                outcome.values.setdefault(attribute, {}).update(values)
            for attribute, confidences in sub.confidences.items():
                outcome.confidences.setdefault(attribute, {}).update(confidences)
            if sub.mean_worker_accuracy is not None:
                outcome.mean_worker_accuracy = (
                    sub.mean_worker_accuracy
                    if outcome.mean_worker_accuracy is None
                    else (outcome.mean_worker_accuracy + sub.mean_worker_accuracy) / 2.0
                )
        return outcome

    @staticmethod
    def _merge_quality(
        outcome: AcquisitionOutcome, attribute: str, pending: _PendingBatch
    ) -> None:
        """Fold one quality-tracked dispatch's stats into *outcome*."""
        quality = pending.quality
        if not quality:
            return
        confidences = quality.get("confidences")
        if confidences:
            outcome.confidences.setdefault(attribute, {}).update(confidences)
        outcome.assignments_saved += int(quality.get("assignments_saved", 0))
        accuracy = quality.get("mean_worker_accuracy")
        if accuracy is not None:
            outcome.mean_worker_accuracy = (
                float(accuracy)
                if outcome.mean_worker_accuracy is None
                else (outcome.mean_worker_accuracy + float(accuracy)) / 2.0
            )

    def _abandon_from(
        self,
        own: list[tuple[str, list[tuple[int, dict[str, Any]]], _PendingBatch, list[CellKey]]],
        start: int,
        error: BaseException,
    ) -> None:
        """Unwind the pending batches from *start* on that will never run.

        (Batches before *start* either completed or are cleaned up by
        ``_run_dispatch``'s own ``finally``.)
        """
        for _attribute, _items, pending, keys in own[start:]:
            pending.error = error
            with self._lock:
                for key in keys:
                    if self._in_flight.get(key) is pending:
                        del self._in_flight[key]
            pending.done.set()

    def _run_dispatch(
        self,
        source: Any,
        table: str,
        attribute: str,
        items: list[tuple[int, dict[str, Any]]],
        pending: _PendingBatch,
        keys: list[CellKey],
        session: Any,
    ) -> tuple[float, bool]:
        """Execute one platform dispatch on the worker pool.

        Re-checks the session budget at execution time (an earlier
        dispatch of the same flush may have exhausted it) and charges the
        dispatch's cost as soon as it is known.  Populates the cache and
        the pending batch, then unregisters the cells under the runtime
        lock — in that order, so a concurrent acquirer either joins the
        pending batch or finds the answers already cached, never neither.
        Returns ``(cost, dispatched)``; a budget-skipped dispatch is
        ``(0.0, False)`` and leaves its cells MISSING.
        """
        try:
            if session is not None and getattr(session, "budget_exhausted", False):
                pending.values = {}
                pending.skipped = True
                return 0.0, False
            quality = getattr(source, "request_values_with_quality", None)
            detailed = getattr(source, "request_values_with_cost", None)
            if quality is not None and getattr(source, "quality_enabled", False):
                # Quality-tracked sources run adaptive assignment sizing
                # against the runtime's catalog-wide worker tracker; the
                # session's policy supplies the sizing knobs.
                values, cost, quality_stats = quality(
                    attribute,
                    items,
                    policy=getattr(session, "policy", None),
                    tracker=self.worker_quality,
                )
                pending.quality = quality_stats or None
                # Persist the new worker evidence (no-op without a journal
                # hook; the catalog installs one on its shared runtime).
                self.worker_quality.flush()
            elif detailed is not None:
                values, cost = detailed(attribute, items)
            elif getattr(source, "total_cost", None) is not None:
                # Legacy cost observation (total_cost delta) is only exact
                # when dispatches on the source do not overlap; serialize
                # them rather than over-charge the budget.
                with self._legacy_cost_lock:
                    before = source.total_cost
                    values = source.request_values(attribute, items)
                    cost = float(source.total_cost - before)
            else:
                values = source.request_values(attribute, items)
                cost = 0.0
            if session is not None and cost:
                with self._lock:  # record_cost is not itself thread-safe
                    session.record_cost(cost)
            resolved = {
                rowid: value for rowid, value in values.items() if not is_missing(value)
            }
            for rowid, value in resolved.items():
                self.cache.put(table, attribute, rowid, value)
            pending.values = resolved
            return cost, True
        except BaseException as exc:
            pending.error = exc
            raise
        finally:
            with self._lock:
                for key in keys:
                    if self._in_flight.get(key) is pending:
                        del self._in_flight[key]
            pending.done.set()

    # -- prediction chokepoint ---------------------------------------------

    def run_prediction(self, fit_predict: Callable[[], Any]) -> Any:
        """Run one PredictFill training/prediction step through the runtime.

        Predictions are CPU-bound and must not occupy the platform worker
        pool, so they execute inline; routing them through the runtime
        keeps a single accounting point for all acquisition work
        (``prediction_batches`` / ``prediction_seconds``).
        """
        start = time.perf_counter()
        try:
            return fit_predict()
        finally:
            elapsed = time.perf_counter() - start
            with self._lock:
                self.prediction_batches += 1
                self.prediction_seconds += elapsed

    # -- introspection ------------------------------------------------------

    def stats(self) -> Mapping[str, Any]:
        """Lifetime counters of the runtime plus its cache statistics."""
        with self._lock:
            counters = {
                "max_concurrent_batches": self.max_concurrent_batches,
                "dispatches": self.total_dispatches,
                "cache_hits": self.total_cache_hits,
                "coalesced": self.total_coalesced,
                "in_flight": len(self._in_flight),
                "prediction_batches": self.prediction_batches,
                "prediction_seconds": self.prediction_seconds,
                "assignments_saved": self.total_assignments_saved,
            }
        counters["cache"] = self.cache.stats()
        counters["known_workers"] = self.worker_quality.n_workers
        counters["mean_worker_accuracy"] = self.worker_quality.mean_accuracy()
        return counters

    def __repr__(self) -> str:
        return (
            f"AcquisitionRuntime(max_concurrent_batches={self.max_concurrent_batches}, "
            f"cache={len(self.cache)}/{self.cache.capacity})"
        )
