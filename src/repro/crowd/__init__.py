"""Simulated crowd-sourcing platform (CrowdFlower / Mechanical Turk stand-in).

The paper's experiments dispatch HIT groups to a crowd-sourcing service and
measure answer quality, wall-clock time and cost.  This package provides a
discrete-event simulation of such a service with configurable worker
populations (honest workers, spammers, lookup workers), quality-control
policies (country exclusion, gold questions, trusted pools) and the same
accounting the paper reports (judgments per minute, dollars spent).
"""

from repro.crowd.aggregation import MajorityVote, VoteOutcome, WeightedVote
from repro.crowd.cost import CostModel, SpendingLedger
from repro.crowd.hit import HIT, Answer, HITGroup, Judgment, Question
from repro.crowd.platform import CrowdPlatform, CrowdRunResult
from repro.crowd.quality_control import (
    CountryFilter,
    GoldQuestionPolicy,
    QualityControl,
    TrustedWorkerPolicy,
)
from repro.crowd.runtime import AcquisitionOutcome, AcquisitionRuntime, AnswerCache
from repro.crowd.sources import SimulatedCrowdValueSource
from repro.crowd.worker import (
    WorkerArchetype,
    WorkerPool,
    WorkerProfile,
    make_honest_worker,
    make_lookup_worker,
    make_spam_worker,
)

__all__ = [
    "AcquisitionOutcome",
    "AcquisitionRuntime",
    "Answer",
    "AnswerCache",
    "CostModel",
    "CountryFilter",
    "CrowdPlatform",
    "CrowdRunResult",
    "GoldQuestionPolicy",
    "HIT",
    "HITGroup",
    "Judgment",
    "MajorityVote",
    "QualityControl",
    "Question",
    "SimulatedCrowdValueSource",
    "SpendingLedger",
    "TrustedWorkerPolicy",
    "VoteOutcome",
    "WeightedVote",
    "WorkerArchetype",
    "WorkerPool",
    "WorkerProfile",
    "make_honest_worker",
    "make_lookup_worker",
    "make_spam_worker",
]
