"""Per-worker accuracy tracking for accuracy-weighted aggregation.

The paper's pipeline treats every worker as equally reliable; the
schema-matching crowdsourcing literature (see PAPERS.md) shows that
estimating a per-worker *accuracy rate* and weighting votes by it shrinks
both platform cost and answer error.  This module holds the estimator:

* :class:`WorkerQualityTracker` — a thread-safe Beta-posterior estimator
  over per-worker ``(correct, incorrect)`` observations.  Evidence comes
  from two channels: **seeded gold questions** (items with a known answer
  injected into HIT batches at the policy's ``gold_fraction``;
  :mod:`repro.core.gold_sample` is the canonical way to collect such a
  seed set) and **answer agreement** (whether a worker's judgment matched
  the settled weighted label of an item, down-weighted because the settled
  label is itself only an estimate).
* :func:`estimate_accuracy` — the pure counts→estimate function, shared
  with ``PRAGMA worker_stats`` so the SQL surface reports exactly what the
  aggregator weighs with.

The prior is deliberately *optimistic* (mean ``7/(7+3) = 0.7``): a
cold-start worker nobody knows anything about gets the same non-trivial
weight as every other cold-start worker, so accuracy-weighted voting over
an unknown pool degenerates to exactly the flat majority vote the engine
used before — quality knowledge sharpens aggregation, it never disables it.

Durability: the tracker journals *absolute* per-worker totals through an
injectable ``journal`` callback (the catalog-shared runtime's tracker is
hooked to :meth:`~repro.db.catalog.Catalog.record_worker_stats`, which
appends a ``worker_stats`` WAL record).  Absolute totals make replay
idempotent — last record wins — and :meth:`load_totals` warm-starts a
tracker from recovered state.  The callback is always invoked *outside*
the tracker's lock so a journal that takes the catalog lock (and fsyncs)
can never participate in a lock-order cycle.
"""

from __future__ import annotations

import threading
from typing import Callable, Iterable, Mapping

__all__ = [
    "DEFAULT_PRIOR_CORRECT",
    "DEFAULT_PRIOR_INCORRECT",
    "WorkerQualityTracker",
    "estimate_accuracy",
]

#: Beta prior pseudo-counts.  Mean 0.7 (> 0.5): an unknown worker votes
#: with the same positive weight as every other unknown worker, which
#: makes the cold-start weighted vote identical to flat majority voting.
DEFAULT_PRIOR_CORRECT = 7.0
DEFAULT_PRIOR_INCORRECT = 3.0

#: Accuracy estimates are clamped into this open interval before use as
#: log-odds weights: a "perfect" worker must not get an infinite weight.
ACCURACY_FLOOR = 0.01
ACCURACY_CEILING = 0.99


def estimate_accuracy(
    correct: float,
    incorrect: float,
    *,
    prior_correct: float = DEFAULT_PRIOR_CORRECT,
    prior_incorrect: float = DEFAULT_PRIOR_INCORRECT,
) -> float:
    """Posterior-mean accuracy for the given observation counts.

    ``(prior_correct + correct) / (prior_correct + prior_incorrect +
    correct + incorrect)`` — strictly inside ``(0, 1)`` for any
    non-negative observations because the prior pseudo-counts are positive.
    """
    if correct < 0 or incorrect < 0:
        raise ValueError("observation counts must be non-negative")
    numerator = prior_correct + correct
    denominator = prior_correct + prior_incorrect + correct + incorrect
    estimate = numerator / denominator
    return min(ACCURACY_CEILING, max(ACCURACY_FLOOR, estimate))


class WorkerQualityTracker:
    """Thread-safe Beta-posterior accuracy estimates for crowd workers.

    Parameters
    ----------
    prior_correct, prior_incorrect:
        Beta prior pseudo-counts shared by every worker.  The defaults
        give a cold-start mean of 0.7 — see the module docstring for why
        the prior mean must exceed 0.5.
    agreement_weight:
        Fractional weight of one agreement observation relative to one
        gold observation.  Agreement with a settled label is weaker
        evidence than a known-answer gold check, so it moves the posterior
        more slowly.
    journal:
        Optional callback receiving ``{worker_id: (correct, incorrect)}``
        *absolute* totals for the workers touched since the last
        :meth:`flush`.  Invoked outside the tracker's lock.
    """

    def __init__(
        self,
        *,
        prior_correct: float = DEFAULT_PRIOR_CORRECT,
        prior_incorrect: float = DEFAULT_PRIOR_INCORRECT,
        agreement_weight: float = 0.5,
        journal: Callable[[Mapping[int, tuple[float, float]]], None] | None = None,
    ) -> None:
        if prior_correct <= 0 or prior_incorrect <= 0:
            raise ValueError("prior pseudo-counts must be positive")
        if not 0.0 < agreement_weight <= 1.0:
            raise ValueError("agreement_weight must be in (0, 1]")
        self.prior_correct = float(prior_correct)
        self.prior_incorrect = float(prior_incorrect)
        self.agreement_weight = float(agreement_weight)
        self.journal = journal
        self._lock = threading.Lock()
        #: worker_id -> [correct, incorrect] observed pseudo-counts
        #: (excluding the prior, which is shared and never persisted).
        self._counts: dict[int, list[float]] = {}
        #: Workers touched since the last :meth:`flush`.
        self._dirty: set[int] = set()

    # -- observations -------------------------------------------------------

    def observe_gold(self, worker_id: int, correct: bool, *, weight: float = 1.0) -> None:
        """Record one gold-question outcome for *worker_id*."""
        if weight <= 0:
            raise ValueError("observation weight must be positive")
        with self._lock:
            counts = self._counts.setdefault(int(worker_id), [0.0, 0.0])
            counts[0 if correct else 1] += weight
            self._dirty.add(int(worker_id))

    def observe_agreement(self, worker_id: int, agreed: bool) -> None:
        """Record whether *worker_id* matched an item's settled label.

        Down-weighted by ``agreement_weight``: the settled label is itself
        an estimate, so agreement is softer evidence than a gold check.
        """
        self.observe_gold(worker_id, agreed, weight=self.agreement_weight)

    # -- estimates ----------------------------------------------------------

    def accuracy_of(self, worker_id: int) -> float:
        """Posterior-mean accuracy of *worker_id* (prior mean when unseen)."""
        with self._lock:
            counts = self._counts.get(int(worker_id))
            correct, incorrect = counts if counts is not None else (0.0, 0.0)
        return estimate_accuracy(
            correct,
            incorrect,
            prior_correct=self.prior_correct,
            prior_incorrect=self.prior_incorrect,
        )

    def mean_accuracy(self, worker_ids: Iterable[int] | None = None) -> float:
        """Mean accuracy estimate over *worker_ids* (or every known worker)."""
        if worker_ids is None:
            with self._lock:
                ids = list(self._counts)
        else:
            ids = list(dict.fromkeys(int(worker_id) for worker_id in worker_ids))
        if not ids:
            return estimate_accuracy(
                0.0,
                0.0,
                prior_correct=self.prior_correct,
                prior_incorrect=self.prior_incorrect,
            )
        return sum(self.accuracy_of(worker_id) for worker_id in ids) / len(ids)

    @property
    def n_workers(self) -> int:
        """Number of workers with at least one observation."""
        with self._lock:
            return len(self._counts)

    # -- durability ---------------------------------------------------------

    def totals(self) -> dict[int, tuple[float, float]]:
        """Absolute ``(correct, incorrect)`` totals for every known worker."""
        with self._lock:
            return {
                worker_id: (counts[0], counts[1])
                for worker_id, counts in self._counts.items()
            }

    def load_totals(self, totals: Mapping[int, tuple[float, float]]) -> None:
        """Warm-start from recovered absolute totals (last write wins)."""
        with self._lock:
            for worker_id, (correct, incorrect) in totals.items():
                if correct < 0 or incorrect < 0:
                    raise ValueError("observation counts must be non-negative")
                self._counts[int(worker_id)] = [float(correct), float(incorrect)]

    def flush(self) -> None:
        """Journal the absolute totals of every worker touched since the
        last flush.  The callback runs outside the tracker's lock (it may
        take the catalog lock and fsync a WAL record)."""
        journal = self.journal
        if journal is None:
            return
        with self._lock:
            if not self._dirty:
                return
            touched = {
                worker_id: (self._counts[worker_id][0], self._counts[worker_id][1])
                for worker_id in self._dirty
            }
            self._dirty.clear()
        journal(touched)

    def __repr__(self) -> str:
        return f"WorkerQualityTracker(n_workers={self.n_workers})"
