"""Aggregating conflicting worker judgments into a single answer.

The paper uses plain majority voting that ignores "don't know" answers;
ties and items without any informative judgment remain *unclassified*.
A confidence-weighted variant is provided as well, since the related-work
section points at extensions of the majority scheme.
"""

from __future__ import annotations

import math
from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping, Sequence

from repro.crowd.hit import Answer, Judgment
from repro.crowd.worker_quality import ACCURACY_CEILING, ACCURACY_FLOOR


@dataclass(frozen=True)
class VoteOutcome:
    """Aggregated verdict for one item."""

    item_id: int
    label: bool | None
    positive_votes: int
    negative_votes: int
    dont_know_votes: int

    @property
    def classified(self) -> bool:
        """True if a clear majority produced a label."""
        return self.label is not None

    @property
    def total_votes(self) -> int:
        """All votes cast on the item (including "don't know")."""
        return self.positive_votes + self.negative_votes + self.dont_know_votes

    @property
    def margin(self) -> int:
        """Absolute difference between positive and negative votes."""
        return abs(self.positive_votes - self.negative_votes)


def group_judgments(judgments: Iterable[Judgment]) -> dict[int, list[Judgment]]:
    """Group judgments by item id."""
    grouped: dict[int, list[Judgment]] = defaultdict(list)
    for judgment in judgments:
        grouped[judgment.item_id].append(judgment)
    return dict(grouped)


class MajorityVote:
    """Majority vote ignoring "don't know" answers; ties stay unclassified."""

    def __init__(self, *, minimum_votes: int = 1) -> None:
        if minimum_votes < 1:
            raise ValueError("minimum_votes must be at least 1")
        self.minimum_votes = minimum_votes

    def aggregate_item(self, item_id: int, judgments: Sequence[Judgment]) -> VoteOutcome:
        """Aggregate the judgments of a single item."""
        counts = Counter(judgment.answer for judgment in judgments)
        positive = counts.get(Answer.POSITIVE, 0)
        negative = counts.get(Answer.NEGATIVE, 0)
        dont_know = counts.get(Answer.DONT_KNOW, 0)
        label: bool | None
        if positive + negative < self.minimum_votes:
            label = None
        elif positive > negative:
            label = True
        elif negative > positive:
            label = False
        else:
            label = None
        return VoteOutcome(
            item_id=item_id,
            label=label,
            positive_votes=positive,
            negative_votes=negative,
            dont_know_votes=dont_know,
        )

    def aggregate(self, judgments: Iterable[Judgment]) -> dict[int, VoteOutcome]:
        """Aggregate all judgments, returning one outcome per item."""
        return {
            item_id: self.aggregate_item(item_id, item_judgments)
            for item_id, item_judgments in group_judgments(judgments).items()
        }

    def labels(self, judgments: Iterable[Judgment]) -> dict[int, bool]:
        """Return only the items that received a clear majority label."""
        return {
            item_id: outcome.label
            for item_id, outcome in self.aggregate(judgments).items()
            if outcome.label is not None
        }


class WeightedVote:
    """Majority vote weighting each worker by an externally supplied trust score.

    Workers without a score receive ``default_weight``.  Scores would
    typically come from gold-question performance or historical agreement.
    """

    def __init__(
        self,
        worker_weights: Mapping[int, float] | None = None,
        *,
        default_weight: float = 1.0,
    ) -> None:
        if default_weight < 0:
            raise ValueError("default_weight must be non-negative")
        self._weights = dict(worker_weights or {})
        self.default_weight = default_weight

    def weight_of(self, worker_id: int) -> float:
        """Return the voting weight of *worker_id*."""
        return self._weights.get(worker_id, self.default_weight)

    def aggregate_item(self, item_id: int, judgments: Sequence[Judgment]) -> VoteOutcome:
        """Aggregate one item's judgments using worker weights."""
        positive_weight = 0.0
        negative_weight = 0.0
        positive = negative = dont_know = 0
        for judgment in judgments:
            if judgment.answer is Answer.POSITIVE:
                positive += 1
                positive_weight += self.weight_of(judgment.worker_id)
            elif judgment.answer is Answer.NEGATIVE:
                negative += 1
                negative_weight += self.weight_of(judgment.worker_id)
            else:
                dont_know += 1
        if positive_weight > negative_weight:
            label: bool | None = True
        elif negative_weight > positive_weight:
            label = False
        else:
            label = None
        return VoteOutcome(
            item_id=item_id,
            label=label,
            positive_votes=positive,
            negative_votes=negative,
            dont_know_votes=dont_know,
        )

    def aggregate(self, judgments: Iterable[Judgment]) -> dict[int, VoteOutcome]:
        """Aggregate all judgments, returning one outcome per item."""
        return {
            item_id: self.aggregate_item(item_id, item_judgments)
            for item_id, item_judgments in group_judgments(judgments).items()
        }


@dataclass(frozen=True)
class WeightedOutcome(VoteOutcome):
    """A :class:`VoteOutcome` carrying a per-item posterior confidence.

    ``confidence`` is the posterior probability of the chosen label under
    the weighted-vote model (0.5 at a perfect tie, 0.0 when the quorum was
    not met) — it replaces the raw vote ``margin`` as the quantity adaptive
    assignment sizing and cell-provenance confidence are driven by.
    """

    confidence: float = 0.0


class AccuracyWeightedVote:
    """Majority vote weighting each worker by their estimated accuracy.

    Each informative judgment contributes its worker's log-odds
    ``log(p / (1 - p))`` (positive votes add, negative votes subtract),
    where ``p`` is the worker's accuracy estimate clamped into
    ``(ACCURACY_FLOOR, ACCURACY_CEILING)``.  Under the standard
    independent-error model the sign of the summed score is the maximum
    a-posteriori label and ``1 / (1 + e^-|score|)`` its posterior
    probability — the ``confidence`` of the :class:`WeightedOutcome`.

    When every worker carries the same accuracy estimate (the cold-start
    case of a fresh :class:`~repro.crowd.worker_quality.WorkerQualityTracker`)
    all weights are equal and the outcome label is exactly the flat
    :class:`MajorityVote` label.

    Quorum semantics match :class:`MajorityVote`: only *informative* votes
    (positive or negative) count toward ``minimum_votes`` — a pile of
    "don't know" answers never satisfies the quorum.

    *accuracy* may be a ``worker_id -> accuracy`` mapping, a callable, or
    any object with an ``accuracy_of(worker_id)`` method (e.g. a
    :class:`~repro.crowd.worker_quality.WorkerQualityTracker`).
    """

    def __init__(
        self,
        accuracy: Mapping[int, float] | Callable[[int], float] | Any = None,
        *,
        default_accuracy: float = 0.7,
        minimum_votes: int = 1,
    ) -> None:
        if minimum_votes < 1:
            raise ValueError("minimum_votes must be at least 1")
        if not 0.0 < default_accuracy < 1.0:
            raise ValueError("default_accuracy must be in (0, 1)")
        self.minimum_votes = minimum_votes
        self.default_accuracy = default_accuracy
        if accuracy is None:
            self._accuracy_fn: Callable[[int], float] = lambda _worker: default_accuracy
        elif callable(getattr(accuracy, "accuracy_of", None)):
            self._accuracy_fn = accuracy.accuracy_of
        elif isinstance(accuracy, Mapping):
            mapping = dict(accuracy)
            self._accuracy_fn = lambda worker: mapping.get(worker, default_accuracy)
        elif callable(accuracy):
            self._accuracy_fn = accuracy
        else:
            raise TypeError(
                "accuracy must be a mapping, a callable, or expose accuracy_of()"
            )

    def accuracy_of(self, worker_id: int) -> float:
        """The (clamped) accuracy estimate used to weight *worker_id*."""
        return min(ACCURACY_CEILING, max(ACCURACY_FLOOR, self._accuracy_fn(worker_id)))

    def weight_of(self, worker_id: int) -> float:
        """Log-odds voting weight of *worker_id* (always positive)."""
        accuracy = self.accuracy_of(worker_id)
        return math.log(accuracy / (1.0 - accuracy))

    def aggregate_item(self, item_id: int, judgments: Sequence[Judgment]) -> WeightedOutcome:
        """Aggregate one item's judgments into a label plus confidence."""
        score = 0.0
        positive = negative = dont_know = 0
        for judgment in judgments:
            if judgment.answer is Answer.POSITIVE:
                positive += 1
                score += self.weight_of(judgment.worker_id)
            elif judgment.answer is Answer.NEGATIVE:
                negative += 1
                score -= self.weight_of(judgment.worker_id)
            else:
                dont_know += 1
        label: bool | None
        if positive + negative < self.minimum_votes:
            label, confidence = None, 0.0
        elif abs(score) < 1e-9:
            # Dead tie.  The epsilon matters: summing equal-and-opposite
            # float weights can leave a residue of ~1e-16 per vote, and a
            # tie must stay unclassified like MajorityVote's.
            label, confidence = None, 0.5
        elif score > 0:
            label, confidence = True, 1.0 / (1.0 + math.exp(-score))
        else:
            label, confidence = False, 1.0 / (1.0 + math.exp(score))
        return WeightedOutcome(
            item_id=item_id,
            label=label,
            positive_votes=positive,
            negative_votes=negative,
            dont_know_votes=dont_know,
            confidence=confidence,
        )

    def aggregate(self, judgments: Iterable[Judgment]) -> dict[int, WeightedOutcome]:
        """Aggregate all judgments, returning one outcome per item."""
        return {
            item_id: self.aggregate_item(item_id, item_judgments)
            for item_id, item_judgments in group_judgments(judgments).items()
        }

    def labels(self, judgments: Iterable[Judgment]) -> dict[int, bool]:
        """Return only the items that received a weighted-majority label."""
        return {
            item_id: outcome.label
            for item_id, outcome in self.aggregate(judgments).items()
            if outcome.label is not None
        }


@dataclass
class AccuracyReport:
    """Comparison of aggregated crowd labels against a ground truth."""

    n_items: int
    n_classified: int
    n_correct: int
    per_item: dict[int, bool] = field(default_factory=dict)

    @property
    def coverage(self) -> float:
        """Fraction of items that received any label."""
        return self.n_classified / self.n_items if self.n_items else 0.0

    @property
    def accuracy_on_classified(self) -> float:
        """Fraction of labelled items whose label matches the ground truth."""
        return self.n_correct / self.n_classified if self.n_classified else 0.0

    @property
    def accuracy_overall(self) -> float:
        """Correct labels divided by all items (unclassified counts as wrong)."""
        return self.n_correct / self.n_items if self.n_items else 0.0


def score_against_truth(
    outcomes: Mapping[int, VoteOutcome], truth: Mapping[int, bool]
) -> AccuracyReport:
    """Score aggregated outcomes against ground-truth labels.

    Items present in *truth* but missing from *outcomes* count as
    unclassified; items classified but absent from *truth* are ignored.
    """
    n_items = len(truth)
    n_classified = 0
    n_correct = 0
    per_item: dict[int, bool] = {}
    for item_id, true_label in truth.items():
        outcome = outcomes.get(item_id)
        if outcome is None or outcome.label is None:
            continue
        n_classified += 1
        correct = outcome.label == true_label
        per_item[item_id] = correct
        if correct:
            n_correct += 1
    return AccuracyReport(
        n_items=n_items,
        n_classified=n_classified,
        n_correct=n_correct,
        per_item=per_item,
    )
