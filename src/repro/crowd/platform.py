"""Discrete-event simulation of a crowd-sourcing platform.

:class:`CrowdPlatform` dispatches a :class:`~repro.crowd.hit.HITGroup` to a
:class:`~repro.crowd.worker.WorkerPool` and simulates workers arriving,
picking up HIT assignments, spending time on them and submitting judgments.
The simulation produces the quantities the paper reports for its
experiments: the judgment stream with timestamps, total wall-clock
completion time, number of distinct workers, and money spent over time.
"""

from __future__ import annotations

import heapq
import itertools
import threading
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.crowd.aggregation import MajorityVote, VoteOutcome
from repro.crowd.cost import CostModel, SpendingLedger
from repro.crowd.hit import HIT, Answer, HITGroup, Judgment
from repro.crowd.quality_control import QualityControl
from repro.crowd.worker import WorkerPool, WorkerProfile
from repro.errors import NoWorkersAvailableError
from repro.utils.rng import RandomState, spawn_rng


@dataclass
class CrowdRunResult:
    """Everything produced by dispatching one HIT group."""

    group: HITGroup
    judgments: list[Judgment]
    completion_minutes: float
    total_cost: float
    ledger: SpendingLedger
    n_workers: int
    assignments_completed: int
    assignments_requested: int
    banned_workers: frozenset[int] = frozenset()

    # -- stream accessors -------------------------------------------------------

    def judgments_until(self, minutes: float) -> list[Judgment]:
        """All judgments submitted up to simulated time *minutes*."""
        return [j for j in self.judgments if j.timestamp_minutes <= minutes]

    def cost_until(self, minutes: float) -> float:
        """Money spent up to simulated time *minutes*."""
        return self.ledger.spent_by(minutes)

    def judgments_per_minute(self) -> float:
        """Average judgment throughput over the whole run."""
        if self.completion_minutes <= 0:
            return 0.0
        return len(self.judgments) / self.completion_minutes

    # -- aggregation shortcuts ----------------------------------------------------

    def majority_outcomes(self, *, until_minutes: float | None = None) -> dict[int, VoteOutcome]:
        """Majority-vote outcomes, optionally restricted to a time prefix."""
        judgments = (
            self.judgments if until_minutes is None else self.judgments_until(until_minutes)
        )
        return MajorityVote().aggregate(judgments)

    def majority_labels(self, *, until_minutes: float | None = None) -> dict[int, bool]:
        """Majority-vote labels for all items with a clear majority."""
        return {
            item_id: outcome.label
            for item_id, outcome in self.majority_outcomes(until_minutes=until_minutes).items()
            if outcome.label is not None
        }

    def worker_statistics(self) -> dict[int, dict[str, float]]:
        """Per-worker statistics: judgments given, claimed-knowledge and positive rates."""
        stats: dict[int, dict[str, float]] = {}
        per_worker: dict[int, list[Judgment]] = {}
        for judgment in self.judgments:
            per_worker.setdefault(judgment.worker_id, []).append(judgment)
        for worker_id, judgments in per_worker.items():
            informative = [j for j in judgments if j.answer is not Answer.DONT_KNOW]
            positives = [j for j in informative if j.answer is Answer.POSITIVE]
            stats[worker_id] = {
                "judgments": float(len(judgments)),
                "claimed_knowledge_rate": len(informative) / len(judgments) if judgments else 0.0,
                "positive_rate": len(positives) / len(informative) if informative else 0.0,
            }
        return stats


@dataclass(order=True)
class _Event:
    """A worker becoming available at a point in simulated time."""

    time: float
    sequence: int
    worker: WorkerProfile = field(compare=False)


class CrowdPlatform:
    """Simulates dispatching HIT groups to a worker pool.

    Parameters
    ----------
    cost_model:
        Pricing applied to completed assignments.
    worker_interarrival_minutes:
        Mean time between two workers discovering the HIT group.
    seed:
        Seed for all stochastic choices of the simulation.
    """

    def __init__(
        self,
        *,
        cost_model: CostModel | None = None,
        worker_interarrival_minutes: float = 1.0,
        seed: RandomState = None,
    ) -> None:
        if worker_interarrival_minutes <= 0:
            raise ValueError("worker_interarrival_minutes must be positive")
        self.cost_model = cost_model or CostModel()
        self.worker_interarrival_minutes = worker_interarrival_minutes
        self._seed = seed
        # Guards rng derivation when the platform seed is a shared
        # numpy Generator: concurrent run_group calls would otherwise race
        # on its internal state.  Callers wanting *determinism* (not just
        # safety) under concurrency must pass an explicit per-dispatch
        # seed derived from request identity — see
        # :class:`~repro.crowd.sources.SimulatedCrowdValueSource`.
        self._seed_lock = threading.Lock()

    # -- public API ------------------------------------------------------------------

    def run_group(
        self,
        group: HITGroup,
        pool: WorkerPool,
        *,
        quality_control: QualityControl | None = None,
        truth: Mapping[int, bool] | None = None,
        max_minutes: float = 24 * 60.0,
        seed: RandomState = None,
    ) -> CrowdRunResult:
        """Dispatch *group* to *pool* and simulate until completion.

        *truth* maps item ids to their true boolean label; it drives the
        simulated worker cognition (a real platform would not know it).
        Items missing from *truth* are treated as negatives.

        An explicit *seed* overrides the platform's own seed for this one
        dispatch; callers issuing many dispatches (e.g. the batched value
        source) derive an independent child seed per call so repeated runs
        are deterministic and batches are not correlated.  Because the
        override is an integer derived from the *request* (not from shared
        mutable rng state), concurrent ``run_group`` calls with explicit
        seeds produce identical answers regardless of scheduling — the
        property the concurrent acquisition runtime's determinism test
        pins down.
        """
        quality_control = quality_control or QualityControl.none()
        run_seed = seed if seed is not None else self._seed
        with self._seed_lock:
            rng = spawn_rng(run_seed, "platform", group.question.attribute, len(pool))
        truth = dict(truth or {})

        try:
            working_pool = quality_control.filter_pool(pool)
        except ValueError as exc:
            raise NoWorkersAvailableError("no workers left after quality filtering") from exc
        if len(working_pool) == 0:
            raise NoWorkersAvailableError("no workers left after quality filtering")

        hits = group.build_hits()
        needed: dict[int, int] = {hit.hit_id: group.judgments_per_item for hit in hits}
        done_by: dict[int, set[int]] = {hit.hit_id: set() for hit in hits}

        ledger = SpendingLedger(cost_model=self.cost_model)
        cost_model_payment = self.cost_model.payment_per_hit
        if abs(cost_model_payment - group.payment_per_hit) > 1e-12:
            ledger = SpendingLedger(
                cost_model=CostModel(
                    payment_per_hit=group.payment_per_hit,
                    service_fee_rate=self.cost_model.service_fee_rate,
                    budget=self.cost_model.budget,
                )
            )

        judgments: list[Judgment] = []
        participants: set[int] = set()
        assignments_completed = 0
        sequence = itertools.count()

        # Workers discover the HIT group over time (exponential inter-arrivals).
        events: list[_Event] = []
        arrival_time = 0.0
        for worker in working_pool.arrival_order(rng.integers(0, 2**31 - 1)):
            arrival_time += float(rng.exponential(self.worker_interarrival_minutes))
            heapq.heappush(events, _Event(arrival_time, next(sequence), worker))

        session_budget: dict[int, int] = {}
        last_time = 0.0

        while events:
            event = heapq.heappop(events)
            now = event.time
            if now > max_minutes:
                break
            worker = event.worker

            if quality_control.is_banned(worker.worker_id):
                continue

            if worker.worker_id not in session_budget:
                session_budget[worker.worker_id] = worker.draw_session_length(rng)
            if session_budget[worker.worker_id] <= 0:
                continue

            hit = self._next_hit_for(worker, hits, needed, done_by)
            if hit is None:
                continue

            duration = worker.draw_hit_duration(rng)
            finish_time = now + duration
            if finish_time > max_minutes:
                continue

            # Submit the assignment.
            needed[hit.hit_id] -= 1
            done_by[hit.hit_id].add(worker.worker_id)
            session_budget[worker.worker_id] -= 1
            participants.add(worker.worker_id)
            assignments_completed += 1
            ledger.charge_assignment(finish_time)
            last_time = max(last_time, finish_time)

            for item in hit.items:
                true_answer = Answer.from_bool(bool(truth.get(item.item_id, False)))
                if item.is_gold and item.gold_answer is not None:
                    true_answer = item.gold_answer
                answer = worker.judge(item, hit.question, true_answer, rng)
                judgment = Judgment(
                    item_id=item.item_id,
                    worker_id=worker.worker_id,
                    answer=answer,
                    hit_id=hit.hit_id,
                    timestamp_minutes=finish_time,
                    is_gold=item.is_gold,
                )
                judgments.append(judgment)
                quality_control.on_judgment(worker, item, judgment)

            # The worker comes back for another assignment after finishing.
            if (
                session_budget[worker.worker_id] > 0
                and not quality_control.is_banned(worker.worker_id)
            ):
                heapq.heappush(events, _Event(finish_time, next(sequence), worker))

            if all(count <= 0 for count in needed.values()):
                break

        judgments.sort(key=lambda j: j.timestamp_minutes)
        banned = frozenset(
            worker_id
            for worker_id in participants
            if quality_control.is_banned(worker_id)
        )
        requested = len(hits) * group.judgments_per_item

        return CrowdRunResult(
            group=group,
            judgments=judgments,
            completion_minutes=last_time,
            total_cost=ledger.total_spent,
            ledger=ledger,
            n_workers=len(participants),
            assignments_completed=assignments_completed,
            assignments_requested=requested,
            banned_workers=banned,
        )

    # -- helpers -----------------------------------------------------------------------

    @staticmethod
    def _next_hit_for(
        worker: WorkerProfile,
        hits: Sequence[HIT],
        needed: Mapping[int, int],
        done_by: Mapping[int, set[int]],
    ) -> HIT | None:
        """Pick the most-needed HIT the worker has not done yet."""
        best: HIT | None = None
        best_need = 0
        for hit in hits:
            remaining = needed[hit.hit_id]
            if remaining <= 0:
                continue
            if worker.worker_id in done_by[hit.hit_id]:
                continue
            if remaining > best_need:
                best = hit
                best_need = remaining
        return best
