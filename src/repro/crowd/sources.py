"""Batched value sources bridging the crowd platform to the query engine.

The query engine's ``CrowdFill`` operator acquires MISSING attribute values
through the narrow :class:`~repro.db.crowd_operators.ValueSource` protocol:
one ``request_values(attribute, items)`` call per coalesced batch.  This
module provides the production-shaped implementation of that protocol on
top of the simulated crowd platform: every batch becomes exactly one
:class:`~repro.crowd.hit.HITGroup` dispatched to a
:class:`~repro.crowd.platform.CrowdPlatform`, with the answers aggregated
by majority vote.  Set-oriented acquisition — one HIT group per batch per
attribute instead of one crowd round-trip per row — is what makes crowd
latency and cost tractable at query time.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

from repro.crowd.hit import HITGroup, Question, make_task_items
from repro.crowd.platform import CrowdPlatform, CrowdRunResult
from repro.crowd.quality_control import QualityControl
from repro.crowd.worker import WorkerPool
from repro.db.types import is_missing
from repro.utils.rng import RandomState, derive_seed

__all__ = ["SimulatedCrowdValueSource"]


class SimulatedCrowdValueSource:
    """A batch ValueSource that dispatches one HIT group per request.

    Parameters
    ----------
    platform:
        The (simulated) crowd platform to dispatch HIT groups on.
    pool:
        Worker pool answering the HITs.
    truth:
        ``attribute -> {item_id: bool}`` ground truth driving the simulated
        workers (a live platform would not have this).
    key_column:
        Row column mapping database rows to platform item ids.
    judgments_per_item, items_per_hit, payment_per_hit:
        HIT group shape; forwarded to :class:`~repro.crowd.hit.HITGroup`.
    quality_control:
        Optional quality-control policy applied to every dispatch.
    seed:
        Optional explicit seed (or generator) for the simulated platform
        runs.  Each dispatch derives an independent child seed from it (by
        attribute and dispatch ordinal), so a seeded source is fully
        deterministic across runs while successive batches stay
        uncorrelated.  Without it the platform's own seed governs, which
        reuses one stream per attribute.

    Statistics
    ----------
    ``dispatches`` counts platform calls (one per CrowdFill batch per
    attribute — the quantity the batching contract bounds), ``total_cost``
    and ``total_judgments`` accumulate over all dispatches, and ``runs``
    keeps every :class:`~repro.crowd.platform.CrowdRunResult` for
    inspection.
    """

    def __init__(
        self,
        platform: CrowdPlatform,
        pool: WorkerPool,
        *,
        truth: Mapping[str, Mapping[int, bool]],
        key_column: str = "item_id",
        judgments_per_item: int = 3,
        items_per_hit: int = 10,
        payment_per_hit: float = 0.02,
        quality_control: QualityControl | None = None,
        prompt: str = "",
        seed: RandomState = None,
    ) -> None:
        self._platform = platform
        self._pool = pool
        self._seed = seed
        self._truth = {attr: dict(values) for attr, values in truth.items()}
        self.key_column = key_column
        self.judgments_per_item = judgments_per_item
        self.items_per_hit = items_per_hit
        self.payment_per_hit = payment_per_hit
        self._quality_control = quality_control
        self._prompt = prompt
        self.dispatches = 0
        self.total_cost = 0.0
        self.total_judgments = 0
        self.runs: list[CrowdRunResult] = []

    def request_values(
        self, attribute: str, items: Sequence[tuple[int, dict[str, Any]]]
    ) -> dict[int, Any]:
        """Answer one batch: dispatch a single HIT group for *attribute*.

        Rows whose *key_column* is NULL/MISSING cannot be mapped to a
        platform item and stay unanswered; items without a clear majority
        are likewise omitted, leaving their cells MISSING.
        """
        rowid_to_item: dict[int, int] = {}
        for rowid, row in items:
            key = row.get(self.key_column)
            if key is None or is_missing(key):
                continue
            rowid_to_item[rowid] = int(key)
        if not rowid_to_item:
            return {}

        item_ids = sorted(set(rowid_to_item.values()))
        group = HITGroup(
            question=Question(attribute=attribute, prompt=self._prompt),
            items=make_task_items(item_ids),
            judgments_per_item=self.judgments_per_item,
            items_per_hit=self.items_per_hit,
            payment_per_hit=self.payment_per_hit,
        )
        dispatch_seed = (
            derive_seed(self._seed, attribute, self.dispatches)
            if self._seed is not None
            else None
        )
        result = self._platform.run_group(
            group,
            self._pool,
            quality_control=self._quality_control,
            truth=self._truth.get(attribute, {}),
            seed=dispatch_seed,
        )
        self.dispatches += 1
        self.total_cost += result.total_cost
        self.total_judgments += len(result.judgments)
        self.runs.append(result)

        labels = result.majority_labels()
        return {
            rowid: labels[item_id]
            for rowid, item_id in rowid_to_item.items()
            if item_id in labels
        }
