"""Batched value sources bridging the crowd platform to the query engine.

The query engine's ``CrowdFill`` operator acquires MISSING attribute values
through the narrow :class:`~repro.db.crowd_operators.ValueSource` protocol:
one ``request_values(attribute, items)`` call per coalesced batch.  This
module provides the production-shaped implementation of that protocol on
top of the simulated crowd platform: every batch becomes exactly one
:class:`~repro.crowd.hit.HITGroup` dispatched to a
:class:`~repro.crowd.platform.CrowdPlatform`, with the answers aggregated
by majority vote.  Set-oriented acquisition — one HIT group per batch per
attribute instead of one crowd round-trip per row — is what makes crowd
latency and cost tractable at query time.

The source is **thread-safe**: the
:class:`~repro.crowd.runtime.AcquisitionRuntime` dispatches batches for
different attributes concurrently, so all mutable statistics are guarded by
a lock, and the per-dispatch child seeds are derived from *request
identity* (attribute + item ids), never from dispatch order — the same
workload produces the same answers at any concurrency level.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Mapping, Sequence

from repro.crowd.estimation import enumeration_predicate
from repro.crowd.hit import HITGroup, Question, make_task_items
from repro.crowd.platform import CrowdPlatform, CrowdRunResult
from repro.crowd.quality_control import QualityControl
from repro.crowd.worker import WorkerPool
from repro.db.types import is_missing
from repro.utils.rng import RandomState, derive_seed, ensure_rng

__all__ = ["SimulatedCrowdValueSource"]


class SimulatedCrowdValueSource:
    """A batch ValueSource that dispatches one HIT group per request.

    Parameters
    ----------
    platform:
        The (simulated) crowd platform to dispatch HIT groups on.
    pool:
        Worker pool answering the HITs.
    truth:
        ``attribute -> {item_id: bool}`` ground truth driving the simulated
        workers (a live platform would not have this).
    key_column:
        Row column mapping database rows to platform item ids.
    judgments_per_item, items_per_hit, payment_per_hit:
        HIT group shape; forwarded to :class:`~repro.crowd.hit.HITGroup`.
    quality_control:
        Optional quality-control policy applied to every dispatch.
    allow_dont_know:
        Whether workers may answer "I do not know this item" (forwarded to
        the :class:`~repro.crowd.hit.Question` of every dispatch).
        Disabling it forces an answer — the paper's Experiment 3 setting —
        so an odd ``judgments_per_item`` always yields a majority and no
        cell stays unanswered.
    seed:
        Optional explicit seed for the simulated platform runs.  Each
        dispatch derives an independent child seed from the *identity of
        the request* — the attribute and the sorted item ids — so a seeded
        source is fully deterministic regardless of the order in which
        concurrent dispatches execute, while batches over different items
        stay uncorrelated.  (Re-asking the exact same batch deterministically
        reproduces the same answers; that is the property the concurrent
        runtime's determinism guarantee rests on.)  A generator seed is
        frozen to an integer at construction time so later draws cannot
        depend on thread scheduling.  Without a seed the platform's own
        seed governs, which reuses one stream per attribute.
    latency_seconds:
        Simulated platform round-trip latency: every dispatch sleeps this
        many *wall-clock* seconds before returning, standing in for the
        HTTP/queueing latency of a live platform (the simulated
        ``completion_minutes`` clock is separate).  This is what the
        concurrent-acquisition ablation overlaps: with a latency-simulating
        source, dispatching four attributes concurrently costs one
        round-trip instead of four.

    Statistics
    ----------
    ``dispatches`` counts platform calls (one per CrowdFill batch per
    attribute — the quantity the batching contract bounds), ``total_cost``
    and ``total_judgments`` accumulate over all dispatches, and ``runs``
    keeps every :class:`~repro.crowd.platform.CrowdRunResult` for
    inspection.  All statistics are updated atomically under an internal
    lock so concurrent dispatches never lose counts.
    """

    def __init__(
        self,
        platform: CrowdPlatform,
        pool: WorkerPool,
        *,
        truth: Mapping[str, Mapping[int, bool]],
        key_column: str = "item_id",
        judgments_per_item: int = 3,
        items_per_hit: int = 10,
        payment_per_hit: float = 0.02,
        quality_control: QualityControl | None = None,
        allow_dont_know: bool = True,
        prompt: str = "",
        seed: RandomState = None,
        latency_seconds: float = 0.0,
        universe: Mapping[str, Sequence[Any]] | None = None,
        answers_per_batch: int | None = None,
    ) -> None:
        if latency_seconds < 0:
            raise ValueError("latency_seconds must be non-negative")
        self._platform = platform
        self._pool = pool
        # Freeze generator seeds immediately: drawing from a shared
        # generator at dispatch time would make child seeds depend on the
        # order concurrent dispatches happen to run in.
        self._seed = derive_seed(seed, "value-source") if seed is not None else None
        self._truth = {attr: dict(values) for attr, values in truth.items()}
        self.key_column = key_column
        self.judgments_per_item = judgments_per_item
        self.items_per_hit = items_per_hit
        self.payment_per_hit = payment_per_hit
        self._quality_control = quality_control
        self.allow_dont_know = allow_dont_know
        self._prompt = prompt
        self.latency_seconds = latency_seconds
        if answers_per_batch is not None and answers_per_batch <= 0:
            raise ValueError("answers_per_batch must be positive")
        self._universe = (
            {predicate: list(items) for predicate, items in universe.items()}
            if universe is not None
            else {}
        )
        self.answers_per_batch = answers_per_batch
        self._stats_lock = threading.Lock()
        self.dispatches = 0
        self.total_cost = 0.0
        self.total_judgments = 0
        self.runs: list[CrowdRunResult] = []

    def request_values(
        self, attribute: str, items: Sequence[tuple[int, dict[str, Any]]]
    ) -> dict[int, Any]:
        """Answer one batch: dispatch a single HIT group for *attribute*.

        Rows whose *key_column* is NULL/MISSING cannot be mapped to a
        platform item and stay unanswered; items without a clear majority
        are likewise omitted, leaving their cells MISSING.
        """
        values, _cost = self.request_values_with_cost(attribute, items)
        return values

    def request_values_with_cost(
        self, attribute: str, items: Sequence[tuple[int, dict[str, Any]]]
    ) -> tuple[dict[int, Any], float]:
        """Like :meth:`request_values`, also returning this dispatch's cost.

        The per-dispatch cost lets the
        :class:`~repro.crowd.runtime.AcquisitionRuntime` charge session
        budgets exactly even when several dispatches run concurrently
        (sampling ``total_cost`` deltas would race).
        """
        predicate = enumeration_predicate(attribute)
        if predicate is not None:
            return self._enumerate_batch(predicate, items)
        rowid_to_item: dict[int, int] = {}
        for rowid, row in items:
            key = row.get(self.key_column)
            if key is None or is_missing(key):
                continue
            rowid_to_item[rowid] = int(key)
        if not rowid_to_item:
            return {}, 0.0

        item_ids = sorted(set(rowid_to_item.values()))
        group = HITGroup(
            question=Question(
                attribute=attribute,
                prompt=self._prompt,
                allow_dont_know=self.allow_dont_know,
            ),
            items=make_task_items(item_ids),
            judgments_per_item=self.judgments_per_item,
            items_per_hit=self.items_per_hit,
            payment_per_hit=self.payment_per_hit,
        )
        # Child seeds hash the request identity (attribute + item ids), so
        # the answers for a batch are a pure function of the batch — the
        # dispatch order under a concurrent runtime cannot change them.
        dispatch_seed = (
            derive_seed(self._seed, attribute, tuple(item_ids))
            if self._seed is not None
            else None
        )
        if self.latency_seconds:
            time.sleep(self.latency_seconds)
        result = self._platform.run_group(
            group,
            self._pool,
            quality_control=self._quality_control,
            truth=self._truth.get(attribute, {}),
            seed=dispatch_seed,
        )
        with self._stats_lock:
            self.dispatches += 1
            self.total_cost += result.total_cost
            self.total_judgments += len(result.judgments)
            self.runs.append(result)

        labels = result.majority_labels()
        values = {
            rowid: labels[item_id]
            for rowid, item_id in rowid_to_item.items()
            if item_id in labels
        }
        return values, result.total_cost

    # -- enumeration mode ----------------------------------------------------

    def _enumerate_batch(
        self, predicate: str, items: Sequence[tuple[int, dict[str, Any]]]
    ) -> tuple[dict[int, Any], float]:
        """Answer one open-world enumeration HIT batch for *predicate*.

        Each item id is a *batch index*, not a rowid; the answer for a
        batch is the **list** of worker answers in that batch.  Workers
        sample from the predicate's configured ``universe`` with a
        popularity skew (weight proportional to ``1/(rank+1)`` over the
        universe's listed order, Zipf-like as in the enumeration
        experiments of Trushkowsky et al.), *with replacement* — popular
        species recur across batches, which is exactly the duplicate
        signal species estimators need.

        Answers are a pure function of ``(seed, predicate, batch_index)``:
        like fill mode, the child seed hashes the request identity, never
        the dispatch order, so a seeded source enumerates the same
        sequences at any ``max_concurrent_batches``.  A predicate without
        a configured universe yields empty batches (the engine's dry-batch
        rule then stops the enumeration).
        """
        universe = self._universe.get(predicate)
        if universe is None:
            lowered = predicate.casefold()
            for name, candidate in self._universe.items():
                if name.casefold() == lowered:
                    universe = candidate
                    break
        if not universe:
            return {batch_index: [] for batch_index, _row in items}, 0.0

        count = self.answers_per_batch or self.items_per_hit
        weights = [1.0 / (rank + 1) for rank in range(len(universe))]
        total_weight = sum(weights)
        probabilities = [weight / total_weight for weight in weights]
        if self.latency_seconds:
            time.sleep(self.latency_seconds)

        values: dict[int, Any] = {}
        cost = 0.0
        for batch_index, _row in items:
            rng = ensure_rng(derive_seed(self._seed, "enumerate", predicate, batch_index))
            chosen = rng.choice(len(universe), size=count, replace=True, p=probabilities)
            values[batch_index] = [universe[int(index)] for index in chosen]
            cost += self.payment_per_hit
        with self._stats_lock:
            self.dispatches += len(items)
            self.total_cost += cost
        return values, cost
