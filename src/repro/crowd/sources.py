"""Batched value sources bridging the crowd platform to the query engine.

The query engine's ``CrowdFill`` operator acquires MISSING attribute values
through the narrow :class:`~repro.db.crowd_operators.ValueSource` protocol:
one ``request_values(attribute, items)`` call per coalesced batch.  This
module provides the production-shaped implementation of that protocol on
top of the simulated crowd platform: every batch becomes exactly one
:class:`~repro.crowd.hit.HITGroup` dispatched to a
:class:`~repro.crowd.platform.CrowdPlatform`, with the answers aggregated
by majority vote.  Set-oriented acquisition — one HIT group per batch per
attribute instead of one crowd round-trip per row — is what makes crowd
latency and cost tractable at query time.

The source is **thread-safe**: the
:class:`~repro.crowd.runtime.AcquisitionRuntime` dispatches batches for
different attributes concurrently, so all mutable statistics are guarded by
a lock, and the per-dispatch child seeds are derived from *request
identity* (attribute + item ids), never from dispatch order — the same
workload produces the same answers at any concurrency level.
"""

from __future__ import annotations

import math
import threading
import time
from dataclasses import replace
from typing import Any, Mapping, Sequence

from repro.crowd.aggregation import AccuracyWeightedVote, group_judgments
from repro.crowd.estimation import enumeration_predicate
from repro.crowd.hit import Answer, HITGroup, Question, make_task_items
from repro.crowd.platform import CrowdPlatform, CrowdRunResult
from repro.crowd.quality_control import QualityControl
from repro.crowd.worker import WorkerPool
from repro.crowd.worker_quality import WorkerQualityTracker
from repro.db.acquisition import AcquisitionPolicy
from repro.db.types import is_missing
from repro.utils.rng import RandomState, derive_seed, ensure_rng

__all__ = ["SimulatedCrowdValueSource"]


class SimulatedCrowdValueSource:
    """A batch ValueSource that dispatches one HIT group per request.

    Parameters
    ----------
    platform:
        The (simulated) crowd platform to dispatch HIT groups on.
    pool:
        Worker pool answering the HITs.
    truth:
        ``attribute -> {item_id: bool}`` ground truth driving the simulated
        workers (a live platform would not have this).
    key_column:
        Row column mapping database rows to platform item ids.
    judgments_per_item, items_per_hit, payment_per_hit:
        HIT group shape; forwarded to :class:`~repro.crowd.hit.HITGroup`.
    quality_control:
        Optional quality-control policy applied to every dispatch.
    allow_dont_know:
        Whether workers may answer "I do not know this item" (forwarded to
        the :class:`~repro.crowd.hit.Question` of every dispatch).
        Disabling it forces an answer — the paper's Experiment 3 setting —
        so an odd ``judgments_per_item`` always yields a majority and no
        cell stays unanswered.
    seed:
        Optional explicit seed for the simulated platform runs.  Each
        dispatch derives an independent child seed from the *identity of
        the request* — the attribute and the sorted item ids — so a seeded
        source is fully deterministic regardless of the order in which
        concurrent dispatches execute, while batches over different items
        stay uncorrelated.  (Re-asking the exact same batch deterministically
        reproduces the same answers; that is the property the concurrent
        runtime's determinism guarantee rests on.)  A generator seed is
        frozen to an integer at construction time so later draws cannot
        depend on thread scheduling.  Without a seed the platform's own
        seed governs, which reuses one stream per attribute.
    latency_seconds:
        Simulated platform round-trip latency: every dispatch sleeps this
        many *wall-clock* seconds before returning, standing in for the
        HTTP/queueing latency of a live platform (the simulated
        ``completion_minutes`` clock is separate).  This is what the
        concurrent-acquisition ablation overlaps: with a latency-simulating
        source, dispatching four attributes concurrently costs one
        round-trip instead of four.

    Statistics
    ----------
    ``dispatches`` counts platform calls (one per CrowdFill batch per
    attribute — the quantity the batching contract bounds), ``total_cost``
    and ``total_judgments`` accumulate over all dispatches, and ``runs``
    keeps every :class:`~repro.crowd.platform.CrowdRunResult` for
    inspection.  All statistics are updated atomically under an internal
    lock so concurrent dispatches never lose counts.
    """

    def __init__(
        self,
        platform: CrowdPlatform,
        pool: WorkerPool,
        *,
        truth: Mapping[str, Mapping[int, bool]],
        key_column: str = "item_id",
        judgments_per_item: int = 3,
        items_per_hit: int = 10,
        payment_per_hit: float = 0.02,
        quality_control: QualityControl | None = None,
        allow_dont_know: bool = True,
        prompt: str = "",
        seed: RandomState = None,
        latency_seconds: float = 0.0,
        universe: Mapping[str, Sequence[Any]] | None = None,
        answers_per_batch: int | None = None,
        worker_error_rates: Mapping[int, float] | None = None,
        gold_answers: Mapping[str, Mapping[int, bool]] | None = None,
        quality: bool | None = None,
    ) -> None:
        if latency_seconds < 0:
            raise ValueError("latency_seconds must be non-negative")
        if worker_error_rates:
            for worker_id, rate in worker_error_rates.items():
                if not 0.0 <= rate <= 1.0:
                    raise ValueError(
                        f"worker error rate must be in [0, 1], got {rate} "
                        f"for worker {worker_id}"
                    )
            # Mixed-reliability pools for the quality ablation: a listed
            # worker always answers and flips the true label with exactly
            # their error rate (knowledge/claim gating off), keyed by
            # worker identity so seeded pools stay reproducible.
            pool = WorkerPool(
                [
                    replace(
                        worker,
                        accuracy=1.0 - worker_error_rates[worker.worker_id],
                        knowledge_prob=1.0,
                        claimed_knowledge_prob=1.0,
                    )
                    if worker.worker_id in worker_error_rates
                    else worker
                    for worker in pool
                ]
            )
        self._platform = platform
        self._pool = pool
        # Freeze generator seeds immediately: drawing from a shared
        # generator at dispatch time would make child seeds depend on the
        # order concurrent dispatches happen to run in.
        self._seed = derive_seed(seed, "value-source") if seed is not None else None
        self._truth = {attr: dict(values) for attr, values in truth.items()}
        self.key_column = key_column
        self.judgments_per_item = judgments_per_item
        self.items_per_hit = items_per_hit
        self.payment_per_hit = payment_per_hit
        self._quality_control = quality_control
        self.allow_dont_know = allow_dont_know
        self._prompt = prompt
        self.latency_seconds = latency_seconds
        if answers_per_batch is not None and answers_per_batch <= 0:
            raise ValueError("answers_per_batch must be positive")
        self._universe = (
            {predicate: list(items) for predicate, items in universe.items()}
            if universe is not None
            else {}
        )
        self.answers_per_batch = answers_per_batch
        self._gold = (
            {attr: dict(labels) for attr, labels in gold_answers.items()}
            if gold_answers is not None
            else {}
        )
        #: Whether the runtime should route this source's dispatches
        #: through :meth:`request_values_with_quality` (accuracy-weighted
        #: aggregation + adaptive assignment sizing).  Defaults on when
        #: gold answers or per-worker error rates were configured.
        self.quality_enabled = (
            bool(self._gold or worker_error_rates) if quality is None else bool(quality)
        )
        self._stats_lock = threading.Lock()
        self.dispatches = 0
        self.total_cost = 0.0
        self.total_judgments = 0
        #: Billable platform assignments completed (the unit adaptive
        #: sizing saves; one dispatch completes many assignments).
        self.total_assignments = 0
        self.runs: list[CrowdRunResult] = []

    def request_values(
        self, attribute: str, items: Sequence[tuple[int, dict[str, Any]]]
    ) -> dict[int, Any]:
        """Answer one batch: dispatch a single HIT group for *attribute*.

        Rows whose *key_column* is NULL/MISSING cannot be mapped to a
        platform item and stay unanswered; items without a clear majority
        are likewise omitted, leaving their cells MISSING.
        """
        values, _cost = self.request_values_with_cost(attribute, items)
        return values

    def request_values_with_cost(
        self, attribute: str, items: Sequence[tuple[int, dict[str, Any]]]
    ) -> tuple[dict[int, Any], float]:
        """Like :meth:`request_values`, also returning this dispatch's cost.

        The per-dispatch cost lets the
        :class:`~repro.crowd.runtime.AcquisitionRuntime` charge session
        budgets exactly even when several dispatches run concurrently
        (sampling ``total_cost`` deltas would race).
        """
        predicate = enumeration_predicate(attribute)
        if predicate is not None:
            return self._enumerate_batch(predicate, items)
        rowid_to_item: dict[int, int] = {}
        for rowid, row in items:
            key = row.get(self.key_column)
            if key is None or is_missing(key):
                continue
            rowid_to_item[rowid] = int(key)
        if not rowid_to_item:
            return {}, 0.0

        item_ids = sorted(set(rowid_to_item.values()))
        group = HITGroup(
            question=Question(
                attribute=attribute,
                prompt=self._prompt,
                allow_dont_know=self.allow_dont_know,
            ),
            items=make_task_items(item_ids),
            judgments_per_item=self.judgments_per_item,
            items_per_hit=self.items_per_hit,
            payment_per_hit=self.payment_per_hit,
        )
        # Child seeds hash the request identity (attribute + item ids), so
        # the answers for a batch are a pure function of the batch — the
        # dispatch order under a concurrent runtime cannot change them.
        dispatch_seed = (
            derive_seed(self._seed, attribute, tuple(item_ids))
            if self._seed is not None
            else None
        )
        if self.latency_seconds:
            time.sleep(self.latency_seconds)
        result = self._platform.run_group(
            group,
            self._pool,
            quality_control=self._quality_control,
            truth=self._truth.get(attribute, {}),
            seed=dispatch_seed,
        )
        with self._stats_lock:
            self.dispatches += 1
            self.total_cost += result.total_cost
            self.total_judgments += len(result.judgments)
            self.total_assignments += result.assignments_completed
            self.runs.append(result)

        labels = result.majority_labels()
        values = {
            rowid: labels[item_id]
            for rowid, item_id in rowid_to_item.items()
            if item_id in labels
        }
        return values, result.total_cost

    def request_values_with_quality(
        self,
        attribute: str,
        items: Sequence[tuple[int, dict[str, Any]]],
        *,
        policy: AcquisitionPolicy | None = None,
        tracker: WorkerQualityTracker | None = None,
    ) -> tuple[dict[int, Any], float, dict[str, Any]]:
        """Quality-tracked batch: adaptive sizing + accuracy-weighted votes.

        Instead of one dispatch at a fixed ``judgments_per_item``, the
        batch runs in *rounds*: every item starts with the policy's
        ``min_assignments`` judgments, accumulated judgments are
        aggregated with :class:`~repro.crowd.aggregation.AccuracyWeightedVote`
        (weights from *tracker*), and items whose posterior confidence
        reaches ``target_cell_confidence`` settle immediately — only the
        unconfident remainder buys further judgments, up to
        ``max_assignments``.  Each round is padded with seeded gold items
        (``gold_fraction``) whose known answers feed the tracker; settled
        labels feed it agreement evidence.

        Returns ``(values, cost, stats)`` where ``stats`` carries the
        per-rowid posterior ``confidences``, the billable ``assignments``
        completed, ``assignments_saved`` versus paying ``max_assignments``
        for every item, the ``rounds`` dispatched, ``gold_injected`` and
        the ``mean_worker_accuracy`` over the workers seen.
        """
        predicate = enumeration_predicate(attribute)
        if predicate is not None:
            values, cost = self._enumerate_batch(predicate, items)
            return values, cost, {}
        if policy is None:
            policy = AcquisitionPolicy()
        rowid_to_item: dict[int, int] = {}
        for rowid, row in items:
            key = row.get(self.key_column)
            if key is None or is_missing(key):
                continue
            rowid_to_item[rowid] = int(key)
        if not rowid_to_item:
            return {}, 0.0, {}

        item_ids = sorted(set(rowid_to_item.values()))
        truth = self._truth.get(attribute, {})
        # Gold items must be disjoint from the batch: an item cannot both
        # be asked for real and grade the workers answering it.
        gold_pool = {
            item_id: bool(label)
            for item_id, label in self._gold.get(attribute, {}).items()
            if item_id not in set(item_ids)
        }
        min_a = policy.min_assignments
        max_a = policy.max_assignments
        target = policy.target_cell_confidence

        pending = list(item_ids)
        accumulated: list[Any] = []  # non-gold judgments across rounds
        labels: dict[int, bool] = {}
        confidences: dict[int, float] = {}
        settled_at: dict[int, int] = {}
        worker_ids: set[int] = set()
        cost = 0.0
        assignments = 0
        gold_injected = 0
        given = 0
        rounds = 0
        while pending:
            step = min_a if given == 0 else min(2, max_a - given)
            gold_ids: list[int] = []
            if gold_pool and policy.gold_fraction > 0:
                n_gold = min(len(gold_pool), math.ceil(policy.gold_fraction * len(pending)))
                ordered = sorted(gold_pool)
                # Rotate through the gold pool round-by-round so repeated
                # rounds grade workers on fresh gold items.
                offset = (rounds * n_gold) % len(ordered)
                gold_ids = [ordered[(offset + i) % len(ordered)] for i in range(n_gold)]
            group = HITGroup(
                question=Question(
                    attribute=attribute,
                    prompt=self._prompt,
                    allow_dont_know=self.allow_dont_know,
                ),
                items=make_task_items(
                    sorted(pending) + gold_ids,
                    gold_answers={
                        gold_id: Answer.from_bool(gold_pool[gold_id])
                        for gold_id in gold_ids
                    },
                ),
                judgments_per_item=step,
                items_per_hit=self.items_per_hit,
                payment_per_hit=self.payment_per_hit,
            )
            # Like the flat path, the child seed hashes request identity —
            # here including the round's judgment offset, so escalation
            # rounds draw fresh answers while staying order-independent.
            dispatch_seed = (
                derive_seed(self._seed, "quality", attribute, tuple(pending), given)
                if self._seed is not None
                else None
            )
            if self.latency_seconds:
                time.sleep(self.latency_seconds)
            result = self._platform.run_group(
                group,
                self._pool,
                quality_control=self._quality_control,
                truth=truth,
                seed=dispatch_seed,
            )
            rounds += 1
            given += step
            cost += result.total_cost
            assignments += result.assignments_completed
            gold_injected += len(gold_ids)
            with self._stats_lock:
                self.dispatches += 1
                self.total_cost += result.total_cost
                self.total_judgments += len(result.judgments)
                self.total_assignments += result.assignments_completed
                self.runs.append(result)

            gold_truth = {gold_id: gold_pool[gold_id] for gold_id in gold_ids}
            for judgment in result.judgments:
                worker_ids.add(judgment.worker_id)
                if judgment.is_gold:
                    expected = gold_truth.get(judgment.item_id)
                    if tracker is not None and expected is not None and judgment.informative:
                        tracker.observe_gold(
                            judgment.worker_id,
                            (judgment.answer is Answer.POSITIVE) == expected,
                        )
                else:
                    accumulated.append(judgment)

            vote = AccuracyWeightedVote(tracker) if tracker is not None else AccuracyWeightedVote()
            by_item = group_judgments(accumulated)
            final_round = given >= max_a
            still_pending: list[int] = []
            for item_id in pending:
                outcome = vote.aggregate_item(item_id, by_item.get(item_id, []))
                if outcome.classified and (outcome.confidence >= target or final_round):
                    labels[item_id] = bool(outcome.label)
                    confidences[item_id] = outcome.confidence
                    settled_at[item_id] = given
                    if tracker is not None:
                        for judgment in by_item.get(item_id, []):
                            if judgment.informative:
                                tracker.observe_agreement(
                                    judgment.worker_id,
                                    (judgment.answer is Answer.POSITIVE) == outcome.label,
                                )
                elif final_round:
                    # No informative quorum / dead tie at the cap: the cell
                    # stays MISSING, but its (low) confidence is reported so
                    # re-acquisition can pick it up later.
                    confidences[item_id] = outcome.confidence
                else:
                    still_pending.append(item_id)
            pending = [] if final_round else still_pending

        saved = sum(max_a - settled for settled in settled_at.values())
        values = {
            rowid: labels[item_id]
            for rowid, item_id in rowid_to_item.items()
            if item_id in labels
        }
        stats: dict[str, Any] = {
            "confidences": {
                rowid: confidences[item_id]
                for rowid, item_id in rowid_to_item.items()
                if item_id in confidences
            },
            "assignments": assignments,
            "assignments_saved": saved,
            "rounds": rounds,
            "gold_injected": gold_injected,
            "mean_worker_accuracy": (
                tracker.mean_accuracy(worker_ids)
                if tracker is not None and worker_ids
                else None
            ),
        }
        return values, cost, stats

    # -- enumeration mode ----------------------------------------------------

    def _enumerate_batch(
        self, predicate: str, items: Sequence[tuple[int, dict[str, Any]]]
    ) -> tuple[dict[int, Any], float]:
        """Answer one open-world enumeration HIT batch for *predicate*.

        Each item id is a *batch index*, not a rowid; the answer for a
        batch is the **list** of worker answers in that batch.  Workers
        sample from the predicate's configured ``universe`` with a
        popularity skew (weight proportional to ``1/(rank+1)`` over the
        universe's listed order, Zipf-like as in the enumeration
        experiments of Trushkowsky et al.), *with replacement* — popular
        species recur across batches, which is exactly the duplicate
        signal species estimators need.

        Answers are a pure function of ``(seed, predicate, batch_index)``:
        like fill mode, the child seed hashes the request identity, never
        the dispatch order, so a seeded source enumerates the same
        sequences at any ``max_concurrent_batches``.  A predicate without
        a configured universe yields empty batches (the engine's dry-batch
        rule then stops the enumeration).
        """
        universe = self._universe.get(predicate)
        if universe is None:
            lowered = predicate.casefold()
            for name, candidate in self._universe.items():
                if name.casefold() == lowered:
                    universe = candidate
                    break
        if not universe:
            return {batch_index: [] for batch_index, _row in items}, 0.0

        count = self.answers_per_batch or self.items_per_hit
        weights = [1.0 / (rank + 1) for rank in range(len(universe))]
        total_weight = sum(weights)
        probabilities = [weight / total_weight for weight in weights]
        if self.latency_seconds:
            time.sleep(self.latency_seconds)

        values: dict[int, Any] = {}
        cost = 0.0
        for batch_index, _row in items:
            rng = ensure_rng(derive_seed(self._seed, "enumerate", predicate, batch_index))
            chosen = rng.choice(len(universe), size=count, replace=True, p=probabilities)
            values[batch_index] = [universe[int(index)] for index in chosen]
            cost += self.payment_per_hit
        with self._stats_lock:
            self.dispatches += len(items)
            self.total_cost += cost
        return values, cost
