"""CI smoke test for the served database, exercising the real deployment path.

Unlike ``tests/server/``, which drives :class:`ReproServer` in-process, this
script does exactly what an operator does: start ``python -m repro serve`` as
its own process, point concurrent wire clients at it, send SIGTERM, and check
that the drain honoured the contract — exit code 0, directory lock released,
every acknowledged statement recovered by the next opener.
"""

from __future__ import annotations

import os
import re
import signal
import subprocess
import sys
import tempfile
import threading
import time

import repro
import repro.client

N_CLIENTS = 16
ROWS_PER_CLIENT = 25


def spawn_server(db_path: str) -> tuple[subprocess.Popen, str, int]:
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--db-path", db_path, "--port", "0"],
        env=dict(os.environ),
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        match = re.search(r"listening on ([\d.]+):(\d+)", line)
        if match:
            return proc, match.group(1), int(match.group(2))
    proc.kill()
    raise SystemExit("server subprocess never reported its address")


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        db_path = os.path.join(tmp, "smokedb")
        proc, host, port = spawn_server(db_path)
        try:
            seed = repro.client.connect(host, port, tenant="smoke")
            seed.execute("CREATE TABLE smoke (client INTEGER, seq INTEGER)")
            seed.close()

            errors: list[BaseException] = []

            def client_run(idx: int) -> None:
                try:
                    conn = repro.client.connect(host, port, tenant=f"smoke-{idx}")
                    for seq in range(ROWS_PER_CLIENT):
                        conn.execute("INSERT INTO smoke VALUES (?, ?)", (idx, seq))
                    rows = conn.execute(
                        "SELECT COUNT(*) FROM smoke WHERE client = ?", (idx,)
                    ).fetchall()
                    assert rows == [(ROWS_PER_CLIENT,)], rows
                    conn.close()
                except BaseException as exc:
                    errors.append(exc)

            threads = [
                threading.Thread(target=client_run, args=(i,)) for i in range(N_CLIENTS)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120)
            if errors:
                raise SystemExit(f"client errors under load: {errors[:3]}")

            proc.send_signal(signal.SIGTERM)
            code = proc.wait(timeout=60)
            if code != 0:
                raise SystemExit(f"server exited {code} on SIGTERM, wanted 0")
        finally:
            if proc.poll() is None:
                proc.kill()

        # Drain released the directory lock and flushed the WAL: reopening
        # in-process recovers every acknowledged row.
        check = repro.connect(path=db_path)
        try:
            total = check.execute("SELECT COUNT(*) FROM smoke").fetchone()[0]
        finally:
            check.close()
        expected = N_CLIENTS * ROWS_PER_CLIENT
        if total != expected:
            raise SystemExit(f"recovered {total} rows, acknowledged {expected}")
        print(
            f"server smoke OK: {N_CLIENTS} clients x {ROWS_PER_CLIENT} inserts, "
            f"clean SIGTERM drain, {total} rows recovered"
        )


if __name__ == "__main__":
    main()
