"""Documentation health checks: intra-repo links resolve, quickstart runs.

CI's ``docs`` job runs this module.  It fails on

* broken intra-repo links (file targets and ``#heading`` anchors) in
  ``docs/**/*.md`` and ``README.md``, and
* a ``docs/api.md`` quickstart that no longer executes against the
  current code.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Inline markdown links/images: ``[text](target)`` / ``![alt](target)``.
LINK_PATTERN = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)\)")
HEADING_PATTERN = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
FENCE_PATTERN = re.compile(r"```.*?```", re.DOTALL)


def markdown_files() -> list[Path]:
    files = [REPO_ROOT / "README.md"]
    files.extend(sorted((REPO_ROOT / "docs").rglob("*.md")))
    return files


def github_slug(heading: str) -> str:
    """GitHub's heading-to-anchor slug (enough of it for our headings)."""
    slug = heading.strip().lower()
    slug = re.sub(r"[`*_]", "", slug)
    slug = re.sub(r"[^\w\s-]", "", slug)
    return re.sub(r"\s+", "-", slug)


def anchors_of(path: Path) -> set[str]:
    text = FENCE_PATTERN.sub("", path.read_text(encoding="utf-8"))
    return {github_slug(match.group(1)) for match in HEADING_PATTERN.finditer(text)}


def links_of(path: Path) -> list[str]:
    text = FENCE_PATTERN.sub("", path.read_text(encoding="utf-8"))
    return [match.group(1) for match in LINK_PATTERN.finditer(text)]


@pytest.mark.parametrize("path", markdown_files(), ids=lambda p: str(p.relative_to(REPO_ROOT)))
def test_intra_repo_links_resolve(path: Path):
    assert path.exists(), f"documentation page {path} is missing"
    broken: list[str] = []
    for target in links_of(path):
        if target.startswith(("http://", "https://", "mailto:")):
            continue  # external; CI does not depend on the network
        base, _, fragment = target.partition("#")
        resolved = (path.parent / base).resolve() if base else path
        if not str(resolved).startswith(str(REPO_ROOT)):
            continue  # GitHub-UI relative URL (e.g. ../../actions/...): not a file
        if not resolved.exists():
            broken.append(f"{target} -> missing file {resolved}")
            continue
        if fragment and resolved.suffix == ".md" and fragment not in anchors_of(resolved):
            broken.append(f"{target} -> no heading for anchor #{fragment}")
    assert not broken, f"broken links in {path.relative_to(REPO_ROOT)}:\n" + "\n".join(broken)


def test_docs_tree_is_complete():
    """The canonical pages the README advertises must exist."""
    for name in (
        "architecture.md",
        "operators.md",
        "acquisition.md",
        "quality.md",
        "enumeration.md",
        "persistence.md",
        "api.md",
        "server.md",
    ):
        assert (REPO_ROOT / "docs" / name).is_file(), f"docs/{name} is missing"


def extract_first_python_block(path: Path) -> str:
    match = re.search(r"```python\n(.*?)```", path.read_text(encoding="utf-8"), re.DOTALL)
    assert match, f"{path} has no ```python code block"
    return match.group(1)


def test_api_quickstart_executes():
    """The docs/api.md quickstart is executable documentation."""
    code = extract_first_python_block(REPO_ROOT / "docs" / "api.md")
    namespace: dict[str, object] = {"__name__": "docs_api_quickstart"}
    exec(compile(code, "docs/api.md::quickstart", "exec"), namespace)  # noqa: S102


def test_readme_quickstart_executes():
    """The README quickstart must stay runnable too (prints aside)."""
    code = extract_first_python_block(REPO_ROOT / "README.md")
    namespace: dict[str, object] = {"__name__": "readme_quickstart"}
    exec(compile(code, "README.md::quickstart", "exec"), namespace)  # noqa: S102


def test_served_database_example_executes():
    """The docs/server.md walkthrough (examples/served_database.py) runs.

    The example asserts its own punchline — the second tenant's repeat of
    a crowd query costs zero additional platform calls — so executing it
    is the regression test for the cross-tenant reuse the page documents.
    """
    import runpy

    runpy.run_path(
        str(REPO_ROOT / "examples" / "served_database.py"), run_name="__main__"
    )
