"""Tests for the shared utilities (rng plumbing, clocks, table rendering)."""

from __future__ import annotations

import time

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.rng import derive_seed, ensure_rng, spawn_rng
from repro.utils.tables import format_table
from repro.utils.timing import SimulatedClock, Stopwatch


class TestEnsureRng:
    def test_none_gives_default_deterministic_stream(self):
        first = ensure_rng(None).integers(0, 1000, size=5)
        second = ensure_rng(None).integers(0, 1000, size=5)
        assert np.array_equal(first, second)

    def test_int_seed(self):
        assert np.array_equal(
            ensure_rng(7).integers(0, 100, 5), ensure_rng(7).integers(0, 100, 5)
        )

    def test_generator_passthrough(self):
        rng = np.random.default_rng(1)
        assert ensure_rng(rng) is rng

    def test_invalid_seed_type(self):
        with pytest.raises(TypeError):
            ensure_rng("seed")


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, "a", 2) == derive_seed(1, "a", 2)

    def test_labels_change_seed(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_spawn_rng_independent_streams(self):
        first = spawn_rng(0, "component-a").integers(0, 10**6, 10)
        second = spawn_rng(0, "component-b").integers(0, 10**6, 10)
        assert not np.array_equal(first, second)

    @given(st.integers(0, 2**31 - 1), st.text(max_size=20))
    def test_seed_is_in_uint32_range(self, base, label):
        seed = derive_seed(base, label)
        assert 0 <= seed < 2**32


class TestSimulatedClock:
    def test_advance(self):
        clock = SimulatedClock()
        assert clock.advance(5.0) == 5.0
        assert clock.advance(2.5) == 7.5
        assert clock.history == (5.0, 7.5)

    def test_advance_negative_rejected(self):
        with pytest.raises(ValueError):
            SimulatedClock().advance(-1.0)

    def test_advance_to(self):
        clock = SimulatedClock()
        clock.advance_to(10.0)
        clock.advance_to(5.0)  # earlier times are ignored
        assert clock.now_minutes == 10.0

    def test_reset(self):
        clock = SimulatedClock()
        clock.advance(3.0)
        clock.reset()
        assert clock.now_minutes == 0.0
        assert clock.history == ()


class TestStopwatch:
    def test_measures_elapsed_time(self):
        with Stopwatch() as watch:
            assert watch.running()
            time.sleep(0.01)
        assert not watch.running()
        assert watch.elapsed_seconds >= 0.005


class TestFormatTable:
    def test_alignment_and_floats(self):
        text = format_table(
            ["Genre", "g-mean"],
            [("Comedy", 0.756), ("Horror", 0.9)],
            float_format=".2f",
            title="Results",
        )
        lines = text.splitlines()
        assert lines[0] == "Results"
        assert "0.76" in text
        assert "Comedy" in text
        assert len(lines) == 5

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [(1,)])

    def test_empty_rows(self):
        text = format_table(["a"], [])
        assert "a" in text
