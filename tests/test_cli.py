"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import EXPERIMENT_CHOICES, build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_experiment_choices(self):
        parser = build_parser()
        args = parser.parse_args(["experiment", "table3", "--scale", "small"])
        assert args.name == "table3"
        assert args.scale == "small"
        with pytest.raises(SystemExit):
            parser.parse_args(["experiment", "table9"])

    def test_all_experiment_names_are_known(self):
        assert set(EXPERIMENT_CHOICES) == {
            "table1", "table2", "table3", "table4", "table5", "table6",
            "figure3", "figure4", "tsvm",
        }


class TestCommands:
    def test_demo_runs_end_to_end(self, capsys):
        exit_code = main(["demo", "--movies", "150", "--seed", "3"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "Top comedies" in captured.out
        assert "Filled" in captured.out

    def test_demo_persists_and_reruns_without_crowd_spend(self, tmp_path, capsys):
        db_path = str(tmp_path / "demo-db")
        assert main(["demo", "--movies", "120", "--seed", "3", "--db-path", db_path]) == 0
        first = capsys.readouterr().out
        assert "Filled" in first
        assert "Durability:" in first
        # Rerun against the same directory: the crowd answers were paid
        # once; the reopened database serves them from disk.
        assert main(["demo", "--movies", "120", "--seed", "3", "--db-path", db_path]) == 0
        second = capsys.readouterr().out
        assert "Reopened persisted database" in second
        assert "no new crowd spend" in second

    def test_experiment_table2_small(self, capsys):
        exit_code = main(["experiment", "table2", "--scale", "small"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "Nearest neighbours" in captured.out

    def test_experiment_table5_small(self, capsys):
        exit_code = main(
            ["experiment", "table5", "--scale", "small", "--repetitions", "1"]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "restaurants" in captured.out

    def test_build_space_persists_archive(self, tmp_path, capsys):
        output = tmp_path / "space.npz"
        exit_code = main(
            [
                "build-space",
                str(output),
                "--movies", "80",
                "--users", "200",
                "--factors", "8",
                "--epochs", "5",
                "--ratings-output", str(tmp_path / "ratings.npz"),
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert output.exists()
        assert (tmp_path / "ratings.npz").exists()
        assert "Wrote perceptual space" in captured.out

        from repro.perceptual import load_space

        space = load_space(output)
        assert space.n_items == 80
        assert space.metadata["corpus"] == "movies"


class TestLint:
    @pytest.fixture(autouse=True)
    def _from_repo_root(self, monkeypatch):
        from pathlib import Path

        monkeypatch.chdir(Path(__file__).resolve().parent.parent)

    def test_lint_src_is_clean(self, capsys):
        assert main(["lint", "src"]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_lint_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "lock-order" in out
        assert "charge-once" in out

    def test_lint_flags_violations(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import random\n")
        assert main(["lint", str(bad)]) == 1
        assert "seeded-rng" in capsys.readouterr().out

    def test_lint_writes_json_report(self, tmp_path):
        import json

        report_path = tmp_path / "reprolint.json"
        code = main(["lint", "src", "--format", "json", "--output", str(report_path)])
        assert code == 0
        payload = json.loads(report_path.read_text())
        assert payload["summary"]["ok"] is True
        assert len(payload["rules"]) >= 8
