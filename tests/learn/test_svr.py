"""Tests for the kernel support vector regressor."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import LearningError, NotFittedError
from repro.learn.svr import SVR


@pytest.fixture
def regression_data():
    rng = np.random.default_rng(0)
    X = rng.normal(size=(120, 4))
    y = 2.0 * X[:, 0] - 1.5 * X[:, 1] + 0.5 * np.sin(2 * X[:, 2]) + rng.normal(0, 0.1, 120)
    return X, y


class TestValidation:
    @pytest.mark.parametrize("kwargs", [
        {"C": 0}, {"epsilon": -0.1}, {"learning_rate": 0}, {"n_iterations": 0},
    ])
    def test_invalid_parameters(self, kwargs):
        with pytest.raises(LearningError):
            SVR(**kwargs)

    def test_shape_mismatch(self):
        with pytest.raises(LearningError):
            SVR().fit(np.zeros((5, 2)), np.zeros(3))

    def test_non_2d_features(self):
        with pytest.raises(LearningError):
            SVR().fit(np.zeros(5), np.zeros(5))

    def test_unfitted_predict(self):
        with pytest.raises(NotFittedError):
            SVR().predict(np.zeros((2, 2)))


class TestRegressionQuality:
    def test_fits_smooth_function(self, regression_data):
        X, y = regression_data
        model = SVR(C=2.0, n_iterations=400).fit(X, y)
        assert model.score(X, y) > 0.7

    def test_objective_decreases(self, regression_data):
        X, y = regression_data
        model = SVR(C=1.0, n_iterations=200).fit(X, y)
        assert model.loss_history_[-1] < model.loss_history_[0]

    def test_predictions_shape(self, regression_data):
        X, y = regression_data
        model = SVR(n_iterations=100).fit(X, y)
        assert model.predict(X[:7]).shape == (7,)
        assert model.predict(X[0]).shape == (1,)

    def test_constant_target(self):
        X = np.random.default_rng(1).normal(size=(30, 3))
        y = np.full(30, 4.2)
        model = SVR(n_iterations=100).fit(X, y)
        assert np.allclose(model.predict(X), 4.2, atol=0.5)
        assert model.score(X, y) in (0.0, 1.0)

    def test_generalisation(self):
        rng = np.random.default_rng(2)
        X_train = rng.normal(size=(150, 2))
        y_train = X_train[:, 0] + X_train[:, 1] ** 2
        X_test = rng.normal(size=(50, 2))
        y_test = X_test[:, 0] + X_test[:, 1] ** 2
        model = SVR(C=2.0, n_iterations=400).fit(X_train, y_train)
        assert model.score(X_test, y_test) > 0.5

    def test_linear_kernel(self, regression_data):
        X, y = regression_data
        model = SVR(kernel="linear", C=1.0, n_iterations=300).fit(X, y)
        assert model.score(X, y) > 0.6

    def test_epsilon_insensitivity(self):
        # With a huge epsilon nothing is penalised and predictions collapse
        # towards the mean of the targets.
        rng = np.random.default_rng(3)
        X = rng.normal(size=(50, 2))
        y = 3.0 + X[:, 0]
        loose = SVR(epsilon=10.0, n_iterations=200).fit(X, y)
        assert np.allclose(loose.predict(X), y.mean(), atol=1.0)
