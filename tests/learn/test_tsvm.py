"""Tests for the transductive SVM."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import LearningError, NotFittedError
from repro.learn.svm import SVC
from repro.learn.tsvm import TransductiveSVC


def blobs(n: int, seed: int = 0):
    rng = np.random.default_rng(seed)
    X = np.vstack([rng.normal(0.0, 1.0, (n, 4)), rng.normal(2.5, 1.0, (n, 4))])
    y = np.array([False] * n + [True] * n)
    return X, y


class TestValidation:
    def test_invalid_parameters(self):
        with pytest.raises(LearningError):
            TransductiveSVC(C=0)
        with pytest.raises(LearningError):
            TransductiveSVC(C_unlabeled=0)
        with pytest.raises(LearningError):
            TransductiveSVC(n_outer_iterations=0)

    def test_dimension_mismatch(self):
        with pytest.raises(LearningError):
            TransductiveSVC().fit(np.zeros((4, 3)), np.array([True, False, True, False]), np.zeros((2, 2)))

    def test_unfitted_predict(self):
        with pytest.raises(NotFittedError):
            TransductiveSVC().predict(np.zeros((2, 2)))


class TestSemiSupervisedLearning:
    def test_matches_supervised_on_plenty_of_labels(self):
        X, y = blobs(60, seed=1)
        rng = np.random.default_rng(2)
        labeled_idx = rng.choice(len(X), 40, replace=False)
        unlabeled_idx = np.setdiff1d(np.arange(len(X)), labeled_idx)

        supervised = SVC(seed=0).fit(X[labeled_idx], y[labeled_idx])
        transductive = TransductiveSVC(seed=0, positive_fraction=0.5)
        transductive.fit(X[labeled_idx], y[labeled_idx], X[unlabeled_idx])

        supervised_accuracy = np.mean(supervised.predict(X) == y)
        transductive_accuracy = np.mean(transductive.predict(X) == y)
        assert transductive_accuracy >= supervised_accuracy - 0.05

    def test_works_without_unlabeled_data(self):
        X, y = blobs(30, seed=3)
        model = TransductiveSVC(seed=0).fit(X, y, np.empty((0, X.shape[1])))
        assert np.mean(model.predict(X) == y) > 0.9

    def test_decision_function_available(self):
        X, y = blobs(30, seed=4)
        model = TransductiveSVC(seed=0).fit(X[:40], y[:40], X[40:])
        scores = model.decision_function(X)
        assert scores.shape == (len(X),)
        assert np.array_equal(scores >= 0, model.predict(X))

    def test_label_switches_counted(self):
        X, y = blobs(40, seed=5)
        rng = np.random.default_rng(6)
        labeled_idx = rng.choice(len(X), 10, replace=False)
        unlabeled_idx = np.setdiff1d(np.arange(len(X)), labeled_idx)
        model = TransductiveSVC(seed=0)
        model.fit(X[labeled_idx], y[labeled_idx], X[unlabeled_idx])
        assert model.n_label_switches_ >= 0

    def test_positive_fraction_constraint(self):
        X, y = blobs(50, seed=7)
        rng = np.random.default_rng(8)
        labeled_idx = rng.choice(len(X), 12, replace=False)
        unlabeled_idx = np.setdiff1d(np.arange(len(X)), labeled_idx)
        model = TransductiveSVC(seed=0, positive_fraction=0.5)
        model.fit(X[labeled_idx], y[labeled_idx], X[unlabeled_idx])
        predictions = model.predict(X)
        positive_rate = predictions.mean()
        assert 0.3 < positive_rate < 0.7

    def test_slower_than_plain_svc_but_comparable_quality(self):
        import time

        X, y = blobs(80, seed=9)
        rng = np.random.default_rng(10)
        labeled_idx = rng.choice(len(X), 20, replace=False)
        unlabeled_idx = np.setdiff1d(np.arange(len(X)), labeled_idx)

        start = time.perf_counter()
        supervised = SVC(seed=0).fit(X[labeled_idx], y[labeled_idx])
        svc_time = time.perf_counter() - start

        start = time.perf_counter()
        transductive = TransductiveSVC(seed=0).fit(
            X[labeled_idx], y[labeled_idx], X[unlabeled_idx]
        )
        tsvm_time = time.perf_counter() - start

        assert tsvm_time > svc_time
        assert np.mean(transductive.predict(X) == y) > 0.85
