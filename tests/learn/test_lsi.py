"""Tests for TF-IDF vectorisation and latent semantic indexing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import LearningError, NotFittedError
from repro.learn.lsi import (
    LatentSemanticIndex,
    TfIdfVectorizer,
    build_metadata_documents,
    tokenize_text,
)

DOCUMENTS = [
    "action hero explosion fight chase",
    "romantic love story wedding kiss",
    "action fight war battle soldier",
    "love romance heartbreak wedding",
    "space alien laser action battle",
    "comedy love laughter wedding party",
] * 3


class TestTokenizer:
    def test_lowercases_and_splits(self):
        assert tokenize_text("Hello, World! 42") == ["hello", "world", "42"]

    def test_empty_text(self):
        assert tokenize_text("...") == []


class TestTfIdfVectorizer:
    def test_fit_transform_shape(self):
        matrix = TfIdfVectorizer().fit_transform(DOCUMENTS)
        assert matrix.shape[0] == len(DOCUMENTS)
        assert matrix.shape[1] > 0

    def test_rows_are_l2_normalised(self):
        matrix = TfIdfVectorizer().fit_transform(DOCUMENTS)
        norms = np.sqrt(matrix.multiply(matrix).sum(axis=1)).A1
        nonzero = norms > 0
        assert np.allclose(norms[nonzero], 1.0)

    def test_min_document_frequency_prunes_rare_terms(self):
        full = TfIdfVectorizer(min_document_frequency=1).fit(DOCUMENTS)
        pruned = TfIdfVectorizer(min_document_frequency=4).fit(DOCUMENTS)
        assert len(pruned.vocabulary_) < len(full.vocabulary_)

    def test_max_features(self):
        vectorizer = TfIdfVectorizer(max_features=5).fit(DOCUMENTS)
        assert len(vectorizer.vocabulary_) == 5

    def test_unknown_tokens_ignored_at_transform(self):
        vectorizer = TfIdfVectorizer().fit(DOCUMENTS)
        matrix = vectorizer.transform(["completely unseen words"])
        assert matrix.nnz == 0

    def test_unfitted_transform(self):
        with pytest.raises(NotFittedError):
            TfIdfVectorizer().transform(["x"])

    def test_empty_corpus(self):
        with pytest.raises(LearningError):
            TfIdfVectorizer().fit([])

    def test_invalid_min_document_frequency(self):
        with pytest.raises(LearningError):
            TfIdfVectorizer(min_document_frequency=0)


class TestLatentSemanticIndex:
    def test_projection_shape(self):
        lsi = LatentSemanticIndex(n_components=4).fit(DOCUMENTS)
        projected = lsi.transform(DOCUMENTS)
        assert projected.shape == (len(DOCUMENTS), 4)

    def test_components_capped_by_matrix_rank(self):
        lsi = LatentSemanticIndex(n_components=100).fit(DOCUMENTS[:6])
        assert lsi.components_.shape[0] < 100

    def test_similar_documents_are_close(self):
        lsi = LatentSemanticIndex(n_components=3).fit(DOCUMENTS)
        projected = lsi.transform(
            ["action fight battle", "love wedding romance", "war battle action"]
        )
        action_to_action = np.linalg.norm(projected[0] - projected[2])
        action_to_love = np.linalg.norm(projected[0] - projected[1])
        assert action_to_action < action_to_love

    def test_fit_transform_equivalent_to_fit_then_transform(self):
        first = LatentSemanticIndex(n_components=3).fit_transform(DOCUMENTS)
        lsi = LatentSemanticIndex(n_components=3).fit(DOCUMENTS)
        second = lsi.transform(DOCUMENTS)
        assert np.allclose(np.abs(first), np.abs(second), atol=1e-8)

    def test_invalid_components(self):
        with pytest.raises(LearningError):
            LatentSemanticIndex(n_components=0)

    def test_unfitted_transform(self):
        with pytest.raises(NotFittedError):
            LatentSemanticIndex().transform(["x"])


class TestBuildMetadataDocuments:
    def test_flattening(self):
        metadata = {
            2: {"title": "Rocky", "year": 1976, "actors": ["Stallone", "Shire"]},
            1: {"title": "Psycho", "year": 1960, "actors": ["Perkins"]},
        }
        item_ids, documents = build_metadata_documents(metadata)
        assert item_ids == [1, 2]
        assert "Psycho" in documents[0]
        assert "Stallone" in documents[1]
        assert "1976" in documents[1]

    def test_field_selection(self):
        metadata = {1: {"title": "Rocky", "secret": "hidden"}}
        _ids, documents = build_metadata_documents(metadata, fields=["title"])
        assert "hidden" not in documents[0]

    def test_none_values_skipped(self):
        metadata = {1: {"title": None, "year": 2000}}
        _ids, documents = build_metadata_documents(metadata)
        assert documents[0].strip() == "2000"
