"""Tests for evaluation metrics (g-mean, precision/recall, Pearson, ...)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import LearningError
from repro.learn.metrics import (
    ClassificationReport,
    accuracy,
    confusion_matrix,
    f1_score,
    g_mean,
    pearson_correlation,
    precision_recall,
    sensitivity_specificity,
)

TRUTH = np.array([True, True, True, False, False, False, False, False, False, False])
PRED = np.array([True, True, False, False, False, False, False, False, True, False])


class TestConfusionMatrix:
    def test_counts(self):
        counts = confusion_matrix(TRUTH, PRED)
        assert counts == {"tp": 2, "fp": 1, "fn": 1, "tn": 6}

    def test_shape_mismatch(self):
        with pytest.raises(LearningError):
            confusion_matrix([True], [True, False])

    def test_empty_inputs(self):
        with pytest.raises(LearningError):
            confusion_matrix([], [])


class TestBasicMetrics:
    def test_accuracy(self):
        assert accuracy(TRUTH, PRED) == pytest.approx(0.8)

    def test_sensitivity_specificity(self):
        sensitivity, specificity = sensitivity_specificity(TRUTH, PRED)
        assert sensitivity == pytest.approx(2 / 3)
        assert specificity == pytest.approx(6 / 7)

    def test_g_mean(self):
        assert g_mean(TRUTH, PRED) == pytest.approx(np.sqrt((2 / 3) * (6 / 7)))

    def test_precision_recall(self):
        precision, recall = precision_recall(TRUTH, PRED)
        assert precision == pytest.approx(2 / 3)
        assert recall == pytest.approx(2 / 3)

    def test_f1(self):
        assert f1_score(TRUTH, PRED) == pytest.approx(2 / 3)


class TestPaperScenarios:
    def test_naive_majority_classifier_has_zero_gmean(self):
        """The paper's motivating example: label everything 'not Horror'."""
        truth = np.array([True] * 10 + [False] * 90)
        predictions = np.zeros(100, dtype=bool)
        assert accuracy(truth, predictions) == pytest.approx(0.9)
        assert g_mean(truth, predictions) == 0.0

    def test_perfect_classifier(self):
        truth = np.array([True, False, True, False])
        report = ClassificationReport.from_predictions(truth, truth)
        assert report.accuracy == 1.0
        assert report.g_mean == 1.0
        assert report.precision == 1.0
        assert report.recall == 1.0

    def test_no_positive_predictions(self):
        truth = np.array([True, False])
        predictions = np.array([False, False])
        precision, recall = precision_recall(truth, predictions)
        assert precision == 0.0
        assert recall == 0.0
        assert f1_score(truth, predictions) == 0.0

    def test_missing_class_defines_recall_as_one(self):
        truth = np.array([False, False, False])
        predictions = np.array([False, True, False])
        sensitivity, specificity = sensitivity_specificity(truth, predictions)
        assert sensitivity == 1.0
        assert specificity == pytest.approx(2 / 3)


class TestPearson:
    def test_perfect_correlation(self):
        x = np.arange(10, dtype=float)
        assert pearson_correlation(x, 2 * x + 1) == pytest.approx(1.0)
        assert pearson_correlation(x, -x) == pytest.approx(-1.0)

    def test_constant_input_is_zero(self):
        assert pearson_correlation(np.ones(5), np.arange(5.0)) == 0.0

    def test_validation(self):
        with pytest.raises(LearningError):
            pearson_correlation([1.0], [1.0])
        with pytest.raises(LearningError):
            pearson_correlation([1.0, 2.0], [1.0])

    def test_matches_numpy(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=50)
        y = 0.5 * x + rng.normal(size=50)
        assert pearson_correlation(x, y) == pytest.approx(np.corrcoef(x, y)[0, 1])


class TestClassificationReport:
    def test_bundles_all_metrics(self):
        report = ClassificationReport.from_predictions(TRUTH, PRED)
        assert report.n_examples == 10
        assert report.accuracy == pytest.approx(accuracy(TRUTH, PRED))
        assert report.g_mean == pytest.approx(g_mean(TRUTH, PRED))
        assert report.sensitivity == pytest.approx(2 / 3)


class TestMetricProperties:
    @given(st.lists(st.tuples(st.booleans(), st.booleans()), min_size=1, max_size=200))
    def test_metrics_are_bounded(self, pairs):
        truth = np.array([t for t, _p in pairs])
        predictions = np.array([p for _t, p in pairs])
        assert 0.0 <= accuracy(truth, predictions) <= 1.0
        assert 0.0 <= g_mean(truth, predictions) <= 1.0
        precision, recall = precision_recall(truth, predictions)
        assert 0.0 <= precision <= 1.0
        assert 0.0 <= recall <= 1.0

    @given(st.lists(st.booleans(), min_size=1, max_size=100))
    def test_perfect_predictions_have_perfect_scores(self, labels):
        truth = np.array(labels)
        assert accuracy(truth, truth) == 1.0
        assert g_mean(truth, truth) == 1.0

    @given(st.lists(st.tuples(st.booleans(), st.booleans()), min_size=1, max_size=100))
    def test_confusion_matrix_sums_to_n(self, pairs):
        truth = np.array([t for t, _p in pairs])
        predictions = np.array([p for _t, p in pairs])
        counts = confusion_matrix(truth, predictions)
        assert sum(counts.values()) == len(pairs)

    @given(st.lists(st.tuples(st.booleans(), st.booleans()), min_size=1, max_size=100))
    def test_gmean_swap_invariance(self, pairs):
        """Swapping the positive/negative encoding leaves the g-mean unchanged."""
        truth = np.array([t for t, _p in pairs])
        predictions = np.array([p for _t, p in pairs])
        assert g_mean(truth, predictions) == pytest.approx(g_mean(~truth, ~predictions))
