"""Tests for the SMO-based support vector classifier."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import LearningError, NotFittedError
from repro.learn.metrics import g_mean
from repro.learn.svm import SVC


def blobs(separation: float, n: int = 60, seed: int = 0, d: int = 5):
    rng = np.random.default_rng(seed)
    X = np.vstack([rng.normal(0.0, 1.0, (n, d)), rng.normal(separation, 1.0, (n, d))])
    y = np.array([False] * n + [True] * n)
    return X, y


class TestFitValidation:
    def test_invalid_C(self):
        with pytest.raises(LearningError):
            SVC(C=0)

    def test_invalid_class_weight(self):
        with pytest.raises(LearningError):
            SVC(class_weight="weird")

    def test_single_class_rejected(self):
        X = np.random.default_rng(0).normal(size=(10, 3))
        with pytest.raises(LearningError):
            SVC().fit(X, np.ones(10, dtype=bool))

    def test_shape_mismatch(self):
        with pytest.raises(LearningError):
            SVC().fit(np.zeros((5, 2)), np.array([True, False]))

    def test_non_2d_features(self):
        with pytest.raises(LearningError):
            SVC().fit(np.zeros(5), np.array([True, False, True, False, True]))

    def test_bad_label_values(self):
        with pytest.raises(LearningError):
            SVC().fit(np.zeros((3, 2)), np.array([1, 2, 3]))

    def test_unfitted_predict(self):
        with pytest.raises(NotFittedError):
            SVC().predict(np.zeros((2, 2)))


class TestLabelFormats:
    @pytest.mark.parametrize("transform", [
        lambda y: y,
        lambda y: y.astype(int),
        lambda y: np.where(y, 1, -1),
    ])
    def test_accepts_bool_binary_and_signed(self, transform, blob_classification_data):
        X, y = blob_classification_data
        model = SVC(seed=0).fit(X, transform(y))
        assert model.score(X, y) > 0.9


class TestClassificationQuality:
    def test_separable_blobs(self, blob_classification_data):
        X, y = blob_classification_data
        model = SVC(kernel="rbf", seed=0).fit(X, y)
        assert model.score(X, y) > 0.95
        assert model.n_support_ > 0

    def test_linear_kernel_on_separable_data(self, blob_classification_data):
        X, y = blob_classification_data
        model = SVC(kernel="linear", seed=0).fit(X, y)
        assert model.score(X, y) > 0.95

    def test_generalisation_to_held_out_points(self):
        X_train, y_train = blobs(2.5, n=80, seed=1)
        X_test, y_test = blobs(2.5, n=40, seed=2)
        model = SVC(seed=0).fit(X_train, y_train)
        assert model.score(X_test, y_test) > 0.9

    def test_nonlinear_boundary_requires_rbf(self):
        rng = np.random.default_rng(5)
        X = rng.uniform(-2, 2, size=(300, 2))
        y = (X[:, 0] ** 2 + X[:, 1] ** 2) < 1.5
        rbf = SVC(kernel="rbf", C=5.0, seed=0).fit(X, y)
        linear = SVC(kernel="linear", C=5.0, seed=0).fit(X, y)
        assert rbf.score(X, y) > linear.score(X, y) + 0.1

    def test_decision_function_sign_matches_predictions(self, blob_classification_data):
        X, y = blob_classification_data
        model = SVC(seed=0).fit(X, y)
        scores = model.decision_function(X)
        assert np.array_equal(scores >= 0, model.predict(X))

    def test_single_row_prediction(self, blob_classification_data):
        X, y = blob_classification_data
        model = SVC(seed=0).fit(X, y)
        assert model.predict(X[0]).shape == (1,)

    def test_balanced_class_weight_helps_imbalance(self):
        rng = np.random.default_rng(7)
        X = np.vstack([rng.normal(0, 1, (190, 4)), rng.normal(1.8, 1, (10, 4))])
        y = np.array([False] * 190 + [True] * 10)
        balanced = SVC(class_weight="balanced", seed=0).fit(X, y)
        plain = SVC(class_weight=None, seed=0).fit(X, y)
        assert g_mean(y, balanced.predict(X)) >= g_mean(y, plain.predict(X)) - 0.02

    def test_reproducibility(self, blob_classification_data):
        X, y = blob_classification_data
        first = SVC(seed=3).fit(X, y)
        second = SVC(seed=3).fit(X, y)
        assert np.allclose(first.decision_function(X), second.decision_function(X))

    def test_standardization_can_be_disabled(self, blob_classification_data):
        X, y = blob_classification_data
        model = SVC(standardize=False, seed=0).fit(X, y)
        assert model.score(X, y) > 0.9

    def test_tiny_training_set(self):
        X = np.array([[0.0, 0.0], [0.2, 0.1], [3.0, 3.0], [3.1, 2.9]])
        y = np.array([False, False, True, True])
        model = SVC(seed=0).fit(X, y)
        assert model.predict(np.array([[0.1, 0.0]]))[0] == np.False_
        assert model.predict(np.array([[3.0, 3.1]]))[0] == np.True_
