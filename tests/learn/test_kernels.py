"""Tests for kernel functions."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.errors import LearningError
from repro.learn.kernels import LinearKernel, PolynomialKernel, RBFKernel, resolve_kernel


@pytest.fixture
def data() -> np.ndarray:
    return np.random.default_rng(0).normal(size=(10, 4))


class TestLinearKernel:
    def test_matches_inner_product(self, data):
        gram = LinearKernel()(data, data)
        assert np.allclose(gram, data @ data.T)

    def test_rectangular_shapes(self, data):
        other = np.random.default_rng(1).normal(size=(3, 4))
        assert LinearKernel()(data, other).shape == (10, 3)


class TestRBFKernel:
    def test_diagonal_is_one(self, data):
        gram = RBFKernel(gamma=0.5).gram(data)
        assert np.allclose(np.diag(gram), 1.0)

    def test_values_in_unit_interval(self, data):
        gram = RBFKernel(gamma=0.5).gram(data)
        assert np.all(gram > 0)
        assert np.all(gram <= 1.0 + 1e-12)

    def test_symmetry(self, data):
        gram = RBFKernel(gamma=0.3).gram(data)
        assert np.allclose(gram, gram.T)

    def test_larger_gamma_decays_faster(self, data):
        narrow = RBFKernel(gamma=5.0).gram(data)
        wide = RBFKernel(gamma=0.1).gram(data)
        off_diagonal = ~np.eye(len(data), dtype=bool)
        assert narrow[off_diagonal].mean() < wide[off_diagonal].mean()

    def test_scale_gamma_resolution(self, data):
        kernel = RBFKernel(gamma="scale")
        resolved = kernel.resolve_gamma(data)
        assert resolved == pytest.approx(1.0 / (data.shape[1] * data.var()))

    def test_scale_gamma_on_constant_data(self):
        constant = np.ones((5, 3))
        assert RBFKernel(gamma="scale").resolve_gamma(constant) == pytest.approx(1.0 / 3)

    def test_invalid_gamma(self):
        with pytest.raises(LearningError):
            RBFKernel(gamma=0.0)
        with pytest.raises(LearningError):
            RBFKernel(gamma="auto")


class TestPolynomialKernel:
    def test_degree_one_matches_affine_linear(self, data):
        poly = PolynomialKernel(degree=1, gamma=1.0, coef0=0.0)(data, data)
        assert np.allclose(poly, data @ data.T)

    def test_invalid_parameters(self):
        with pytest.raises(LearningError):
            PolynomialKernel(degree=0)
        with pytest.raises(LearningError):
            PolynomialKernel(gamma=0.0)


class TestResolveKernel:
    def test_by_name(self):
        assert isinstance(resolve_kernel("linear"), LinearKernel)
        assert isinstance(resolve_kernel("rbf"), RBFKernel)
        assert isinstance(resolve_kernel("poly", degree=2), PolynomialKernel)

    def test_instance_passthrough(self):
        kernel = RBFKernel(gamma=1.0)
        assert resolve_kernel(kernel) is kernel

    def test_unknown_name(self):
        with pytest.raises(LearningError):
            resolve_kernel("sigmoid")


class TestKernelProperties:
    @given(
        arrays(np.float64, (5, 3), elements=st.floats(-3, 3)),
        arrays(np.float64, (4, 3), elements=st.floats(-3, 3)),
    )
    def test_rbf_symmetric_in_arguments(self, a, b):
        kernel = RBFKernel(gamma=0.5)
        assert np.allclose(kernel(a, b), kernel(b, a).T)

    @given(arrays(np.float64, (6, 2), elements=st.floats(-5, 5)))
    def test_rbf_gram_positive_semidefinite(self, a):
        gram = RBFKernel(gamma=0.7).gram(a)
        eigenvalues = np.linalg.eigvalsh((gram + gram.T) / 2)
        assert eigenvalues.min() > -1e-8
