"""Tests for feature scaling and sampling/splitting helpers."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import LearningError, NotFittedError
from repro.learn.model_selection import (
    kfold_indices,
    sample_balanced_training_set,
    stratified_split,
    train_test_split,
)
from repro.learn.scaling import StandardScaler


class TestStandardScaler:
    def test_zero_mean_unit_variance(self):
        rng = np.random.default_rng(0)
        X = rng.normal(5.0, 3.0, size=(200, 4))
        transformed = StandardScaler().fit_transform(X)
        assert np.allclose(transformed.mean(axis=0), 0.0, atol=1e-9)
        assert np.allclose(transformed.std(axis=0), 1.0, atol=1e-9)

    def test_constant_feature_does_not_divide_by_zero(self):
        X = np.column_stack([np.ones(10), np.arange(10.0)])
        transformed = StandardScaler().fit_transform(X)
        assert np.all(np.isfinite(transformed))
        assert np.allclose(transformed[:, 0], 0.0)

    def test_inverse_transform_roundtrip(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(50, 3))
        scaler = StandardScaler().fit(X)
        assert np.allclose(scaler.inverse_transform(scaler.transform(X)), X)

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            StandardScaler().transform(np.zeros((2, 2)))

    def test_disable_centering(self):
        X = np.random.default_rng(2).normal(3.0, 1.0, size=(100, 2))
        transformed = StandardScaler(with_mean=False).fit_transform(X)
        assert transformed.mean() > 1.0


class TestTrainTestSplit:
    def test_partition_sizes(self):
        X = np.arange(40).reshape(20, 2)
        y = np.arange(20)
        X_train, X_test, y_train, y_test = train_test_split(X, y, test_fraction=0.25, seed=0)
        assert len(X_test) == 5
        assert len(X_train) == 15
        assert len(y_train) == 15

    def test_no_overlap_and_full_coverage(self):
        X = np.arange(30).reshape(30, 1)
        y = np.arange(30)
        X_train, X_test, _yt, _ye = train_test_split(X, y, test_fraction=0.3, seed=1)
        combined = sorted(np.concatenate([X_train[:, 0], X_test[:, 0]]).tolist())
        assert combined == list(range(30))

    def test_validation(self):
        with pytest.raises(LearningError):
            train_test_split(np.zeros((5, 2)), np.zeros(4))
        with pytest.raises(LearningError):
            train_test_split(np.zeros((5, 2)), np.zeros(5), test_fraction=0.0)


class TestStratifiedSplit:
    def test_preserves_class_ratio(self):
        y = np.array([True] * 20 + [False] * 80)
        train_idx, test_idx = stratified_split(y, test_fraction=0.25, seed=0)
        assert len(set(train_idx) & set(test_idx)) == 0
        train_ratio = y[train_idx].mean()
        assert 0.1 < train_ratio < 0.3

    def test_validation(self):
        with pytest.raises(LearningError):
            stratified_split(np.array([True, False]), test_fraction=1.5)


class TestBalancedSampling:
    def test_sample_sizes_and_labels(self):
        labels = {i: i <= 30 for i in range(1, 101)}
        positives, negatives = sample_balanced_training_set(labels, 10, seed=0)
        assert len(positives) == 10
        assert len(negatives) == 10
        assert all(labels[i] for i in positives)
        assert all(not labels[i] for i in negatives)

    def test_exclusions_respected(self):
        labels = {i: i <= 30 for i in range(1, 101)}
        exclude = list(range(1, 21))
        positives, _negatives = sample_balanced_training_set(labels, 10, seed=0, exclude=exclude)
        assert not set(positives) & set(exclude)

    def test_insufficient_examples(self):
        labels = {1: True, 2: False, 3: False}
        with pytest.raises(LearningError):
            sample_balanced_training_set(labels, 2)

    def test_invalid_n(self):
        with pytest.raises(LearningError):
            sample_balanced_training_set({1: True, 2: False}, 0)

    def test_reproducible(self):
        labels = {i: i % 3 == 0 for i in range(1, 200)}
        first = sample_balanced_training_set(labels, 15, seed=5)
        second = sample_balanced_training_set(labels, 15, seed=5)
        assert first == second

    @given(st.integers(1, 10))
    def test_sampling_property(self, n):
        labels = {i: i <= 50 for i in range(1, 101)}
        positives, negatives = sample_balanced_training_set(labels, n, seed=n)
        assert len(set(positives)) == n
        assert len(set(negatives)) == n
        assert not set(positives) & set(negatives)


class TestKFold:
    def test_folds_cover_everything(self):
        folds = kfold_indices(23, 4, seed=0)
        assert len(folds) == 4
        combined = sorted(np.concatenate(folds).tolist())
        assert combined == list(range(23))

    def test_validation(self):
        with pytest.raises(LearningError):
            kfold_indices(10, 1)
        with pytest.raises(LearningError):
            kfold_indices(2, 5)
