"""Integration tests for the served database.

Each test starts a real :class:`ReproServer` (background-thread mode, port
0) and talks to it through the synchronous wire client — the same path a
deployment uses.  The SIGTERM tests run ``python -m repro serve`` as a
subprocess to pin the graceful-drain contract: an acknowledged statement
survives the server being told to shut down.
"""

from __future__ import annotations

import os
import re
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path
from typing import Any, Sequence

import pytest

import repro
import repro.client
from repro.db.connection import SessionContext
from repro.db.types import MISSING
from repro.errors import (
    RateLimitError,
    ServerOverloadedError,
    TenantAuthError,
    UnknownTableError,
    WireProtocolError,
)
from repro.server import ReproServer, ServerConfig, TenantConfig


class CountingSource:
    """ValueSource answering a constant and counting platform dispatches."""

    def __init__(self, value: float = 0.9, cost_per_item: float = 0.05) -> None:
        self.value = value
        self.cost_per_item = cost_per_item
        self.calls: list[tuple[str, tuple[int, ...]]] = []
        self._lock = threading.Lock()

    def request_values_with_cost(
        self, attribute: str, items: Sequence[tuple[int, dict[str, Any]]]
    ) -> tuple[dict[int, Any], float]:
        with self._lock:
            self.calls.append((attribute, tuple(rowid for rowid, _row in items)))
        values = {rowid: self.value for rowid, _row in items}
        return values, self.cost_per_item * len(items)


@pytest.fixture()
def server():
    with ReproServer(ServerConfig(port=0, fetch_size=4)) as srv:
        yield srv


class TestBasicServing:
    def test_execute_and_fetch(self, server):
        conn = repro.client.connect(*server.address, tenant="t")
        conn.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, name TEXT)")
        conn.execute("INSERT INTO t VALUES (1, 'a')")
        cur = conn.execute("SELECT * FROM t")
        assert cur.fetchall() == [(1, "a")]
        assert cur.columns == ["id", "name"]
        conn.close()

    def test_cursor_paging_past_fetch_size(self, server):
        conn = repro.client.connect(*server.address, tenant="t")
        conn.execute("CREATE TABLE nums (n INTEGER)")
        cur = conn.cursor()
        for i in range(11):  # fetch_size=4 -> inline 4, paged 7
            cur.execute("INSERT INTO nums VALUES (?)", (i,))
        rows = conn.execute("SELECT n FROM nums ORDER BY n").fetchall()
        assert rows == [(i,) for i in range(11)]
        conn.close()

    def test_parameters_and_missing_round_trip(self, server):
        conn = repro.client.connect(*server.address, tenant="t")
        conn.execute(
            "CREATE TABLE items (item_id INTEGER PRIMARY KEY, appeal REAL PERCEPTUAL)"
        )
        conn.execute("INSERT INTO items (item_id) VALUES (?)", (1,))
        (row,) = conn.execute("SELECT appeal FROM items").fetchall()
        assert row[0] is MISSING
        conn.close()

    def test_typed_errors_cross_the_wire(self, server):
        conn = repro.client.connect(*server.address, tenant="t")
        with pytest.raises(UnknownTableError) as excinfo:
            conn.execute("SELECT * FROM nope")
        assert excinfo.value.table == "nope"
        # The connection survives the error.
        conn.execute("CREATE TABLE ok (x INTEGER)")
        conn.close()

    def test_explain_and_pragma(self, server):
        conn = repro.client.connect(*server.address, tenant="t")
        conn.execute("CREATE TABLE t (id INTEGER PRIMARY KEY)")
        assert "SeqScan" in conn.explain("SELECT * FROM t")
        assert "rows=" in conn.explain_analyze("SELECT * FROM t")
        stats = conn.server_stats()
        assert stats["connections"] == 1
        assert stats["tenants"][0]["tenant"] == "t"
        conn.close()

    def test_two_wire_connections_share_data(self, server):
        a = repro.client.connect(*server.address, tenant="a")
        b = repro.client.connect(*server.address, tenant="b")
        a.execute("CREATE TABLE shared (x INTEGER)")
        a.execute("INSERT INTO shared VALUES (42)")
        assert b.execute("SELECT x FROM shared").fetchall() == [(42,)]
        a.close()
        b.close()

    def test_concurrent_clients(self, server):
        setup = repro.client.connect(*server.address, tenant="setup")
        setup.execute("CREATE TABLE log (who TEXT, n INTEGER)")
        setup.close()
        errors: list[BaseException] = []

        def worker(name: str) -> None:
            try:
                conn = repro.client.connect(*server.address, tenant=name)
                for i in range(10):
                    conn.execute("INSERT INTO log VALUES (?, ?)", (name, i))
                conn.close()
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(f"w{i}",)) for i in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30.0)
        assert errors == []
        check = repro.client.connect(*server.address, tenant="check")
        assert check.execute("SELECT COUNT(*) FROM log").fetchall() == [(80,)]
        check.close()


class TestAdmissionAndLimits:
    def test_max_inflight_zero_rejects_everything(self):
        # Degenerate admission control: with zero execution slots every
        # engine-touching request is rejected with the typed overload error.
        with ReproServer(ServerConfig(port=0, max_inflight=0)) as srv:
            conn = repro.client.connect(*srv.address, tenant="t")
            with pytest.raises(ServerOverloadedError, match="max_inflight"):
                conn.execute("SELECT 1")
            # Non-engine ops still work: the connection is fine.
            conn.close()

    def test_rate_limit_enforced_per_tenant(self):
        tenants = [
            TenantConfig(name="slow", max_requests_per_second=0.001, burst=1),
            TenantConfig(name="fast"),
        ]
        with ReproServer(ServerConfig(port=0), tenants=tenants) as srv:
            slow = repro.client.connect(*srv.address, tenant="slow")
            fast = repro.client.connect(*srv.address, tenant="fast")
            fast.execute("CREATE TABLE t (x INTEGER)")
            slow.execute("SELECT x FROM t")  # burst token
            with pytest.raises(RateLimitError, match="slow"):
                slow.execute("SELECT x FROM t")
            # The other tenant is unaffected.
            fast.execute("SELECT x FROM t")
            assert srv.registry.authenticate("slow").rate_limited == 1
            slow.close()
            fast.close()

    def test_auth_required_when_tenants_configured(self):
        tenants = [TenantConfig(name="alice", token="s3cret")]
        with ReproServer(ServerConfig(port=0), tenants=tenants) as srv:
            with pytest.raises(TenantAuthError):
                repro.client.connect(*srv.address, tenant="mallory")
            with pytest.raises(TenantAuthError):
                repro.client.connect(*srv.address, tenant="alice", token="nope")
            conn = repro.client.connect(*srv.address, tenant="alice", token="s3cret")
            conn.close()

    def test_protocol_version_negotiated(self, server):
        import json
        import socket
        import struct

        with socket.create_connection(server.address, timeout=10.0) as sock:
            payload = b'{"op":"connect","tenant":"t","protocol":99}'
            sock.sendall(struct.pack(">I", len(payload)) + payload)
            header = b""
            while len(header) < 4:
                header += sock.recv(4 - len(header))
            (length,) = struct.unpack(">I", header)
            body = b""
            while len(body) < length:
                body += sock.recv(length - len(body))
            response = json.loads(body)
            assert response["ok"] is False
            assert response["error"]["code"] == "protocol"
            assert "version" in response["error"]["message"]


class TestCrowdTenancy:
    def _crowd_server(self, source: CountingSource) -> ReproServer:
        def factory(config: TenantConfig) -> SessionContext:
            session = SessionContext(max_cost=config.max_cost, value_source=source)
            # Keep answers out of storage so the cross-tenant zero-call
            # property is carried by the shared AnswerCache, not write-back.
            session.crowd_write_back = False
            return session

        tenants = [
            TenantConfig(name="alice", max_cost=5.0),
            TenantConfig(name="bob", max_cost=5.0),
        ]
        return ReproServer(
            ServerConfig(port=0), tenants=tenants, session_factory=factory
        )

    def test_cross_tenant_repeat_costs_zero_platform_calls(self):
        source = CountingSource(cost_per_item=0.05)
        with self._crowd_server(source) as srv:
            alice = repro.client.connect(*srv.address, tenant="alice")
            alice.execute(
                "CREATE TABLE items "
                "(item_id INTEGER PRIMARY KEY, name TEXT, appeal REAL PERCEPTUAL)"
            )
            for i in range(1, 5):
                alice.execute(
                    "INSERT INTO items (item_id, name) VALUES (?, ?)", (i, f"i{i}")
                )
            assert alice.execute(
                "SELECT COUNT(appeal) FROM items"
            ).fetchall() == [(4,)]
            assert len(source.calls) == 1  # one coalesced batch, paid by alice

            # Tenant B repeats the crowd-touching query: the shared answer
            # cache serves it — zero platform calls, zero charge to bob.
            bob = repro.client.connect(*srv.address, tenant="bob")
            assert bob.execute(
                "SELECT COUNT(appeal) FROM items"
            ).fetchall() == [(4,)]
            assert len(source.calls) == 1

            snapshots = {s["tenant"]: s for s in srv.registry.snapshot()}
            assert snapshots["alice"]["cost_spent"] == pytest.approx(0.2)
            assert snapshots["bob"]["cost_spent"] == 0.0
            alice.close()
            bob.close()

    def test_budget_is_enforced_per_tenant_across_reconnects(self):
        source = CountingSource(cost_per_item=0.05)
        with self._crowd_server(source) as srv:
            alice = repro.client.connect(*srv.address, tenant="alice")
            alice.execute(
                "CREATE TABLE items (item_id INTEGER PRIMARY KEY, appeal REAL PERCEPTUAL)"
            )
            alice.execute("INSERT INTO items (item_id) VALUES (1)")
            alice.execute("SELECT COUNT(appeal) FROM items").fetchall()
            spent_before = srv.registry.authenticate("alice").session.cost_spent
            assert spent_before > 0
            alice.close()
            # Budget follows the tenant, not the socket.
            again = repro.client.connect(*srv.address, tenant="alice")
            assert again.tenant_info["cost_spent"] == pytest.approx(spent_before)
            again.close()


class TestRuntimeKnobAggregation:
    def test_server_sessions_do_not_warn_and_aggregate_instead(self):
        import warnings as warnings_module

        def factory(config: TenantConfig) -> SessionContext:
            # Explicit per-session knobs that cannot apply once the shared
            # runtime exists: the classic first-caller-wins mismatch.
            return SessionContext(answer_cache_ttl=60.0 if config.name != "first" else None)

        with ReproServer(ServerConfig(port=0), session_factory=factory) as srv:
            first = repro.client.connect(*srv.address, tenant="first")
            first.execute("CREATE TABLE t (x INTEGER)")
            # Trigger runtime creation through the first tenant's session.
            srv.registry.authenticate("first")
            from repro.db.connection import Connection

            Connection(
                srv.catalog, session=srv.registry.authenticate("first").session
            ).acquisition_runtime()
            with warnings_module.catch_warnings():
                warnings_module.simplefilter("error")  # any RuntimeWarning fails
                Connection(
                    srv.catalog, session=srv.registry.authenticate("late").session
                ).acquisition_runtime()
            assert srv.ignored_knob_tenants == frozenset({"late"})
            first.close()


class TestGracefulShutdown:
    def _spawn_serve(self, db_path: str) -> tuple[subprocess.Popen, str, int]:
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[2] / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--db-path", db_path, "--port", "0"],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            line = proc.stdout.readline()
            match = re.search(r"listening on ([\d.]+):(\d+)", line)
            if match:
                return proc, match.group(1), int(match.group(2))
        proc.kill()
        raise AssertionError("server subprocess never reported its address")

    def test_sigterm_drain_loses_no_acknowledged_statement(self, tmp_path):
        db_dir = str(tmp_path / "db")
        proc, host, port = self._spawn_serve(db_dir)
        try:
            conn = repro.client.connect(host, port, tenant="t")
            conn.execute("CREATE TABLE k (v INTEGER)")
            for i in range(20):
                conn.execute("INSERT INTO k VALUES (?)", (i,))
            conn.close()
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=30.0) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
        # The directory lock is released and every acknowledged statement
        # is on disk: reopening recovers all 20 rows.
        check = repro.connect(path=db_dir)
        assert check.execute("SELECT COUNT(*) FROM k").fetchall() == [(20,)]
        check.close()

    def test_sigterm_waits_for_inflight_statement(self, tmp_path):
        # A statement racing the signal either completes durably or was
        # never acknowledged — it must not be half-applied.
        db_dir = str(tmp_path / "db")
        proc, host, port = self._spawn_serve(db_dir)
        acknowledged = []
        try:
            conn = repro.client.connect(host, port, tenant="t")
            conn.execute("CREATE TABLE k (v INTEGER)")

            def insert_burst() -> None:
                try:
                    for i in range(50):
                        conn.execute("INSERT INTO k VALUES (?)", (i,))
                        acknowledged.append(i)
                except Exception:
                    pass  # drain may cut the connection mid-burst

            t = threading.Thread(target=insert_burst)
            t.start()
            time.sleep(0.05)
            proc.send_signal(signal.SIGTERM)
            t.join(timeout=30.0)
            assert proc.wait(timeout=30.0) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
        check = repro.connect(path=db_dir)
        (count,) = check.execute("SELECT COUNT(*) FROM k").fetchone()
        check.close()
        # Every acknowledged insert survived the drain.
        assert count >= len(acknowledged)

    def test_background_stop_is_idempotent(self):
        server = ReproServer(ServerConfig(port=0))
        server.start()
        address = server.address
        assert address[1] > 0
        server.stop()
        server.stop()  # second stop is a no-op
        with pytest.raises(RuntimeError, match="not running"):
            _ = server.address


class TestWireProtocolMisuse:
    def test_execute_before_connect_is_typed(self, server):
        import json
        import socket
        import struct

        with socket.create_connection(server.address, timeout=10.0) as sock:
            payload = b'{"op":"execute","sql":"SELECT 1"}'
            sock.sendall(struct.pack(">I", len(payload)) + payload)
            header = b""
            while len(header) < 4:
                header += sock.recv(4 - len(header))
            (length,) = struct.unpack(">I", header)
            body = b""
            while len(body) < length:
                body += sock.recv(length - len(body))
            response = json.loads(body)
            assert response["ok"] is False
            assert response["error"]["code"] == "protocol"
            assert "connect" in response["error"]["message"]

    def test_double_connect_rejected(self, server):
        conn = repro.client.connect(*server.address, tenant="t")
        with pytest.raises(WireProtocolError, match="already connected"):
            conn.request({"op": "connect", "tenant": "t2"})
        conn.close()

    def test_unknown_cursor_is_typed(self, server):
        conn = repro.client.connect(*server.address, tenant="t")
        from repro.errors import ExecutionError

        with pytest.raises(ExecutionError, match="cursor"):
            conn.request({"op": "fetch", "cursor": 999})
        conn.close()


class TestServedEnumeration:
    """Open-world enumeration over the wire: same Chao92 stats as local."""

    UNIVERSE = [f"species-{i:02d}" for i in range(20)]

    def _make_source(self):
        from repro.crowd.platform import CrowdPlatform
        from repro.crowd.sources import SimulatedCrowdValueSource
        from repro.crowd.worker import WorkerPool

        return SimulatedCrowdValueSource(
            CrowdPlatform(seed=11),
            WorkerPool.build(n_honest=5, seed=3),
            truth={},
            seed=7,
            universe={"birds": self.UNIVERSE},
            answers_per_batch=25,
            payment_per_hit=0.05,
        )

    def _enumeration_server(self, max_cost: float | None = 5.0) -> ReproServer:
        def factory(config: TenantConfig) -> SessionContext:
            return SessionContext(
                max_cost=config.max_cost, value_source=self._make_source()
            )

        tenants = [TenantConfig(name="alice", max_cost=max_cost)]
        return ReproServer(
            ServerConfig(port=0), tenants=tenants, session_factory=factory
        )

    SQL_CREATE = "CREATE TABLE birds (bird_id INTEGER PRIMARY KEY, name TEXT)"
    SQL_ENUM = (
        "INSERT INTO birds (name) FROM CROWD WHERE 'birds' "
        "WITH COMPLETENESS >= 0.9"
    )

    def test_client_receives_identical_enumeration_stats(self):
        # Local baseline with the identically seeded source.
        local = repro.connect()
        local.set_value_source(self._make_source())
        local.execute(self.SQL_CREATE)
        local_cur = local.execute(self.SQL_ENUM)
        local_stats = local_cur.result.enumeration
        local_rows = local.execute("SELECT name FROM birds ORDER BY bird_id").fetchall()
        assert local_stats is not None
        assert local_stats["stopped_on"] == "completeness"

        with self._enumeration_server() as srv:
            client = repro.client.connect(*srv.address, tenant="alice")
            client.execute(self.SQL_CREATE)
            cur = client.execute(self.SQL_ENUM)
            # The wire carries the very dict a local QueryResult exposes.
            assert cur.enumeration == local_stats
            assert cur.rowcount == local_cur.rowcount
            served_rows = client.execute(
                "SELECT name FROM birds ORDER BY bird_id"
            ).fetchall()
            assert served_rows == local_rows
            # Non-enumeration statements carry no enumeration payload.
            assert client.execute("SELECT 1").enumeration is None
            client.close()

    def test_served_enumeration_respects_tenant_budget(self):
        with self._enumeration_server(max_cost=0.05) as srv:
            client = repro.client.connect(*srv.address, tenant="alice")
            client.execute(self.SQL_CREATE)
            cur = client.execute(self.SQL_ENUM)
            assert cur.enumeration is not None
            assert cur.enumeration["stopped_on"] == "budget"
            snapshot = {s["tenant"]: s for s in srv.registry.snapshot()}
            assert snapshot["alice"]["cost_spent"] <= 0.05 + 1e-9
            client.close()
