"""Unit tests for the wire protocol: framing, validation, error taxonomy."""

from __future__ import annotations

import json
import struct

import pytest

from repro.db.types import MISSING
from repro.errors import (
    BudgetExceededError,
    CatalogError,
    ExecutionError,
    IntegrityError,
    RateLimitError,
    ReproError,
    ServerOverloadedError,
    SQLSyntaxError,
    TenantAuthError,
    UnknownColumnError,
    UnknownTableError,
    WireProtocolError,
)
from repro.server import protocol


class TestFraming:
    def test_encode_prepends_length_header(self):
        frame = protocol.encode_message({"op": "close"})
        (length,) = struct.unpack(">I", frame[: protocol.HEADER_SIZE])
        assert length == len(frame) - protocol.HEADER_SIZE
        assert json.loads(frame[protocol.HEADER_SIZE :]) == {"op": "close"}

    def test_encoding_is_canonical(self):
        # Key order must not affect the bytes: the byte-exact round-trip
        # property relies on sorted keys and fixed separators.
        a = protocol.encode_message({"op": "execute", "sql": "SELECT 1"})
        b = protocol.encode_message({"sql": "SELECT 1", "op": "execute"})
        assert a == b
        assert b" " not in a.split(b'"SELECT 1"')[0]

    def test_parse_header_round_trip(self):
        frame = protocol.encode_message({"op": "close"})
        assert protocol.parse_header(frame[:4]) == len(frame) - 4

    def test_truncated_header_rejected(self):
        with pytest.raises(WireProtocolError, match="truncated"):
            protocol.parse_header(b"\x00\x00")

    def test_zero_length_frame_rejected(self):
        with pytest.raises(WireProtocolError, match="empty frame"):
            protocol.parse_header(b"\x00\x00\x00\x00")

    def test_oversized_frame_rejected(self):
        huge = struct.pack(">I", protocol.MAX_FRAME_BYTES + 1)
        with pytest.raises(WireProtocolError, match="exceeds"):
            protocol.parse_header(huge)
        assert protocol.parse_header(huge, max_frame=2**31) > 0

    def test_oversized_message_rejected_on_encode(self):
        with pytest.raises(WireProtocolError, match="exceeds"):
            protocol.encode_message({"blob": "x" * (protocol.MAX_FRAME_BYTES + 1)})

    def test_non_json_payload_rejected(self):
        with pytest.raises(WireProtocolError, match="not valid JSON"):
            protocol.decode_payload(b"{nope")

    def test_non_utf8_payload_rejected(self):
        with pytest.raises(WireProtocolError, match="not valid UTF-8"):
            protocol.decode_payload(b"\xff\xfe{}")

    def test_non_object_payload_rejected(self):
        with pytest.raises(WireProtocolError, match="JSON object"):
            protocol.decode_payload(b"[1, 2]")


class TestRequestValidation:
    def test_unknown_op_rejected(self):
        with pytest.raises(WireProtocolError, match="unknown request op"):
            protocol.validate_request({"op": "drop-tables"})

    def test_missing_required_field(self):
        with pytest.raises(WireProtocolError, match="missing required field 'sql'"):
            protocol.validate_request({"op": "execute"})

    def test_wrong_field_type(self):
        with pytest.raises(WireProtocolError, match="must be str"):
            protocol.validate_request({"op": "execute", "sql": 42})

    def test_unknown_field_rejected(self):
        with pytest.raises(WireProtocolError, match="unknown field"):
            protocol.validate_request({"op": "close", "force": True})

    def test_valid_requests_return_op(self):
        assert protocol.validate_request({"op": "connect", "tenant": "a"}) == "connect"
        assert (
            protocol.validate_request(
                {"op": "execute", "sql": "SELECT 1", "params": [], "fetch_size": 10}
            )
            == "execute"
        )
        assert protocol.validate_request({"op": "fetch", "cursor": 3}) == "fetch"
        assert protocol.validate_request({"op": "close"}) == "close"


class TestRowCodec:
    def test_missing_round_trips(self):
        row = (1, "name", MISSING, 0.5, None, True)
        encoded = protocol.encode_row(row)
        assert json.dumps(encoded)  # JSON-serializable
        assert protocol.decode_row(encoded) == row

    def test_missing_is_distinguished_from_null(self):
        encoded = protocol.encode_row((MISSING, None))
        decoded = protocol.decode_row(encoded)
        assert decoded[0] is MISSING
        assert decoded[1] is None


class TestErrorTaxonomy:
    @pytest.mark.parametrize(
        "exc, code",
        [
            (SQLSyntaxError("bad", position=7), "sql-syntax"),
            (UnknownTableError("movies"), "unknown-table"),
            (UnknownColumnError("appeal", "movies"), "unknown-column"),
            (CatalogError("boom"), "catalog"),
            (IntegrityError("dup key"), "integrity"),
            (ExecutionError("bad op"), "execution"),
            (BudgetExceededError(1.0, 2.5), "budget-exceeded"),
            (TenantAuthError("who?"), "auth"),
            (RateLimitError("slow down"), "rate-limited"),
            (ServerOverloadedError("busy"), "overloaded"),
            (WireProtocolError("bad frame"), "protocol"),
            (ReproError("huh"), "internal"),
        ],
    )
    def test_code_mapping_most_specific_first(self, exc, code):
        assert protocol.code_for_exception(exc) == code

    def test_unknown_exception_maps_to_internal(self):
        assert protocol.code_for_exception(ValueError("x")) == "internal"

    @pytest.mark.parametrize(
        "exc",
        [
            SQLSyntaxError("expected identifier", position=14),
            UnknownTableError("movies"),
            UnknownColumnError("appeal", "movies"),
            UnknownColumnError("appeal"),
            BudgetExceededError(1.5, 3.0),
            TenantAuthError("unknown tenant or bad token: 'x'"),
            ServerOverloadedError("back off"),
            ExecutionError("no such cursor"),
        ],
    )
    def test_round_trip_preserves_type_message_and_payload(self, exc):
        response = protocol.error_response(exc)
        assert response["ok"] is False
        rebuilt = protocol.exception_for_error(response["error"])
        assert type(rebuilt) is type(exc)
        assert str(rebuilt) == str(exc)
        for attr in ("table", "column", "position", "budget", "required"):
            assert getattr(rebuilt, attr, None) == getattr(exc, attr, None)

    def test_unknown_code_degrades_gracefully(self):
        rebuilt = protocol.exception_for_error({"code": "from-the-future", "message": "hi"})
        assert isinstance(rebuilt, ReproError)
        assert "from-the-future" in str(rebuilt)

    def test_error_response_shape(self):
        response = protocol.error_response(UnknownTableError("t"))
        assert response["error"]["code"] == "unknown-table"
        assert response["error"]["type"] == "UnknownTableError"
        assert response["error"]["data"] == {"table": "t"}
