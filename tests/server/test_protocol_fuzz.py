"""Hypothesis fuzzing of the wire protocol and a live server's framing.

Three layers of the same contract:

* sans-IO: any bytes fed to the frame decoder either produce a message or
  raise the *typed* :class:`~repro.errors.WireProtocolError` — never a
  bare ``ValueError``/``KeyError`` that would crash a handler;
* round-trip: valid messages survive ``decode(encode(m)) == m``, and
  because encoding is canonical the bytes themselves are a fixed point
  (``encode(decode(encode(m))) == encode(m)``);
* live: a real server fed garbage, truncated, or oversized frames answers
  with a typed ``protocol`` wire error where the stream is still in sync,
  drops the connection where it is not, and keeps serving fresh
  connections either way.
"""

from __future__ import annotations

import json
import socket
import struct

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import WireProtocolError
from repro.server import ReproServer, ServerConfig, protocol

json_values = st.recursive(
    st.none()
    | st.booleans()
    | st.integers(min_value=-(2**53), max_value=2**53)
    | st.floats(allow_nan=False, allow_infinity=False)
    | st.text(max_size=20),
    lambda children: st.lists(children, max_size=4)
    | st.dictionaries(st.text(max_size=8), children, max_size=4),
    max_leaves=10,
)

messages = st.dictionaries(st.text(min_size=1, max_size=12), json_values, max_size=6)


class TestSansIO:
    @given(payload=st.binary(max_size=256))
    @settings(max_examples=200, deadline=None)
    def test_decode_payload_is_total(self, payload):
        try:
            message = protocol.decode_payload(payload)
        except WireProtocolError:
            return
        assert isinstance(message, dict)

    @given(header=st.binary(min_size=0, max_size=8))
    @settings(max_examples=200, deadline=None)
    def test_parse_header_is_total(self, header):
        try:
            length = protocol.parse_header(header)
        except WireProtocolError:
            return
        assert 0 < length <= protocol.MAX_FRAME_BYTES

    @given(message=messages)
    @settings(max_examples=200, deadline=None)
    def test_message_round_trip(self, message):
        frame = protocol.encode_message(message)
        length = protocol.parse_header(frame[: protocol.HEADER_SIZE])
        payload = frame[protocol.HEADER_SIZE :]
        assert length == len(payload)
        assert protocol.decode_payload(payload) == message

    @given(message=messages)
    @settings(max_examples=200, deadline=None)
    def test_canonical_encoding_is_a_fixed_point(self, message):
        frame = protocol.encode_message(message)
        decoded = protocol.decode_payload(frame[protocol.HEADER_SIZE :])
        assert protocol.encode_message(decoded) == frame

    @given(message=messages)
    @settings(max_examples=100, deadline=None)
    def test_validate_request_is_total(self, message):
        try:
            op = protocol.validate_request(message)
        except WireProtocolError:
            return
        assert op in protocol.REQUEST_OPS


# ---------------------------------------------------------------------------
# Live-server framing fuzz
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def fuzz_server():
    with ReproServer(ServerConfig(port=0, max_frame_bytes=64 * 1024)) as server:
        yield server


def _open(server: ReproServer) -> socket.socket:
    sock = socket.create_connection(server.address, timeout=10.0)
    return sock


def _send_frame(sock: socket.socket, payload: bytes) -> None:
    sock.sendall(struct.pack(">I", len(payload)) + payload)


def _read_response(sock: socket.socket) -> dict:
    header = _read_exactly(sock, 4)
    (length,) = struct.unpack(">I", header)
    return json.loads(_read_exactly(sock, length))


def _read_exactly(sock: socket.socket, n: int) -> bytes:
    out = b""
    while len(out) < n:
        chunk = sock.recv(n - len(out))
        assert chunk, "server closed the connection unexpectedly"
        out += chunk
    return out


class TestLiveFraming:
    @given(payload=st.binary(min_size=1, max_size=512))
    @settings(
        max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    def test_garbage_payload_yields_typed_error_and_connection_survives(
        self, fuzz_server, payload
    ):
        try:
            decoded_op = json.loads(payload.decode("utf-8")).get("op")
        except (ValueError, AttributeError):
            decoded_op = None
        with _open(fuzz_server) as sock:
            _send_frame(sock, payload)
            response = _read_response(sock)
            if response.get("ok"):
                # The random bytes happened to be a valid request (only
                # plausible for a well-formed JSON object); anything else
                # must be a typed wire error.
                assert decoded_op in protocol.REQUEST_OPS
            else:
                assert response["error"]["code"] in {"protocol", "auth"}
            if decoded_op == "close":
                return  # the one request that legitimately ends the stream
            # Same connection still speaks protocol afterwards.
            _send_frame(sock, b'{"op":"close"}')
            assert _read_response(sock)["ok"] is True

    def test_oversized_frame_yields_typed_error_then_close(self, fuzz_server):
        with _open(fuzz_server) as sock:
            sock.sendall(struct.pack(">I", 2**31))
            response = _read_response(sock)
            assert response["ok"] is False
            assert response["error"]["code"] == "protocol"
            # The stream cannot be resynced after a bad header: the server
            # hangs up...
            assert sock.recv(1) == b""
        # ... but keeps accepting fresh connections.
        with _open(fuzz_server) as sock:
            _send_frame(sock, b'{"op":"close"}')
            assert _read_response(sock)["ok"] is True

    def test_truncated_frame_drops_connection_server_survives(self, fuzz_server):
        with _open(fuzz_server) as sock:
            sock.sendall(struct.pack(">I", 100) + b"only ten b")
            sock.shutdown(socket.SHUT_WR)
            assert sock.recv(1) == b""  # dropped without a response
        with _open(fuzz_server) as sock:
            _send_frame(sock, b'{"op":"close"}')
            assert _read_response(sock)["ok"] is True

    def test_zero_length_frame_yields_typed_error(self, fuzz_server):
        with _open(fuzz_server) as sock:
            sock.sendall(struct.pack(">I", 0))
            response = _read_response(sock)
            assert response["ok"] is False
            assert response["error"]["code"] == "protocol"

    def test_valid_round_trip_is_byte_exact_over_the_wire(self, fuzz_server):
        request = {"op": "connect", "tenant": "fuzz", "protocol": 1}
        frame = protocol.encode_message(request)
        with _open(fuzz_server) as sock:
            sock.sendall(frame)
            response = _read_response(sock)
            assert response["ok"] is True
            # Canonical encoding: re-encoding the decoded response equals
            # the exact bytes the server sent.
            assert (
                protocol.encode_message(response)[protocol.HEADER_SIZE :]
                == json.dumps(
                    response, sort_keys=True, separators=(",", ":")
                ).encode()
            )
