"""Unit tests for per-tenant sessions, rate limiting and authentication."""

from __future__ import annotations

import pytest

from repro.db.connection import SessionContext
from repro.errors import TenantAuthError
from repro.server.tenancy import TenantConfig, TenantRegistry, TenantState, TokenBucket


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestTokenBucket:
    def test_burst_then_refill(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, capacity=3, clock=clock)
        assert [bucket.try_acquire() for _ in range(4)] == [True, True, True, False]
        clock.advance(0.5)  # 1 token refilled at 2/s
        assert bucket.try_acquire() is True
        assert bucket.try_acquire() is False

    def test_refill_caps_at_capacity(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, capacity=2, clock=clock)
        clock.advance(100.0)
        assert [bucket.try_acquire() for _ in range(3)] == [True, True, False]

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0, capacity=1)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, capacity=0)


class TestTenantConfig:
    def test_from_mapping(self):
        config = TenantConfig.from_mapping(
            {"name": "alice", "token": "s3cret", "max_cost": 2, "burst": 5}
        )
        assert config.name == "alice"
        assert config.max_cost == 2.0
        assert config.burst == 5

    def test_from_mapping_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown tenant config field"):
            TenantConfig.from_mapping({"name": "a", "budget": 1})

    def test_from_mapping_requires_name(self):
        with pytest.raises(ValueError, match="non-empty 'name'"):
            TenantConfig.from_mapping({"token": "x"})


class TestRegistryAuth:
    def test_open_registry_admits_anyone(self):
        registry = TenantRegistry()
        state = registry.authenticate("walk-in")
        assert isinstance(state, TenantState)
        assert registry.authenticate("walk-in") is state  # stable identity

    def test_configured_registry_defaults_closed(self):
        registry = TenantRegistry([TenantConfig(name="alice")])
        with pytest.raises(TenantAuthError):
            registry.authenticate("mallory")

    def test_wrong_token_rejected_without_oracle(self):
        registry = TenantRegistry([TenantConfig(name="alice", token="s3cret")])
        with pytest.raises(TenantAuthError) as unknown:
            registry.authenticate("mallory")
        with pytest.raises(TenantAuthError) as bad_token:
            registry.authenticate("alice", "wrong")
        # The message must not reveal whether the name or the token failed.
        assert "unknown tenant or bad token" in str(unknown.value)
        assert "unknown tenant or bad token" in str(bad_token.value)
        assert registry.authenticate("alice", "s3cret").name == "alice"

    def test_empty_name_rejected(self):
        with pytest.raises(TenantAuthError, match="must not be empty"):
            TenantRegistry().authenticate("")

    def test_allow_unknown_override(self):
        registry = TenantRegistry(
            [TenantConfig(name="alice")], allow_unknown=True
        )
        assert registry.authenticate("walk-in").name == "walk-in"


class TestTenantState:
    def test_budget_follows_tenant_not_connection(self):
        registry = TenantRegistry([TenantConfig(name="alice", max_cost=1.5)])
        state = registry.authenticate("alice")
        state.session.record_cost(1.0)
        # A "reconnect" sees the same session, hence the same spend.
        again = registry.authenticate("alice")
        assert again.session is state.session
        assert again.session.cost_spent == 1.0
        snap = again.snapshot()
        assert snap["max_cost"] == 1.5
        assert snap["remaining_budget"] == 0.5
        assert snap["budget_exhausted"] is False

    def test_budgets_are_isolated_between_tenants(self):
        registry = TenantRegistry(
            [TenantConfig(name="a", max_cost=1.0), TenantConfig(name="b", max_cost=1.0)]
        )
        registry.authenticate("a").session.record_cost(1.0)
        assert registry.authenticate("a").session.budget_exhausted is True
        assert registry.authenticate("b").session.budget_exhausted is False

    def test_cache_stats_fold_across_connections(self):
        state = TenantRegistry().authenticate("t")
        state.fold_cache_stats(10, 2)
        state.fold_cache_stats(5, 1)
        snap = state.snapshot()
        assert snap["statement_cache_hits"] == 15
        assert snap["statement_cache_misses"] == 3

    def test_rate_limit_bucket_uses_injected_clock(self):
        clock = FakeClock()
        registry = TenantRegistry(
            [TenantConfig(name="a", max_requests_per_second=1.0, burst=1)],
            clock=clock,
        )
        state = registry.authenticate("a")
        assert state.bucket is not None
        assert state.bucket.try_acquire() is True
        assert state.bucket.try_acquire() is False
        clock.advance(1.0)
        assert state.bucket.try_acquire() is True

    def test_custom_session_factory(self):
        def factory(config: TenantConfig) -> SessionContext:
            session = SessionContext(max_cost=config.max_cost)
            session.crowd_write_back = False
            return session

        registry = TenantRegistry(
            [TenantConfig(name="a", max_cost=3.0)], session_factory=factory
        )
        session = registry.authenticate("a").session
        assert session.max_cost == 3.0
        assert session.crowd_write_back is False
