"""Unit tests for the dynamic lock-order tracer (witness-based mode)."""

from __future__ import annotations

import threading

import pytest

from repro.analysis.tracer import LockOrderTracer, LockOrderViolation


def test_consistent_order_has_no_cycle():
    tracer = LockOrderTracer()
    a = tracer.wrap("A", threading.Lock())
    b = tracer.wrap("B", threading.Lock())
    for _ in range(3):
        with a:
            with b:
                pass
    assert tracer.adjacency()["A"] == {"B"}
    assert tracer.cycles() == []
    tracer.check()  # must not raise


def test_abba_order_is_a_cycle():
    tracer = LockOrderTracer()
    a = tracer.wrap("A", threading.Lock())
    b = tracer.wrap("B", threading.Lock())
    with a:
        with b:
            pass
    with b:
        with a:
            pass
    cycles = tracer.cycles()
    assert cycles, "opposite-order acquisitions must form a cycle"
    assert set(cycles[0]) >= {"A", "B"}
    with pytest.raises(LockOrderViolation) as excinfo:
        tracer.check()
    assert excinfo.value.cycles
    assert excinfo.value.witnesses  # points at the concrete acquisitions


def test_reentrant_acquisition_is_not_an_edge():
    tracer = LockOrderTracer()
    lock = tracer.wrap("R", threading.RLock())
    with lock:
        with lock:
            pass
    assert tracer.edges() == {}
    assert tracer.cycles() == []


def test_edges_record_first_witness_thread():
    tracer = LockOrderTracer()
    a = tracer.wrap("A", threading.Lock())
    b = tracer.wrap("B", threading.Lock())

    def worker() -> None:
        with a:
            with b:
                pass

    thread = threading.Thread(target=worker, name="locker")
    thread.start()
    thread.join()
    witness = tracer.edges()[("A", "B")]
    assert witness.thread == "locker"


def test_explicit_acquire_release_tracks_stack():
    tracer = LockOrderTracer()
    a = tracer.wrap("A", threading.Lock())
    b = tracer.wrap("B", threading.Lock())
    assert a.acquire()
    assert b.acquire()
    b.release()
    a.release()
    assert ("A", "B") in tracer.edges()
    # After release the stack is clean: acquiring in the other order
    # from a *fresh* nesting is a genuine new edge.
    assert b.acquire()
    b.release()
    assert ("B", "A") not in tracer.edges()


def test_held_stacks_are_per_thread():
    tracer = LockOrderTracer()
    a = tracer.wrap("A", threading.Lock())
    b = tracer.wrap("B", threading.Lock())
    a_held = threading.Event()
    done = threading.Event()

    def hold_a() -> None:
        with a:
            a_held.set()
            done.wait(timeout=10.0)

    thread = threading.Thread(target=hold_a)
    thread.start()
    assert a_held.wait(timeout=10.0)
    # This thread acquires B while *another* thread holds A; that must
    # not fabricate an A -> B edge.
    with b:
        pass
    done.set()
    thread.join()
    assert ("A", "B") not in tracer.edges()
