"""Threaded stress test for the dynamic lock-order tracer.

Instruments the engine's real locks (catalog, connection, WAL, runtime,
answer cache) with :class:`~repro.analysis.tracer.TracedLock`, then runs
concurrent crowd acquisition, checkpointing and direct UPDATEs against a
durable database.  The assertion is the race detector's contract: the
*observed* acquire-order graph stays acyclic, i.e. no two threads ever
took the same pair of locks in opposite orders.
"""

from __future__ import annotations

import threading
from typing import Any, Sequence

import repro
from repro.analysis.tracer import LockOrderTracer
from repro.crowd.runtime import AcquisitionRuntime


class ConstantSource:
    """Minimal batch ValueSource answering a constant appeal score."""

    def __init__(self, value: float = 0.75) -> None:
        self.value = value
        self.dispatches = 0

    def request_values(
        self, attribute: str, items: Sequence[tuple[int, dict[str, Any]]]
    ) -> dict[int, Any]:
        self.dispatches += 1
        return {rowid: self.value for rowid, _row in items}


def test_concurrent_engine_workload_keeps_lock_graph_acyclic(tmp_path):
    conn = repro.connect(
        path=tmp_path / "db", synchronous="normal", checkpoint_interval=None
    )
    conn.execute("CREATE TABLE items (item_id INTEGER PRIMARY KEY, name TEXT)")
    conn.executemany(
        "INSERT INTO items (item_id, name) VALUES (?, ?)",
        [(i, f"item-{i}") for i in range(1, 25)],
    )
    conn.add_perceptual_column("items", "appeal")

    runtime = AcquisitionRuntime(cache_ttl_seconds=0.001)  # queries mostly re-acquire
    conn.set_acquisition_runtime(runtime)
    conn.set_value_source(ConstantSource())
    conn.set_policy(conn.policy.with_overrides(crowd_batch_size=8))

    tracer = LockOrderTracer()
    catalog = conn.catalog
    catalog.lock = tracer.wrap("Catalog.lock", catalog.lock)
    conn._lock = tracer.wrap("Connection._lock", conn._lock)
    wal = catalog.durability.wal
    wal._lock = tracer.wrap("WriteAheadLog._lock", wal._lock)
    runtime._lock = tracer.wrap("AcquisitionRuntime._lock", runtime._lock)
    runtime.cache._lock = tracer.wrap("AnswerCache._lock", runtime.cache._lock)

    errors: list[BaseException] = []
    barrier = threading.Barrier(3)

    def guarded(fn) -> None:
        try:
            barrier.wait(timeout=10.0)
            fn()
        except BaseException as exc:  # noqa: B036 - surfaced via `errors`
            errors.append(exc)

    def acquire_loop() -> None:
        for _ in range(6):
            conn.execute("SELECT count(appeal) FROM items").fetchone()

    def checkpoint_loop() -> None:
        for _ in range(6):
            conn.checkpoint()

    def update_loop() -> None:
        for i in range(12):
            conn.execute(
                "UPDATE items SET name = ? WHERE item_id = ?",
                (f"renamed-{i}", (i % 24) + 1),
            )

    threads = [
        threading.Thread(target=guarded, args=(fn,), name=fn.__name__)
        for fn in (acquire_loop, checkpoint_loop, update_loop)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60.0)
    assert not any(thread.is_alive() for thread in threads), "stress workload hung"
    assert not errors, f"workload raised: {errors!r}"

    # The workload must actually have exercised the interesting edges ...
    edges = set(tracer.edges())
    assert ("Catalog.lock", "WriteAheadLog._lock") in edges, edges

    # ... and the observed acquire-order graph must be cycle-free.
    assert tracer.cycles() == [], tracer.edges()
    tracer.check()
    conn.close()
