"""Framework-level tests: suppressions, report rendering, driver, CLI."""

from __future__ import annotations

import json
import textwrap

import pytest

from repro.analysis import RULES, analyze_project
from repro.analysis.cli import main as cli_main
from repro.analysis.driver import role_of, run
from repro.analysis.report import render_human, render_json, rule_catalog

VIOLATION = """
from repro.db.types import MISSING

def is_empty(value):
    return value == MISSING
"""


def analyze(sources: dict[str, str], **kwargs):
    return analyze_project(
        {path: textwrap.dedent(code) for path, code in sources.items()}, **kwargs
    )


class TestRegistry:
    def test_at_least_eight_rules_registered(self):
        import repro.analysis.rules  # noqa: F401

        assert len(RULES) >= 8

    def test_catalog_entries_are_complete(self):
        for entry in rule_catalog():
            assert entry["id"]
            assert entry["summary"]
            assert entry["rationale"]
            assert entry["roles"]


class TestSuppressions:
    def test_inline_named_suppression(self):
        report = analyze(
            {
                "src/repro/db/x.py": """
                from repro.db.types import MISSING

                def is_empty(value):
                    # The sentinel's own unit test needs the == form.
                    return value == MISSING  # reprolint: disable=missing-identity
                """
            },
            select=["missing-identity"],
        )
        assert report.unsuppressed == []
        assert len(report.suppressed) == 1
        assert report.ok

    def test_inline_blanket_suppression(self):
        report = analyze(
            {
                "src/repro/db/x.py": """
                from repro.db.types import MISSING

                def is_empty(value):
                    return value == MISSING  # reprolint: disable
                """
            },
            select=["missing-identity"],
        )
        assert report.unsuppressed == []

    def test_suppression_for_other_rule_does_not_apply(self):
        report = analyze(
            {
                "src/repro/db/x.py": """
                from repro.db.types import MISSING

                def is_empty(value):
                    return value == MISSING  # reprolint: disable=seeded-rng
                """
            },
            select=["missing-identity"],
        )
        assert len(report.unsuppressed) == 1

    def test_file_level_suppression(self):
        report = analyze(
            {
                "src/repro/db/x.py": """
                # reprolint: disable-file=missing-identity
                from repro.db.types import MISSING

                def is_empty(value):
                    return value == MISSING

                def also_empty(value):
                    return MISSING == value
                """
            },
            select=["missing-identity"],
        )
        assert report.unsuppressed == []
        assert len(report.suppressed) == 2


class TestDriver:
    def test_role_inference(self):
        assert role_of("src/repro/db/wal.py") == "src"
        assert role_of("tests/db/test_wal.py") == "tests"
        assert role_of("benchmarks/test_bench_inserts.py") == "benchmarks"

    def test_parse_error_is_a_finding(self):
        report = analyze({"src/repro/broken.py": "def broken(:\n"})
        assert any(finding.rule == "parse-error" for finding in report.findings)
        assert not report.ok

    def test_unknown_rule_id_raises(self):
        with pytest.raises(KeyError):
            analyze({"src/repro/x.py": "x = 1\n"}, select=["no-such-rule"])

    def test_findings_sorted_by_location(self):
        report = analyze(
            {
                "src/repro/b.py": VIOLATION,
                "src/repro/a.py": VIOLATION,
            },
            select=["missing-identity"],
        )
        paths = [finding.path for finding in report.unsuppressed]
        assert paths == sorted(paths)


class TestRendering:
    def test_human_output_mentions_location_and_rule(self):
        report = analyze({"src/repro/a.py": VIOLATION}, select=["missing-identity"])
        text = render_human(report)
        assert "src/repro/a.py:" in text
        assert "missing-identity" in text
        assert "1 finding(s)" in text

    def test_json_output_is_self_describing(self):
        report = analyze({"src/repro/a.py": VIOLATION}, select=["missing-identity"])
        payload = json.loads(render_json(report))
        assert payload["tool"] == "reprolint"
        assert payload["summary"]["findings"] == 1
        assert payload["summary"]["ok"] is False
        assert {entry["id"] for entry in payload["rules"]} >= {
            "lock-order",
            "lock-blocking",
            "charge-once",
            "fill-provenance",
            "missing-identity",
            "seeded-rng",
            "wal-coverage",
            "thread-chokepoint",
        }
        finding = payload["findings"][0]
        assert finding["rule"] == "missing-identity"
        assert finding["suppressed"] is False


class TestCli:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        target = tmp_path / "pkg"
        target.mkdir()
        (target / "ok.py").write_text("def fine():\n    return 1\n")
        assert cli_main([str(target)]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_violation_exits_one(self, tmp_path, capsys):
        target = tmp_path / "pkg"
        target.mkdir()
        (target / "bad.py").write_text(textwrap.dedent(VIOLATION))
        assert cli_main([str(target)]) == 1
        out = capsys.readouterr().out
        assert "missing-identity" in out

    def test_json_report_written_to_file(self, tmp_path):
        target = tmp_path / "pkg"
        target.mkdir()
        (target / "bad.py").write_text(textwrap.dedent(VIOLATION))
        output = tmp_path / "report.json"
        code = cli_main([str(target), "--format", "json", "--output", str(output)])
        assert code == 1
        payload = json.loads(output.read_text())
        assert payload["summary"]["findings"] == 1

    def test_unknown_rule_exits_two(self, tmp_path, capsys):
        assert cli_main([str(tmp_path), "--select", "bogus"]) == 2
        assert "bogus" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        assert cli_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "lock-order" in out
        assert "wal-coverage" in out

    def test_run_over_real_src_is_clean(self, monkeypatch):
        # The CI gate in miniature: the real tree must carry zero
        # unsuppressed findings.
        from pathlib import Path

        monkeypatch.chdir(Path(__file__).resolve().parent.parent.parent)
        report = run(["src"])
        assert report.ok, "\n".join(f.render() for f in report.unsuppressed)
        assert report.files_scanned > 50
