"""Per-rule coverage: one violating fixture and one clean fixture per rule.

Fixtures are fed through :func:`repro.analysis.analyze_project` as
in-memory ``{path: source}`` mappings, so violation examples never exist
as real files that the CI gate (``python -m repro.analysis src tests
benchmarks``) would then flag.  Each test selects only the rule under
test, keeping fixtures minimal.
"""

from __future__ import annotations

import textwrap

from repro.analysis import analyze_project


def findings_of(sources: dict[str, str], rule: str) -> list:
    report = analyze_project(
        {path: textwrap.dedent(code) for path, code in sources.items()},
        select=[rule],
    )
    return report.unsuppressed


class TestLockOrder:
    def test_flags_abba_cycle(self):
        findings = findings_of(
            {
                "src/repro/db/catalog.py": """
                class Catalog:
                    def forward(self):
                        with self.lock:
                            with self.cache._lock:
                                pass

                    def backward(self):
                        with self.cache._lock:
                            with self.lock:
                                pass
                """
            },
            "lock-order",
        )
        assert len(findings) == 1
        assert "cycle" in findings[0].message
        assert "Catalog.lock" in findings[0].message
        assert "AnswerCache._lock" in findings[0].message

    def test_flags_interprocedural_cycle(self):
        # Neither function nests both locks lexically; the cycle only
        # exists through the call graph.
        findings = findings_of(
            {
                "src/repro/db/catalog.py": """
                class Catalog:
                    def forward(self):
                        with self.lock:
                            self._touch_cache()

                    def _touch_cache(self):
                        with self.cache._lock:
                            pass

                    def backward(self):
                        with self.cache._lock:
                            self._touch_lock()

                    def _touch_lock(self):
                        with self.lock:
                            pass
                """
            },
            "lock-order",
        )
        assert len(findings) == 1

    def test_consistent_order_is_clean(self):
        findings = findings_of(
            {
                "src/repro/db/catalog.py": """
                class Catalog:
                    def forward(self):
                        with self.lock:
                            with self.cache._lock:
                                pass

                    def also_forward(self):
                        with self.lock:
                            with self.cache._lock:
                                pass
                """
            },
            "lock-order",
        )
        assert findings == []

    def test_reentrant_same_lock_is_not_a_cycle(self):
        findings = findings_of(
            {
                "src/repro/db/catalog.py": """
                class Catalog:
                    def outer(self):
                        with self.lock:
                            self.inner()

                    def inner(self):
                        with self.lock:
                            pass
                """
            },
            "lock-order",
        )
        assert findings == []


class TestLockBlocking:
    def test_flags_sleep_under_catalog_lock(self):
        findings = findings_of(
            {
                "src/repro/db/catalog.py": """
                import time

                class Catalog:
                    def slow(self):
                        with self.lock:
                            time.sleep(1.0)
                """
            },
            "lock-blocking",
        )
        assert len(findings) == 1
        assert "sleep" in findings[0].message

    def test_flags_dispatch_under_catalog_lock(self):
        findings = findings_of(
            {
                "src/repro/db/sql/operators.py": """
                class CrowdFill:
                    def run(self, source, attribute, items):
                        with self._lock:  # injected catalog lock
                            return source.request_values(attribute, items)
                """
            },
            "lock-blocking",
        )
        assert len(findings) == 1
        assert "request_values" in findings[0].message

    def test_blocking_outside_lock_is_clean(self):
        findings = findings_of(
            {
                "src/repro/db/catalog.py": """
                import time

                class Catalog:
                    def fine(self):
                        with self.lock:
                            x = 1
                        time.sleep(1.0)
                        return x
                """
            },
            "lock-blocking",
        )
        assert findings == []

    def test_other_locks_may_wrap_fsync(self):
        # The WAL fsyncs under its own lock by design.
        findings = findings_of(
            {
                "src/repro/db/wal.py": """
                import os

                class WriteAheadLog:
                    def _sync(self):
                        with self._lock:
                            os.fsync(self._file.fileno())
                """
            },
            "lock-blocking",
        )
        assert findings == []

    def test_flags_sync_sleep_inside_coroutine(self):
        # time.sleep inside an async def blocks the whole event loop.
        findings = findings_of(
            {
                "src/repro/server/server.py": """
                import time

                class Handler:
                    async def run(self):
                        time.sleep(0.1)
                """
            },
            "lock-blocking",
        )
        assert len(findings) == 1
        assert "event loop" in findings[0].message
        assert "sleep" in findings[0].message

    def test_flags_future_result_inside_coroutine(self):
        findings = findings_of(
            {
                "src/repro/server/server.py": """
                class Handler:
                    async def run(self, future):
                        return future.result()
                """
            },
            "lock-blocking",
        )
        assert len(findings) == 1
        assert "result" in findings[0].message

    def test_awaited_sleep_and_wait_are_clean(self):
        # Awaited calls yield to the loop instead of blocking it, and
        # run_in_executor is the sanctioned home for blocking work.
        findings = findings_of(
            {
                "src/repro/server/server.py": """
                import asyncio

                class Server:
                    async def drain(self):
                        await asyncio.sleep(0.02)
                        await self._stop_event.wait()

                    async def dispatch(self, loop, fn):
                        return await loop.run_in_executor(None, fn)
                """
            },
            "lock-blocking",
        )
        assert findings == []

    def test_sync_helper_in_server_module_not_event_loop_checked(self):
        # Only coroutine bodies are event-loop territory; a sync helper
        # may block (it runs on a worker or the caller's thread).
        findings = findings_of(
            {
                "src/repro/server/server.py": """
                class Server:
                    def stop(self, thread):
                        thread.join(timeout=5.0)
                        self._started.wait(timeout=5.0)
                """
            },
            "lock-blocking",
        )
        assert findings == []


class TestChargeOnce:
    def test_flags_dispatch_outside_runtime_layer(self):
        findings = findings_of(
            {
                "src/repro/core/quality.py": """
                def resample(source, attribute, items):
                    return source.request_values(attribute, items)
                """
            },
            "charge-once",
        )
        assert len(findings) == 1
        assert "outside the runtime/operator layer" in findings[0].message

    def test_flags_discarded_cost(self):
        findings = findings_of(
            {
                "src/repro/crowd/sources.py": """
                class Source:
                    def warm(self, attribute, items):
                        self.request_values_with_cost(attribute, items)
                """
            },
            "charge-once",
        )
        assert len(findings) == 1
        assert "discarded" in findings[0].message

    def test_flags_per_iteration_charge_without_dispatch(self):
        findings = findings_of(
            {
                "src/repro/crowd/runtime.py": """
                def settle(session, groups, cost):
                    for _group in groups:
                        session.record_cost(cost)
                """
            },
            "charge-once",
        )
        assert len(findings) == 1
        assert "per loop iteration" in findings[0].message

    def test_flags_double_charge_on_one_path(self):
        findings = findings_of(
            {
                "src/repro/crowd/runtime.py": """
                def charge(session, cost):
                    session.record_cost(cost)
                    session.record_cost(cost)
                """
            },
            "charge-once",
        )
        assert len(findings) == 1
        assert "2 times" in findings[0].message

    def test_loop_with_dispatch_charges_clean(self):
        # The legacy operator path: one dispatch, one charge, per batch.
        findings = findings_of(
            {
                "src/repro/db/sql/operators.py": """
                def flush(session, source, attribute, batches):
                    for batch in batches:
                        before = source.total_cost
                        values = source.request_values(attribute, batch)
                        session.record_cost(source.total_cost - before)
                    return values
                """
            },
            "charge-once",
        )
        assert findings == []

    def test_conditional_branches_may_each_charge(self):
        findings = findings_of(
            {
                "src/repro/crowd/runtime.py": """
                def charge(session, cost, detailed):
                    if detailed:
                        session.record_cost(cost)
                    else:
                        session.record_cost(cost * 2)
                """
            },
            "charge-once",
        )
        assert findings == []


class TestFillProvenance:
    def test_flags_fill_values_without_provenance(self):
        findings = findings_of(
            {
                "src/repro/core/expansion.py": """
                def write_back(storage, attribute, updates):
                    return storage.fill_values(attribute, updates)
                """
            },
            "fill-provenance",
        )
        assert len(findings) == 1
        assert "provenance" in findings[0].message

    def test_fill_values_with_provenance_is_clean(self):
        findings = findings_of(
            {
                "src/repro/core/expansion.py": """
                def write_back(storage, attribute, updates):
                    return storage.fill_values(attribute, updates, provenance="crowd")
                """
            },
            "fill-provenance",
        )
        assert findings == []

    def test_flags_storage_internal_poke(self):
        findings = findings_of(
            {
                "src/repro/db/executor.py": """
                def shortcut(storage, rowid, row):
                    storage._rows[rowid] = row
                """
            },
            "fill-provenance",
        )
        assert len(findings) == 1
        assert "_rows" in findings[0].message

    def test_own_self_attributes_elsewhere_are_clean(self):
        # executor.py has its own unrelated self._rows buffer.
        findings = findings_of(
            {
                "src/repro/db/executor.py": """
                class Cursor:
                    def __init__(self):
                        self._rows = []

                    def push(self, row):
                        self._rows.append(row)
                """
            },
            "fill-provenance",
        )
        assert findings == []

    def test_storage_module_itself_is_exempt(self):
        findings = findings_of(
            {
                "src/repro/db/storage.py": """
                class TableStorage:
                    def get(self, rowid):
                        return self._rows[rowid]
                """
            },
            "fill-provenance",
        )
        assert findings == []


class TestMissingIdentity:
    def test_flags_equality_comparison(self):
        findings = findings_of(
            {
                "src/repro/db/executor.py": """
                from repro.db.types import MISSING

                def is_empty(value):
                    return value == MISSING
                """
            },
            "missing-identity",
        )
        assert len(findings) == 1
        assert "==" in findings[0].message

    def test_flags_truthiness(self):
        findings = findings_of(
            {
                "tests/db/test_cells.py": """
                from repro.db.types import MISSING

                def check(cell):
                    if not MISSING:
                        return cell
                """
            },
            "missing-identity",
        )
        assert len(findings) == 1
        assert "boolean context" in findings[0].message

    def test_identity_comparison_is_clean(self):
        findings = findings_of(
            {
                "src/repro/db/executor.py": """
                from repro.db.types import MISSING

                def is_empty(value):
                    return value is MISSING

                def has_value(value):
                    return value is not MISSING
                """
            },
            "missing-identity",
        )
        assert findings == []


class TestSeededRng:
    def test_flags_unseeded_default_rng(self):
        findings = findings_of(
            {
                "src/repro/crowd/worker.py": """
                import numpy as np

                def roll():
                    return np.random.default_rng().random()
                """
            },
            "seeded-rng",
        )
        assert len(findings) == 1
        assert "without a seed" in findings[0].message

    def test_flags_legacy_global_api(self):
        findings = findings_of(
            {
                "src/repro/crowd/worker.py": """
                import numpy as np

                def roll():
                    return np.random.rand(3)
                """
            },
            "seeded-rng",
        )
        assert len(findings) == 1
        assert "np.random.rand" in findings[0].message

    def test_flags_stdlib_random_import(self):
        findings = findings_of(
            {
                "tests/crowd/test_jitter.py": """
                import random

                def jitter():
                    return random.random()
                """
            },
            "seeded-rng",
        )
        assert len(findings) == 1
        assert "stdlib" in findings[0].message

    def test_seeded_generator_is_clean(self):
        findings = findings_of(
            {
                "src/repro/crowd/worker.py": """
                import numpy as np

                def roll(seed):
                    return np.random.default_rng(seed).random()
                """
            },
            "seeded-rng",
        )
        assert findings == []

    def test_rng_module_is_exempt(self):
        findings = findings_of(
            {
                "src/repro/utils/rng.py": """
                import numpy as np

                def ensure_rng(seed=None):
                    if seed is None:
                        return np.random.default_rng(12345)
                    return np.random.default_rng(seed)
                """
            },
            "seeded-rng",
        )
        assert findings == []


WAL_OK = """
RECORD_TYPES = frozenset({"insert", "delete"})
"""

DURABILITY_OK = """
class TableJournal:
    def row_inserted(self, rowid, row):
        self._manager.append("insert", {"rowid": rowid, "row": row})

    def row_deleted(self, rowid):
        self._manager.append("delete", {"rowid": rowid})

class DurabilityManager:
    def _apply(self, record):
        op = record["op"]
        if op == "insert":
            return self.do_insert(record)
        elif op == "delete":
            return self.do_delete(record)
"""

STORAGE_OK = """
class TableStorage:
    def insert(self, values):
        rowid = self.next_rowid()
        if self.journal is not None:
            self.journal.row_inserted(rowid, values)
        return rowid

    def delete(self, rowid):
        if self.journal is not None:
            self.journal.row_deleted(rowid)
"""


class TestWalCoverage:
    def test_consistent_registry_is_clean(self):
        findings = findings_of(
            {
                "src/repro/db/wal.py": WAL_OK,
                "src/repro/db/durability.py": DURABILITY_OK,
                "src/repro/db/storage.py": STORAGE_OK,
            },
            "wal-coverage",
        )
        assert findings == []

    def test_flags_unregistered_append(self):
        findings = findings_of(
            {
                "src/repro/db/wal.py": """
                RECORD_TYPES = frozenset({"insert"})
                """,
                "src/repro/db/durability.py": DURABILITY_OK,
                "src/repro/db/storage.py": STORAGE_OK,
            },
            "wal-coverage",
        )
        messages = " | ".join(finding.message for finding in findings)
        assert "'delete' is appended but not registered" in messages

    def test_flags_missing_replay_handler(self):
        findings = findings_of(
            {
                "src/repro/db/wal.py": WAL_OK,
                "src/repro/db/durability.py": """
                class TableJournal:
                    def row_inserted(self, rowid, row):
                        self._manager.append("insert", {"rowid": rowid})

                    def row_deleted(self, rowid):
                        self._manager.append("delete", {"rowid": rowid})

                class DurabilityManager:
                    def _apply(self, record):
                        op = record["op"]
                        if op == "insert":
                            return self.do_insert(record)
                """,
                "src/repro/db/storage.py": STORAGE_OK,
            },
            "wal-coverage",
        )
        messages = " | ".join(finding.message for finding in findings)
        assert "'delete' has no replay handler" in messages

    def test_flags_missing_registry(self):
        findings = findings_of(
            {
                "src/repro/db/wal.py": """
                class WriteAheadLog:
                    pass
                """,
            },
            "wal-coverage",
        )
        assert len(findings) == 1
        assert "no RECORD_TYPES registry" in findings[0].message

    def test_flags_unjournalled_mutator(self):
        findings = findings_of(
            {
                "src/repro/db/wal.py": WAL_OK,
                "src/repro/db/durability.py": DURABILITY_OK,
                "src/repro/db/storage.py": """
                class TableStorage:
                    def insert(self, values):
                        rowid = self.next_rowid()
                        if self.journal is not None:
                            self.journal.row_inserted(rowid, values)
                        return rowid

                    def delete(self, rowid):
                        self._rows.pop(rowid)
                """,
            },
            "wal-coverage",
        )
        messages = " | ".join(finding.message for finding in findings)
        assert "TableStorage.delete() mutates durable state" in messages


class TestThreadChokepoint:
    def test_flags_thread_outside_runtime(self):
        findings = findings_of(
            {
                "src/repro/db/connection.py": """
                import threading

                def spawn(fn):
                    worker = threading.Thread(target=fn, daemon=True)
                    worker.start()
                    return worker
                """
            },
            "thread-chokepoint",
        )
        assert len(findings) == 1
        assert "Thread" in findings[0].message

    def test_flags_bare_executor(self):
        findings = findings_of(
            {
                "src/repro/core/pipeline.py": """
                from concurrent.futures import ThreadPoolExecutor

                def pool():
                    return ThreadPoolExecutor(max_workers=4)
                """
            },
            "thread-chokepoint",
        )
        assert len(findings) == 1

    def test_runtime_module_is_exempt(self):
        findings = findings_of(
            {
                "src/repro/crowd/runtime.py": """
                from concurrent.futures import ThreadPoolExecutor

                class AcquisitionRuntime:
                    def _ensure_pool(self):
                        return ThreadPoolExecutor(max_workers=self.max_workers)
                """
            },
            "thread-chokepoint",
        )
        assert findings == []

    def test_server_package_is_sanctioned(self):
        # The served-database front-end owns its event loop, worker pool
        # and background server thread (all drained on shutdown).
        findings = findings_of(
            {
                "src/repro/server/server.py": """
                import threading
                from concurrent.futures import ThreadPoolExecutor

                class ReproServer:
                    def _open(self):
                        self._executor = ThreadPoolExecutor(max_workers=8)

                    def start(self):
                        self._thread = threading.Thread(target=self._run, daemon=True)
                        self._thread.start()
                """
            },
            "thread-chokepoint",
        )
        assert findings == []

    def test_server_sibling_modules_still_flagged(self):
        # Sanctioning repro/server/ must not leak to e.g. the client
        # module's neighbours elsewhere in the tree.
        findings = findings_of(
            {
                "src/repro/db/durability.py": """
                import threading

                def watcher(fn):
                    return threading.Timer(1.0, fn)
                """
            },
            "thread-chokepoint",
        )
        assert len(findings) == 1
        assert "Timer" in findings[0].message

    def test_tests_are_out_of_scope(self):
        findings = findings_of(
            {
                "tests/db/test_races.py": """
                import threading

                def spawn(fn):
                    return threading.Thread(target=fn)
                """
            },
            "thread-chokepoint",
        )
        assert findings == []
