"""Tests for the SVD and Euclidean-embedding factor models."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import NotFittedError, PerceptualSpaceError
from repro.perceptual.euclidean_embedding import EuclideanEmbeddingModel
from repro.perceptual.factorization import FactorModelConfig
from repro.perceptual.ratings import RatingDataset
from repro.perceptual.svd_model import SVDModel


def planted_dataset(seed: int = 0, n_items: int = 80, n_users: int = 200) -> RatingDataset:
    """Ratings generated from a 2-cluster planted structure."""
    rng = np.random.default_rng(seed)
    item_pos = rng.normal(0, 1, (n_items, 3))
    item_pos[: n_items // 2] += 2.0
    user_pos = rng.normal(0, 1, (n_users, 3))
    user_pos[: n_users // 2] += 2.0
    triples = []
    for user in range(n_users):
        rated = rng.choice(n_items, size=30, replace=False)
        for item in rated:
            distance_sq = float(np.sum((item_pos[item] - user_pos[user]) ** 2))
            score = float(np.clip(4.5 - 0.35 * distance_sq + rng.normal(0, 0.3), 1, 5))
            triples.append((item + 1, user + 1, score))
    return RatingDataset.from_triples(triples)


@pytest.fixture(scope="module")
def dataset() -> RatingDataset:
    return planted_dataset()


@pytest.fixture(scope="module")
def fitted_embedding(dataset) -> EuclideanEmbeddingModel:
    config = FactorModelConfig(n_factors=8, n_epochs=15, seed=0)
    return EuclideanEmbeddingModel(config).fit(dataset)


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_factors": 0},
            {"n_epochs": 0},
            {"learning_rate": 0},
            {"regularization": -1},
            {"batch_size": 0},
            {"learning_rate_decay": 0},
            {"learning_rate_decay": 1.5},
        ],
    )
    def test_invalid_config(self, kwargs):
        with pytest.raises(PerceptualSpaceError):
            FactorModelConfig(**kwargs)

    def test_defaults_follow_paper(self):
        config = FactorModelConfig()
        assert config.regularization == pytest.approx(0.02)


class TestEuclideanEmbedding:
    def test_training_reduces_rmse(self, dataset):
        model = EuclideanEmbeddingModel(FactorModelConfig(n_factors=8, n_epochs=10, seed=1))
        model.fit(dataset)
        history = model.history.epoch_rmse
        assert history[-1] < history[0]
        assert history[-1] < 1.2

    def test_predictions_have_sane_range(self, fitted_embedding, dataset):
        predictions = fitted_embedding._predict_batch(dataset.item_index, dataset.user_index)
        assert np.all(np.isfinite(predictions))
        assert predictions.mean() == pytest.approx(dataset.global_mean, abs=0.6)

    def test_predict_by_external_ids(self, fitted_embedding):
        values = fitted_embedding.predict([1, 2], [1, 1])
        assert values.shape == (2,)

    def test_biases_initialised_from_means(self, dataset):
        model = EuclideanEmbeddingModel(FactorModelConfig(n_factors=4, n_epochs=1, seed=0))
        model.fit(dataset)
        assert model.item_bias is not None
        assert model.item_bias.shape == (dataset.n_items,)

    def test_rating_components_decomposition(self, fitted_embedding):
        components = fitted_embedding.expected_rating_components(
            np.array([0, 1]), np.array([0, 1])
        )
        reconstructed = (
            components["global_mean"]
            + components["item_bias"]
            + components["user_bias"]
            - components["squared_distance"]
        )
        direct = fitted_embedding._predict_batch(np.array([0, 1]), np.array([0, 1]))
        assert np.allclose(reconstructed, direct)

    def test_not_fitted_errors(self):
        model = EuclideanEmbeddingModel()
        with pytest.raises(NotFittedError):
            model.predict([1], [1])
        with pytest.raises(NotFittedError):
            model.to_space()

    def test_space_recovers_planted_clusters(self, fitted_embedding, dataset):
        space = fitted_embedding.to_space()
        coords = space.coordinates
        n_items = dataset.n_items
        first_half = [space.position(i) for i in range(1, n_items // 2 + 1)]
        second_half = [space.position(i) for i in range(n_items // 2 + 1, n_items + 1)]
        centroid_distance = np.linalg.norm(
            coords[first_half].mean(axis=0) - coords[second_half].mean(axis=0)
        )
        within_spread = np.mean(
            [np.std(coords[first_half], axis=0).mean(), np.std(coords[second_half], axis=0).mean()]
        )
        assert centroid_distance > within_spread

    def test_rmse_on_held_out_data(self, dataset):
        train, test = dataset.train_test_split(test_fraction=0.2, seed=0)
        model = EuclideanEmbeddingModel(FactorModelConfig(n_factors=8, n_epochs=10, seed=0))
        model.fit(train)
        rmse = model.rmse_on(test)
        assert 0.0 < rmse < 1.5

    def test_early_stopping_records_epoch(self, dataset):
        config = FactorModelConfig(
            n_factors=4, n_epochs=50, seed=0, early_stopping_tolerance=0.05
        )
        model = EuclideanEmbeddingModel(config).fit(dataset)
        assert model.history.converged_after is not None
        assert model.history.converged_after <= 50

    def test_reproducible_with_same_seed(self, dataset):
        config = FactorModelConfig(n_factors=4, n_epochs=3, seed=7)
        first = EuclideanEmbeddingModel(config).fit(dataset)
        second = EuclideanEmbeddingModel(config).fit(dataset)
        assert np.allclose(first.item_factors, second.item_factors)


class TestSVDModel:
    def test_training_reduces_rmse(self, dataset):
        model = SVDModel(FactorModelConfig(n_factors=8, n_epochs=10, seed=1))
        model.fit(dataset)
        assert model.history.epoch_rmse[-1] < model.history.epoch_rmse[0]

    def test_space_dimensions(self, dataset):
        model = SVDModel(FactorModelConfig(n_factors=6, n_epochs=5, seed=0)).fit(dataset)
        space = model.to_space()
        assert space.n_dimensions == 6
        assert space.n_items == dataset.n_items

    def test_history_final_rmse_property(self, dataset):
        model = SVDModel(FactorModelConfig(n_factors=4, n_epochs=3, seed=0)).fit(dataset)
        assert model.history.final_rmse == model.history.epoch_rmse[-1]

    def test_unfitted_history_raises(self):
        model = SVDModel()
        with pytest.raises(PerceptualSpaceError):
            _ = model.history.final_rmse

    def test_embedding_beats_unpersonalised_baseline(self, dataset, fitted_embedding):
        baseline_rmse = float(np.sqrt(np.mean((dataset.scores - dataset.global_mean) ** 2)))
        assert fitted_embedding.training_rmse(dataset) < baseline_rmse
