"""Tests for item fold-in and dataset/space persistence."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import PerceptualSpaceError
from repro.perceptual.euclidean_embedding import EuclideanEmbeddingModel
from repro.perceptual.factorization import FactorModelConfig
from repro.perceptual.fold_in import ItemFoldIn
from repro.perceptual.io import load_ratings, load_space, save_ratings, save_space
from repro.perceptual.ratings import RatingDataset
from repro.perceptual.space import PerceptualSpace


@pytest.fixture(scope="module")
def world():
    """A small planted world: two item clusters, users near one of them."""
    rng = np.random.default_rng(0)
    n_items, n_users = 60, 150
    item_pos = rng.normal(0, 1, (n_items, 3))
    item_pos[:30] += 2.0
    user_pos = rng.normal(0, 1, (n_users, 3))
    user_pos[:75] += 2.0
    triples = []
    for user in range(n_users):
        for item in rng.choice(n_items, 25, replace=False):
            d2 = float(np.sum((item_pos[item] - user_pos[user]) ** 2))
            score = float(np.clip(4.5 - 0.3 * d2 + rng.normal(0, 0.3), 1, 5))
            triples.append((item + 1, user + 1, score))
    dataset = RatingDataset.from_triples(triples)
    model = EuclideanEmbeddingModel(FactorModelConfig(n_factors=6, n_epochs=15, seed=0))
    model.fit(dataset)
    return {"item_pos": item_pos, "user_pos": user_pos, "dataset": dataset, "model": model, "rng": rng}


class TestItemFoldIn:
    def _new_item_ratings(self, world, cluster_shift: float, n: int = 40):
        """Ratings a brand-new item in the given cluster would receive."""
        rng = np.random.default_rng(99)
        ratings = []
        new_pos = np.full(3, cluster_shift)
        for user in rng.choice(world["dataset"].n_users, n, replace=False):
            d2 = float(np.sum((new_pos - world["user_pos"][user]) ** 2))
            score = float(np.clip(4.5 - 0.3 * d2 + rng.normal(0, 0.3), 1, 5))
            ratings.append((int(world["dataset"].user_ids[user]), score))
        return ratings

    def test_folded_item_lands_near_its_cluster(self, world):
        model = world["model"]
        space = model.to_space()
        fold = ItemFoldIn(model, seed=0)
        result = fold.fold_in(999, self._new_item_ratings(world, cluster_shift=2.0))
        assert result.n_ratings_used > 10
        assert result.final_rmse < 1.5

        # Distance from the folded item to the cluster-1 items (true neighbours)
        # should be smaller than to cluster-2 items.
        cluster_1 = space.vectors(list(range(1, 31))).mean(axis=0)
        cluster_2 = space.vectors(list(range(31, 61))).mean(axis=0)
        d1 = np.linalg.norm(result.coordinates - cluster_1)
        d2 = np.linalg.norm(result.coordinates - cluster_2)
        assert d1 < d2

    def test_extend_space(self, world):
        model = world["model"]
        space = model.to_space()
        fold = ItemFoldIn(model, seed=0)
        new_items = {999: self._new_item_ratings(world, 2.0), 1000: self._new_item_ratings(world, 0.0)}
        extended, results = fold.extend_space(space, new_items)
        assert extended.n_items == space.n_items + 2
        assert {r.item_id for r in results} == {999, 1000}
        assert 999 in extended and 1000 in extended
        # original space untouched
        assert 999 not in space

    def test_existing_items_are_skipped(self, world):
        model = world["model"]
        space = model.to_space()
        fold = ItemFoldIn(model, seed=0)
        extended, results = fold.extend_space(space, {1: self._new_item_ratings(world, 2.0)})
        assert extended is space
        assert results == []

    def test_too_few_ratings_rejected(self, world):
        fold = ItemFoldIn(world["model"], min_ratings=5, seed=0)
        with pytest.raises(PerceptualSpaceError):
            fold.fold_in(999, [(int(world["dataset"].user_ids[0]), 4.0)])

    def test_unknown_users_do_not_count(self, world):
        fold = ItemFoldIn(world["model"], min_ratings=3, seed=0)
        with pytest.raises(PerceptualSpaceError):
            fold.fold_in(999, [(10**7, 4.0), (10**7 + 1, 3.0), (10**7 + 2, 2.0)])

    def test_malformed_user_id_propagates(self, world):
        # Narrowed exception handling: only UnknownUserError means "skip
        # this rating"; a rating carrying a junk user id is caller error
        # and must surface, not be silently dropped.
        fold = ItemFoldIn(world["model"], min_ratings=3, seed=0)
        with pytest.raises((TypeError, ValueError)):
            fold.fold_in(999, [("not-a-user-id", 4.0)])

    def test_unfitted_model_rejected(self):
        with pytest.raises(PerceptualSpaceError):
            ItemFoldIn(EuclideanEmbeddingModel())

    def test_invalid_parameters(self, world):
        with pytest.raises(PerceptualSpaceError):
            ItemFoldIn(world["model"], n_iterations=0)
        with pytest.raises(PerceptualSpaceError):
            ItemFoldIn(world["model"], min_ratings=0)


class TestPersistence:
    def test_space_roundtrip(self, tmp_path, world):
        space = world["model"].to_space().with_metadata(note="unit test")
        path = save_space(space, tmp_path / "space.npz")
        loaded = load_space(path)
        assert loaded.item_ids == space.item_ids
        assert np.allclose(loaded.coordinates, space.coordinates)
        assert loaded.metadata["note"] == "unit test"

    def test_ratings_roundtrip(self, tmp_path, world):
        dataset = world["dataset"]
        path = save_ratings(dataset, tmp_path / "ratings.npz")
        loaded = load_ratings(path)
        assert loaded.n_ratings == dataset.n_ratings
        assert loaded.n_items == dataset.n_items
        assert loaded.scale == dataset.scale
        assert loaded.global_mean == pytest.approx(dataset.global_mean)

    def test_missing_files_raise(self, tmp_path):
        with pytest.raises(PerceptualSpaceError):
            load_space(tmp_path / "nope.npz")
        with pytest.raises(PerceptualSpaceError):
            load_ratings(tmp_path / "nope.npz")

    def test_loaded_space_supports_queries(self, tmp_path, world):
        space = world["model"].to_space()
        loaded = load_space(save_space(space, tmp_path / "space.npz"))
        original = space.nearest_neighbors(space.item_ids[0], k=3)
        restored = loaded.nearest_neighbors(space.item_ids[0], k=3)
        assert original == restored
