"""Tests for factor-model cross-validation and hyper-parameter selection."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import PerceptualSpaceError
from repro.perceptual.cross_validation import (
    cross_validate_model,
    grid_of_configs,
    select_hyperparameters,
)
from repro.perceptual.euclidean_embedding import EuclideanEmbeddingModel
from repro.perceptual.factorization import FactorModelConfig
from repro.perceptual.ratings import RatingDataset


@pytest.fixture(scope="module")
def dataset() -> RatingDataset:
    rng = np.random.default_rng(0)
    items = rng.integers(1, 40, size=3000)
    users = rng.integers(1, 120, size=3000)
    quality = {i: rng.normal(0, 0.8) for i in range(1, 40)}
    scores = np.clip(
        np.array([3.2 + quality[i] for i in items]) + rng.normal(0, 0.4, 3000), 1, 5
    )
    return RatingDataset(items, users, scores)


def factory(config: FactorModelConfig) -> EuclideanEmbeddingModel:
    return EuclideanEmbeddingModel(config)


class TestCrossValidation:
    def test_fold_count_and_positive_rmse(self, dataset):
        config = FactorModelConfig(n_factors=4, n_epochs=5, seed=0)
        result = cross_validate_model(factory, dataset, config, n_folds=3, seed=0)
        assert len(result.fold_rmse) == 3
        assert all(r > 0 for r in result.fold_rmse)
        assert result.mean_rmse == pytest.approx(np.mean(result.fold_rmse))
        assert result.std_rmse >= 0

    def test_select_hyperparameters_returns_best(self, dataset):
        base = FactorModelConfig(n_factors=4, n_epochs=4, seed=0)
        best, results = select_hyperparameters(
            factory,
            dataset,
            n_factors_grid=(2, 4),
            regularization_grid=(0.02,),
            base_config=base,
            n_folds=2,
            seed=0,
        )
        assert len(results) == 2
        best_rmse = min(r.mean_rmse for r in results)
        chosen = [r for r in results if r.config == best][0]
        assert chosen.mean_rmse == pytest.approx(best_rmse)

    def test_empty_grid_rejected(self, dataset):
        with pytest.raises(PerceptualSpaceError):
            select_hyperparameters(factory, dataset, n_factors_grid=(), regularization_grid=(0.02,))

    def test_grid_of_configs(self):
        configs = grid_of_configs([8, 16], [0.01, 0.02, 0.1])
        assert len(configs) == 6
        assert {c.n_factors for c in configs} == {8, 16}
