"""Tests for the rating dataset container."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import PerceptualSpaceError, UnknownItemError, UnknownUserError
from repro.perceptual.ratings import Rating, RatingDataset


@pytest.fixture
def dataset() -> RatingDataset:
    triples = [
        (10, 1, 5.0), (10, 2, 4.0), (10, 3, 3.0),
        (20, 1, 2.0), (20, 2, 1.0),
        (30, 3, 5.0),
    ]
    return RatingDataset.from_triples(triples)


class TestConstruction:
    def test_basic_counts(self, dataset):
        assert dataset.n_ratings == 6
        assert dataset.n_items == 3
        assert dataset.n_users == 3
        assert len(dataset) == 6

    def test_global_mean(self, dataset):
        assert dataset.global_mean == pytest.approx(np.mean([5, 4, 3, 2, 1, 5]))

    def test_density(self, dataset):
        assert dataset.density == pytest.approx(6 / 9)

    def test_mismatched_lengths(self):
        with pytest.raises(PerceptualSpaceError):
            RatingDataset([1, 2], [1], [5.0, 4.0])

    def test_empty_dataset_rejected(self):
        with pytest.raises(PerceptualSpaceError):
            RatingDataset.from_triples([])

    def test_invalid_scale(self):
        with pytest.raises(PerceptualSpaceError):
            RatingDataset([1], [1], [3.0], scale=(5, 1))

    def test_from_ratings(self):
        dataset = RatingDataset.from_ratings([Rating(1, 1, 3.0), Rating(2, 1, 4.0)])
        assert dataset.n_items == 2

    def test_iteration_roundtrip(self, dataset):
        ratings = list(dataset)
        assert len(ratings) == 6
        assert all(isinstance(r, Rating) for r in ratings)
        assert {r.item_id for r in ratings} == {10, 20, 30}

    def test_repr(self, dataset):
        assert "n_items=3" in repr(dataset)


class TestIndexMapping:
    def test_item_positions_are_consistent(self, dataset):
        for item_id in (10, 20, 30):
            position = dataset.item_position(item_id)
            assert dataset.item_ids[position] == item_id

    def test_unknown_item(self, dataset):
        with pytest.raises(UnknownItemError):
            dataset.item_position(99)

    def test_unknown_user(self, dataset):
        with pytest.raises(UnknownUserError):
            dataset.user_position(99)

    def test_has_item(self, dataset):
        assert dataset.has_item(10)
        assert not dataset.has_item(11)


class TestStatistics:
    def test_item_rating_counts(self, dataset):
        counts = dict(zip(dataset.item_ids.tolist(), dataset.item_rating_counts().tolist()))
        assert counts == {10: 3, 20: 2, 30: 1}

    def test_user_rating_counts(self, dataset):
        counts = dict(zip(dataset.user_ids.tolist(), dataset.user_rating_counts().tolist()))
        assert counts == {1: 2, 2: 2, 3: 2}

    def test_item_means(self, dataset):
        means = dict(zip(dataset.item_ids.tolist(), dataset.item_means().tolist()))
        assert means[10] == pytest.approx(4.0)
        assert means[20] == pytest.approx(1.5)

    def test_user_means(self, dataset):
        means = dict(zip(dataset.user_ids.tolist(), dataset.user_means().tolist()))
        assert means[1] == pytest.approx(3.5)


class TestTransformations:
    def test_filter_min_ratings(self, dataset):
        filtered = dataset.filter_min_ratings(min_item_ratings=2)
        assert set(filtered.item_ids.tolist()) == {10, 20}
        assert filtered.n_ratings == 5

    def test_filter_removing_everything_raises(self, dataset):
        with pytest.raises(PerceptualSpaceError):
            dataset.filter_min_ratings(min_item_ratings=10)

    def test_subset_items(self, dataset):
        subset = dataset.subset_items([10])
        assert subset.n_items == 1
        assert subset.n_ratings == 3

    def test_subset_items_empty_raises(self, dataset):
        with pytest.raises(PerceptualSpaceError):
            dataset.subset_items([99])

    def test_train_test_split_partitions(self, dataset):
        train, test = dataset.train_test_split(test_fraction=0.34, seed=0)
        assert train.n_ratings + test.n_ratings == dataset.n_ratings
        assert test.n_ratings == 2

    def test_train_test_split_validation(self, dataset):
        with pytest.raises(PerceptualSpaceError):
            dataset.train_test_split(test_fraction=0.0)
        with pytest.raises(PerceptualSpaceError):
            dataset.train_test_split(test_fraction=1.0)

    def test_kfold_indices_cover_everything(self, dataset):
        folds = dataset.kfold_indices(3, seed=1)
        combined = np.concatenate(folds)
        assert sorted(combined.tolist()) == list(range(dataset.n_ratings))

    def test_kfold_validation(self, dataset):
        with pytest.raises(PerceptualSpaceError):
            dataset.kfold_indices(1)

    def test_take(self, dataset):
        subset = dataset.take(np.array([0, 1]))
        assert subset.n_ratings == 2
        with pytest.raises(PerceptualSpaceError):
            dataset.take(np.array([], dtype=int))


class TestDatasetProperties:
    @given(
        st.lists(
            st.tuples(
                st.integers(1, 30), st.integers(1, 30),
                st.floats(min_value=1.0, max_value=5.0, allow_nan=False),
            ),
            min_size=1,
            max_size=200,
        )
    )
    def test_counts_match_input(self, triples):
        dataset = RatingDataset.from_triples(triples)
        assert dataset.n_ratings == len(triples)
        assert dataset.n_items == len({t[0] for t in triples})
        assert dataset.n_users == len({t[1] for t in triples})

    @given(
        st.lists(
            st.tuples(
                st.integers(1, 10), st.integers(1, 10),
                st.floats(min_value=1.0, max_value=5.0, allow_nan=False),
            ),
            min_size=2,
            max_size=100,
        )
    )
    def test_global_mean_in_scale(self, triples):
        dataset = RatingDataset.from_triples(triples)
        assert 1.0 <= dataset.global_mean <= 5.0
        counts = dataset.item_rating_counts()
        assert counts.sum() == dataset.n_ratings
