"""Tests for the PerceptualSpace container and its geometry queries."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import PerceptualSpaceError, UnknownItemError
from repro.perceptual.space import PerceptualSpace


@pytest.fixture
def space() -> PerceptualSpace:
    coordinates = np.array(
        [
            [0.0, 0.0],
            [1.0, 0.0],
            [0.0, 1.0],
            [5.0, 5.0],
            [5.2, 5.1],
        ]
    )
    return PerceptualSpace([10, 20, 30, 40, 50], coordinates, metadata={"model": "test"})


class TestConstruction:
    def test_basic_properties(self, space):
        assert space.n_items == 5
        assert space.n_dimensions == 2
        assert len(space) == 5
        assert space.item_ids == [10, 20, 30, 40, 50]
        assert space.metadata["model"] == "test"

    def test_mismatched_lengths(self):
        with pytest.raises(PerceptualSpaceError):
            PerceptualSpace([1, 2], np.zeros((3, 2)))

    def test_duplicate_ids(self):
        with pytest.raises(PerceptualSpaceError):
            PerceptualSpace([1, 1], np.zeros((2, 2)))

    def test_non_2d_coordinates(self):
        with pytest.raises(PerceptualSpaceError):
            PerceptualSpace([1], np.zeros(3))

    def test_contains(self, space):
        assert 10 in space
        assert 99 not in space


class TestLookups:
    def test_vector(self, space):
        assert np.allclose(space.vector(20), [1.0, 0.0])

    def test_unknown_item(self, space):
        with pytest.raises(UnknownItemError):
            space.vector(99)

    def test_vectors_preserve_order(self, space):
        matrix = space.vectors([30, 10])
        assert np.allclose(matrix[0], [0.0, 1.0])
        assert np.allclose(matrix[1], [0.0, 0.0])

    def test_feature_matrix_default_all(self, space):
        X, ids = space.feature_matrix()
        assert X.shape == (5, 2)
        assert ids == space.item_ids

    def test_feature_matrix_subset(self, space):
        X, ids = space.feature_matrix([40, 50])
        assert X.shape == (2, 2)
        assert ids == [40, 50]


class TestGeometry:
    def test_distance(self, space):
        assert space.distance(10, 20) == pytest.approx(1.0)
        assert space.distance(40, 50) == pytest.approx(np.sqrt(0.04 + 0.01))

    def test_distances_from(self, space):
        distances = space.distances_from(10)
        assert distances[space.position(10)] == 0.0
        assert distances[space.position(40)] == pytest.approx(np.sqrt(50))

    def test_nearest_neighbors_excludes_self(self, space):
        neighbors = space.nearest_neighbors(40, k=2)
        assert [n for n, _d in neighbors] == [50, 20] or [n for n, _d in neighbors][0] == 50
        assert all(n != 40 for n, _d in neighbors)

    def test_nearest_neighbors_include_self(self, space):
        neighbors = space.nearest_neighbors(40, k=1, exclude_self=False)
        assert neighbors[0][0] == 40
        assert neighbors[0][1] == 0.0

    def test_nearest_neighbors_k_validation(self, space):
        with pytest.raises(PerceptualSpaceError):
            space.nearest_neighbors(10, k=0)

    def test_nearest_neighbors_distances_sorted(self, space):
        neighbors = space.nearest_neighbors(10, k=4)
        distances = [d for _n, d in neighbors]
        assert distances == sorted(distances)


class TestDerivedSpaces:
    def test_subspace(self, space):
        sub = space.subspace([40, 50])
        assert sub.n_items == 2
        assert np.allclose(sub.vector(40), space.vector(40))

    def test_with_metadata(self, space):
        enriched = space.with_metadata(source="unit test")
        assert enriched.metadata["source"] == "unit test"
        assert enriched.metadata["model"] == "test"
        assert "source" not in space.metadata


class TestSpaceProperties:
    @given(st.integers(2, 20), st.integers(1, 6))
    def test_distance_symmetry_and_identity(self, n_items, dimensions):
        rng = np.random.default_rng(n_items * 10 + dimensions)
        space = PerceptualSpace(
            list(range(1, n_items + 1)), rng.normal(size=(n_items, dimensions))
        )
        first, second = 1, n_items
        assert space.distance(first, second) == pytest.approx(space.distance(second, first))
        assert space.distance(first, first) == 0.0

    @given(st.integers(3, 15))
    def test_triangle_inequality(self, n_items):
        rng = np.random.default_rng(n_items)
        space = PerceptualSpace(list(range(n_items)), rng.normal(size=(n_items, 4)))
        a, b, c = 0, 1, 2
        assert space.distance(a, c) <= space.distance(a, b) + space.distance(b, c) + 1e-9

    @given(st.integers(4, 20), st.integers(1, 3))
    def test_nearest_neighbors_are_truly_nearest(self, n_items, k):
        rng = np.random.default_rng(n_items * 7 + k)
        space = PerceptualSpace(list(range(n_items)), rng.normal(size=(n_items, 3)))
        neighbors = space.nearest_neighbors(0, k=k)
        neighbor_distances = [d for _n, d in neighbors]
        all_distances = sorted(space.distance(0, other) for other in range(1, n_items))
        assert np.allclose(neighbor_distances, all_distances[:k])
