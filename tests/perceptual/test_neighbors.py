"""Tests for pairwise distances and neighbourhood utilities."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import PerceptualSpaceError
from repro.perceptual.neighbors import (
    nearest_neighbors,
    neighborhood_purity,
    pairwise_distances,
)
from repro.perceptual.space import PerceptualSpace


@pytest.fixture
def clustered_space() -> PerceptualSpace:
    rng = np.random.default_rng(0)
    first = rng.normal(0.0, 0.3, size=(20, 4))
    second = rng.normal(3.0, 0.3, size=(20, 4))
    return PerceptualSpace(list(range(1, 41)), np.vstack([first, second]))


class TestPairwiseDistances:
    def test_matches_numpy_reference(self):
        rng = np.random.default_rng(1)
        a = rng.normal(size=(7, 3))
        b = rng.normal(size=(5, 3))
        expected = np.linalg.norm(a[:, None, :] - b[None, :, :], axis=2)
        assert np.allclose(pairwise_distances(a, b), expected)

    def test_self_distances_zero_diagonal(self):
        rng = np.random.default_rng(2)
        a = rng.normal(size=(6, 2))
        distances = pairwise_distances(a)
        assert np.allclose(np.diag(distances), 0.0, atol=1e-6)

    def test_chunking_gives_same_result(self):
        rng = np.random.default_rng(3)
        a = rng.normal(size=(50, 4))
        assert np.allclose(
            pairwise_distances(a, chunk_size=7), pairwise_distances(a, chunk_size=1000)
        )

    def test_dimension_mismatch(self):
        with pytest.raises(PerceptualSpaceError):
            pairwise_distances(np.zeros((3, 2)), np.zeros((3, 3)))

    def test_non_2d_input(self):
        with pytest.raises(PerceptualSpaceError):
            pairwise_distances(np.zeros(3))


class TestNearestNeighbors:
    def test_candidate_restriction(self, clustered_space):
        neighbors = nearest_neighbors(clustered_space, 1, k=3, candidate_ids=[21, 22, 23, 24])
        assert [n for n, _d in neighbors] == [21, 22, 23] or len(neighbors) == 3
        assert all(n >= 21 for n, _d in neighbors)

    def test_excludes_self_from_candidates(self, clustered_space):
        neighbors = nearest_neighbors(clustered_space, 1, k=5, candidate_ids=[1, 2, 3])
        assert all(n != 1 for n, _d in neighbors)

    def test_empty_candidates(self, clustered_space):
        assert nearest_neighbors(clustered_space, 1, k=3, candidate_ids=[1]) == []

    def test_defaults_to_whole_space(self, clustered_space):
        neighbors = nearest_neighbors(clustered_space, 1, k=3)
        assert len(neighbors) == 3
        # items 1-20 form a tight cluster, so neighbours come from it
        assert all(n <= 20 for n, _d in neighbors)


class TestNeighborhoodPurity:
    def test_clustered_labels_have_high_purity(self, clustered_space):
        labels = {i: i <= 20 for i in range(1, 41)}
        assert neighborhood_purity(clustered_space, labels, k=5) > 0.9

    def test_random_labels_have_lower_purity(self, clustered_space):
        rng = np.random.default_rng(4)
        labels = {i: bool(rng.random() < 0.5) for i in range(1, 41)}
        clustered = {i: i <= 20 for i in range(1, 41)}
        assert neighborhood_purity(clustered_space, labels, k=5) < neighborhood_purity(
            clustered_space, clustered, k=5
        )

    def test_no_labelled_items_raises(self, clustered_space):
        with pytest.raises(PerceptualSpaceError):
            neighborhood_purity(clustered_space, {}, k=5)

    def test_sample_restriction(self, clustered_space):
        labels = {i: i <= 20 for i in range(1, 41)}
        purity = neighborhood_purity(clustered_space, labels, k=3, sample_ids=[1, 2, 3])
        assert 0.0 <= purity <= 1.0
