"""Tests for the batched crowd-platform value source (query-engine bridge)."""

from __future__ import annotations

import pytest

from repro.crowd.platform import CrowdPlatform
from repro.crowd.sources import SimulatedCrowdValueSource
from repro.crowd.worker import WorkerPool
from repro.db import connect


@pytest.fixture
def truth() -> dict[int, bool]:
    return {i: i % 3 == 0 for i in range(1, 21)}


@pytest.fixture
def source(truth) -> SimulatedCrowdValueSource:
    return SimulatedCrowdValueSource(
        CrowdPlatform(seed=11),
        WorkerPool.build(n_honest=15, n_spammers=0, seed=3),
        truth={"is_comedy": truth},
        key_column="item_id",
        judgments_per_item=5,
        items_per_hit=10,
    )


class TestRequestValues:
    def test_one_dispatch_per_batch(self, source):
        items = [(rowid, {"item_id": rowid}) for rowid in range(1, 11)]
        values = source.request_values("is_comedy", items)
        assert source.dispatches == 1
        assert source.total_cost > 0
        assert source.total_judgments >= len(values)
        assert all(isinstance(v, bool) for v in values.values())

    def test_rows_without_key_are_skipped(self, source):
        items = [(1, {"item_id": 1}), (2, {"item_id": None}), (3, {})]
        values = source.request_values("is_comedy", items)
        assert set(values) <= {1}

    def test_empty_batch_dispatches_nothing(self, source):
        assert source.request_values("is_comedy", [(5, {"item_id": None})]) == {}
        assert source.dispatches == 0


class TestDeterminism:
    def make_source(self, truth, seed):
        return SimulatedCrowdValueSource(
            CrowdPlatform(seed=11),
            WorkerPool.build(n_honest=15, seed=3),
            truth={"is_comedy": truth},
            judgments_per_item=5,
            seed=seed,
        )

    def test_seeded_source_is_deterministic_across_runs(self, truth):
        items = [(rowid, {"item_id": rowid}) for rowid in range(1, 21)]
        runs = []
        for _ in range(2):
            source = self.make_source(truth, seed=42)
            runs.append(
                [source.request_values("is_comedy", items[i : i + 10]) for i in (0, 10)]
            )
        assert runs[0] == runs[1]

    def test_child_seeds_derive_from_request_identity(self, truth):
        # Child seeds hash the request (attribute + item ids), not the
        # dispatch ordinal: different batches get independent streams ...
        items = [(rowid, {"item_id": rowid}) for rowid in range(1, 21)]
        source = self.make_source(truth, seed=42)
        source.request_values("is_comedy", items[:10])
        source.request_values("is_comedy", items[10:])
        first, second = source.runs
        assert [j.worker_id for j in first.judgments] != [
            j.worker_id for j in second.judgments
        ]

    def test_identical_batches_reproduce_identical_answers(self, truth):
        # ... while re-asking the exact same batch deterministically
        # reproduces the same judgments, whatever order dispatches ran in.
        # This is the invariant concurrent acquisition rests on: answers
        # are a pure function of the request, not of scheduling.
        items = [(rowid, {"item_id": rowid}) for rowid in range(1, 11)]
        source = self.make_source(truth, seed=42)
        first_values = source.request_values("is_comedy", items)
        second_values = source.request_values("is_comedy", items)
        first, second = source.runs
        assert first_values == second_values
        assert [j.worker_id for j in first.judgments] == [
            j.worker_id for j in second.judgments
        ]


class TestQueryIntegration:
    def test_expansion_query_dispatches_coalesced_hit_groups(self, source, truth):
        conn = connect()
        conn.execute("CREATE TABLE movies (item_id INTEGER PRIMARY KEY, name TEXT)")
        conn.executemany(
            "INSERT INTO movies (item_id, name) VALUES (?, ?)",
            [(i, f"movie-{i}") for i in range(1, 21)],
        )
        conn.add_perceptual_column("movies", "is_comedy")
        conn.set_value_source(source, batch_size=10)

        (count,) = conn.execute(
            "SELECT count(*) FROM movies WHERE is_comedy = ?", (True,)
        ).fetchone()
        # 20 missing rows, batch_size 10 -> exactly 2 platform calls,
        # never one HIT dispatch per row.
        assert source.dispatches == 2
        # honest workers with majority vote recover most of the truth
        assert 0 < count <= 20
        filled = 20 - conn.missing_count("movies", "is_comedy")
        assert filled >= 15
        text = conn.explain_analyze("SELECT count(*) FROM movies WHERE is_comedy = true")
        assert "CrowdFill(batch_size=10)" in text
