"""Tests for quality-control policies (country filter, trusted pool, gold questions)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.crowd.hit import Answer, Judgment, TaskItem
from repro.crowd.quality_control import (
    CountryFilter,
    GoldQuestionPolicy,
    QualityControl,
    TrustedWorkerPolicy,
)
from repro.crowd.worker import SPAM_COUNTRIES, WorkerPool, make_expert_worker, make_honest_worker


def gold_item(item_id: int, answer: Answer) -> TaskItem:
    return TaskItem(item_id=item_id, is_gold=True, gold_answer=answer)


def judgment(item_id: int, worker_id: int, answer: Answer, *, is_gold: bool = True) -> Judgment:
    return Judgment(
        item_id=item_id,
        worker_id=worker_id,
        answer=answer,
        hit_id=1,
        timestamp_minutes=0.0,
        is_gold=is_gold,
    )


class TestCountryFilter:
    def test_excludes_countries(self):
        pool = WorkerPool.build(n_honest=10, n_spammers=10, seed=0)
        filtered = CountryFilter(SPAM_COUNTRIES).filter_pool(pool)
        assert all(worker.country not in SPAM_COUNTRIES for worker in filtered)

    def test_case_insensitive(self):
        pool = WorkerPool.build(n_honest=10, n_spammers=10, seed=0)
        filtered = CountryFilter([c.lower() for c in SPAM_COUNTRIES]).filter_pool(pool)
        assert all(worker.country not in SPAM_COUNTRIES for worker in filtered)


class TestTrustedWorkerPolicy:
    def test_keeps_only_trusted(self):
        pool = WorkerPool.build(n_honest=4, n_experts=2, seed=0)
        filtered = TrustedWorkerPolicy().filter_pool(pool)
        assert len(filtered) == 2
        assert all(worker.trusted for worker in filtered)


class TestGoldQuestionPolicy:
    def test_bans_after_max_errors(self):
        rng = np.random.default_rng(0)
        worker = make_honest_worker(1, rng)
        policy = GoldQuestionPolicy(max_gold_errors=2)
        item = gold_item(1, Answer.POSITIVE)
        policy.on_judgment(worker, item, judgment(1, worker.worker_id, Answer.NEGATIVE))
        assert not policy.is_banned(worker.worker_id)
        policy.on_judgment(worker, item, judgment(1, worker.worker_id, Answer.NEGATIVE))
        assert policy.is_banned(worker.worker_id)
        assert worker.worker_id in policy.banned_workers

    def test_correct_answers_do_not_count(self):
        rng = np.random.default_rng(0)
        worker = make_expert_worker(2, rng)
        policy = GoldQuestionPolicy(max_gold_errors=1)
        policy.on_judgment(worker, gold_item(1, Answer.POSITIVE), judgment(1, 2, Answer.POSITIVE))
        assert not policy.is_banned(2)

    def test_dont_know_does_not_count(self):
        rng = np.random.default_rng(0)
        worker = make_honest_worker(3, rng)
        policy = GoldQuestionPolicy(max_gold_errors=1)
        policy.on_judgment(worker, gold_item(1, Answer.POSITIVE), judgment(1, 3, Answer.DONT_KNOW))
        assert not policy.is_banned(3)

    def test_non_gold_items_ignored(self):
        rng = np.random.default_rng(0)
        worker = make_honest_worker(4, rng)
        policy = GoldQuestionPolicy(max_gold_errors=1)
        policy.on_judgment(
            worker, TaskItem(1), judgment(1, 4, Answer.NEGATIVE, is_gold=False)
        )
        assert not policy.is_banned(4)

    def test_error_counts_tracked_per_worker(self):
        rng = np.random.default_rng(0)
        first = make_honest_worker(5, rng)
        second = make_honest_worker(6, rng)
        policy = GoldQuestionPolicy(max_gold_errors=3)
        item = gold_item(1, Answer.POSITIVE)
        policy.on_judgment(first, item, judgment(1, 5, Answer.NEGATIVE))
        policy.on_judgment(second, item, judgment(1, 6, Answer.NEGATIVE))
        assert policy.gold_error_counts == {5: 1, 6: 1}


class TestCompositeQualityControl:
    def test_none_is_noop(self):
        pool = WorkerPool.build(n_honest=3, seed=0)
        control = QualityControl.none()
        assert control.filter_pool(pool) is pool
        assert not control.is_banned(1)

    def test_policies_compose(self):
        pool = WorkerPool.build(n_honest=5, n_spammers=5, n_experts=2, seed=0)
        control = QualityControl([CountryFilter(SPAM_COUNTRIES)]).add(TrustedWorkerPolicy())
        filtered = control.filter_pool(pool)
        assert all(worker.trusted for worker in filtered)
        assert len(control.policies) == 2

    def test_ban_from_any_policy(self):
        rng = np.random.default_rng(0)
        worker = make_honest_worker(9, rng)
        gold_policy = GoldQuestionPolicy(max_gold_errors=1)
        control = QualityControl([CountryFilter(["XX"]), gold_policy])
        control.on_judgment(worker, gold_item(1, Answer.POSITIVE), judgment(1, 9, Answer.NEGATIVE))
        assert control.is_banned(9)

    def test_pool_filter_that_empties_raises(self):
        pool = WorkerPool.build(n_honest=3, seed=0)
        control = QualityControl([TrustedWorkerPolicy()])
        with pytest.raises(ValueError):
            control.filter_pool(pool)
