"""Tests for the discrete-event crowd platform simulation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.crowd.aggregation import score_against_truth
from repro.crowd.hit import Answer, HITGroup, Question, make_task_items
from repro.crowd.platform import CrowdPlatform
from repro.crowd.quality_control import CountryFilter, GoldQuestionPolicy, QualityControl
from repro.crowd.worker import SPAM_COUNTRIES, WorkerPool
from repro.errors import NoWorkersAvailableError


@pytest.fixture(scope="module")
def truth() -> dict[int, bool]:
    rng = np.random.default_rng(5)
    return {i: bool(rng.random() < 0.3) for i in range(1, 101)}


@pytest.fixture(scope="module")
def group(truth) -> HITGroup:
    return HITGroup(
        question=Question("is_comedy", allow_dont_know=True),
        items=make_task_items(sorted(truth)),
        judgments_per_item=5,
        items_per_hit=10,
        payment_per_hit=0.02,
    )


@pytest.fixture(scope="module")
def pool() -> WorkerPool:
    return WorkerPool.build(n_honest=20, n_spammers=20, seed=3)


@pytest.fixture(scope="module")
def run(group, pool, truth):
    platform = CrowdPlatform(seed=11)
    return platform.run_group(group, pool, truth=truth)


class TestRunMechanics:
    def test_all_assignments_completed(self, run, group):
        assert run.assignments_requested == 10 * 5
        assert run.assignments_completed == run.assignments_requested

    def test_judgment_count_matches_assignments(self, run, group):
        assert len(run.judgments) == run.assignments_completed * group.items_per_hit

    def test_judgments_sorted_by_time(self, run):
        times = [j.timestamp_minutes for j in run.judgments]
        assert times == sorted(times)

    def test_each_item_receives_required_votes(self, run, truth):
        per_item = {}
        for j in run.judgments:
            per_item[j.item_id] = per_item.get(j.item_id, 0) + 1
        assert set(per_item) == set(truth)
        assert all(count == 5 for count in per_item.values())

    def test_distinct_workers_per_hit(self, run):
        seen: dict[tuple[int, int], int] = {}
        for j in run.judgments:
            key = (j.hit_id, j.worker_id)
            seen[key] = seen.get(key, 0) + 1
        # A worker may do a HIT only once, so each (hit, worker) pair appears
        # exactly items_per_hit times.
        assert all(count == 10 for count in seen.values())

    def test_cost_accounting(self, run):
        assert run.total_cost == pytest.approx(run.assignments_completed * 0.02)
        assert run.cost_until(run.completion_minutes) == pytest.approx(run.total_cost)
        assert run.cost_until(0.0) == 0.0

    def test_completion_time_positive(self, run):
        assert run.completion_minutes > 0
        assert run.judgments_per_minute() > 0

    def test_judgments_until_is_prefix(self, run):
        half = run.completion_minutes / 2
        prefix = run.judgments_until(half)
        assert len(prefix) < len(run.judgments)
        assert all(j.timestamp_minutes <= half for j in prefix)

    def test_reproducible_with_same_seed(self, group, pool, truth):
        first = CrowdPlatform(seed=42).run_group(group, pool, truth=truth)
        second = CrowdPlatform(seed=42).run_group(group, pool, truth=truth)
        assert first.total_cost == second.total_cost
        assert [j.answer for j in first.judgments] == [j.answer for j in second.judgments]

    def test_different_seeds_differ(self, group, pool, truth):
        first = CrowdPlatform(seed=1).run_group(group, pool, truth=truth)
        second = CrowdPlatform(seed=2).run_group(group, pool, truth=truth)
        assert [j.answer for j in first.judgments] != [j.answer for j in second.judgments]

    def test_invalid_interarrival(self):
        with pytest.raises(ValueError):
            CrowdPlatform(worker_interarrival_minutes=0)

    def test_worker_statistics(self, run):
        stats = run.worker_statistics()
        assert len(stats) == run.n_workers
        for entry in stats.values():
            assert 0.0 <= entry["claimed_knowledge_rate"] <= 1.0
            assert 0.0 <= entry["positive_rate"] <= 1.0


class TestQualityIntegration:
    def test_country_filter_improves_accuracy(self, group, pool, truth):
        platform = CrowdPlatform(seed=7)
        unfiltered = platform.run_group(group, pool, truth=truth)
        filtered = platform.run_group(
            group, pool, quality_control=QualityControl([CountryFilter(SPAM_COUNTRIES)]), truth=truth
        )
        unfiltered_report = score_against_truth(unfiltered.majority_outcomes(), truth)
        filtered_report = score_against_truth(filtered.majority_outcomes(), truth)
        assert filtered_report.accuracy_on_classified > unfiltered_report.accuracy_on_classified

    def test_all_workers_filtered_raises(self, group, truth):
        spam_only = WorkerPool.build(n_spammers=5, seed=1)
        platform = CrowdPlatform(seed=7)
        with pytest.raises(NoWorkersAvailableError):
            platform.run_group(
                group,
                spam_only,
                quality_control=QualityControl([CountryFilter(SPAM_COUNTRIES)]),
                truth=truth,
            )

    def test_gold_questions_ban_spammers(self, truth):
        gold_ids = list(truth)[:10]
        gold_answers = {i: Answer.from_bool(truth[i]) for i in gold_ids}
        group = HITGroup(
            question=Question("is_comedy", allow_dont_know=False, lookup_allowed=True),
            items=make_task_items(sorted(truth), gold_answers=gold_answers),
            judgments_per_item=5,
            items_per_hit=10,
        )
        # Spammers "look up" with only 60% accuracy, so they fail gold items.
        pool = WorkerPool.build(n_spammers=15, n_lookup=15, seed=2)
        policy = GoldQuestionPolicy(max_gold_errors=2)
        platform = CrowdPlatform(seed=3)
        run = platform.run_group(
            group, pool, quality_control=QualityControl([policy]), truth=truth
        )
        assert len(run.banned_workers) > 0

    def test_max_minutes_limits_run(self, group, pool, truth):
        platform = CrowdPlatform(seed=11)
        run = platform.run_group(group, pool, truth=truth, max_minutes=5.0)
        assert run.completion_minutes <= 5.0
        assert run.assignments_completed < run.assignments_requested

    def test_majority_labels_shortcut(self, run, truth):
        labels = run.majority_labels()
        outcomes = run.majority_outcomes()
        assert set(labels) == {i for i, o in outcomes.items() if o.label is not None}
