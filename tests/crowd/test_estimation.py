"""Tests for the streaming Chao92 species estimator.

The hypothesis properties pin down the estimator invariants the
``CrowdEnumerate`` stopping rule relies on: coverage stays a probability,
uniques only grow, duplicates never inflate the richness estimate, and the
f1/f2 fallback never divides by zero — for *any* observation sequence.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crowd.estimation import (
    Chao92Estimator,
    EnumerationStats,
    enumeration_attribute,
    enumeration_predicate,
    normalize_entity,
)

#: Entity keys drawn from a small alphabet so sequences contain duplicates.
KEYS = st.lists(st.integers(min_value=0, max_value=30).map(str), max_size=200)


class TestChao92Properties:
    @given(KEYS)
    @settings(max_examples=200, deadline=None)
    def test_coverage_is_a_probability(self, keys):
        estimator = Chao92Estimator()
        for key in keys:
            estimator.observe(key)
            assert 0.0 <= estimator.coverage() <= 1.0
            assert 0.0 <= estimator.est_coverage() <= 1.0

    @given(KEYS)
    @settings(max_examples=200, deadline=None)
    def test_unique_seen_is_monotone_nondecreasing(self, keys):
        estimator = Chao92Estimator()
        previous = 0
        for key in keys:
            estimator.observe(key)
            assert estimator.unique_seen >= previous
            previous = estimator.unique_seen

    @given(KEYS)
    @settings(max_examples=200, deadline=None)
    def test_duplicate_only_batches_never_raise_est_total(self, keys):
        estimator = Chao92Estimator()
        for key in keys:
            estimator.observe(key)
        if estimator.unique_seen == 0:
            return
        baseline = estimator.est_total()
        # Re-observe every already-seen key: pure duplicates must never
        # increase the richness estimate (they only firm up coverage).
        for key in set(keys):
            estimator.observe(key)
            assert estimator.est_total() <= baseline + 1e-9
            baseline = estimator.est_total()

    @given(KEYS)
    @settings(max_examples=200, deadline=None)
    def test_fallback_never_divides_by_zero_and_bounds_hold(self, keys):
        estimator = Chao92Estimator()
        for key in keys:
            estimator.observe(key)
        total = estimator.est_total()
        assert math.isfinite(total)
        # Richness can never be estimated below what was already seen.
        assert total >= estimator.unique_seen - 1e-9

    @given(st.integers(min_value=1, max_value=50))
    @settings(max_examples=50, deadline=None)
    def test_all_singletons_use_the_f1_f2_fallback_continuously(self, n):
        # n distinct observations: coverage 1 - f1/n == 0, so est_total
        # takes the bias-corrected f1/f2 fallback — which at the boundary
        # equals the D/C form's limit, D(D+1)/2.
        estimator = Chao92Estimator()
        estimator.observe_all(str(i) for i in range(n))
        assert estimator.singletons == n
        assert estimator.doubletons == 0
        assert estimator.coverage() == 0.0
        assert estimator.est_total() == pytest.approx(n * (n + 1) / 2)


class TestChao92Unit:
    def test_empty_estimator(self):
        estimator = Chao92Estimator()
        assert estimator.sample_size == 0
        assert estimator.unique_seen == 0
        assert estimator.est_total() == 0.0
        assert estimator.est_coverage() == 0.0

    def test_incremental_f1_f2_bookkeeping(self):
        estimator = Chao92Estimator()
        estimator.observe("a")
        assert (estimator.singletons, estimator.doubletons) == (1, 0)
        estimator.observe("a")
        assert (estimator.singletons, estimator.doubletons) == (0, 1)
        estimator.observe("a")
        assert (estimator.singletons, estimator.doubletons) == (0, 0)
        estimator.observe("b")
        assert (estimator.singletons, estimator.doubletons) == (1, 0)
        assert "a" in estimator and "b" in estimator and "c" not in estimator

    def test_known_chao92_value(self):
        # n=6, D=3, f1=1 (c), coverage = 1 - 1/6; est_total = 3 / (5/6) = 3.6
        estimator = Chao92Estimator()
        estimator.observe_all(["a", "a", "a", "b", "b", "c"])
        assert estimator.coverage() == pytest.approx(5 / 6)
        assert estimator.est_total() == pytest.approx(3.6)
        assert estimator.est_coverage() == pytest.approx(3 / 3.6)


class TestEntityResolution:
    def test_normalize_entity_collapses_case_and_whitespace(self):
        assert normalize_entity("  Ice   CREAM\t") == "ice cream"
        assert normalize_entity("ice cream") == normalize_entity("Ice Cream")

    def test_estimator_with_normalized_keys_deduplicates(self):
        estimator = Chao92Estimator()
        estimator.observe(normalize_entity("Mint Chip"))
        estimator.observe(normalize_entity("  mint   chip "))
        assert estimator.unique_seen == 1
        assert estimator.sample_size == 2


class TestEnumerationAttribute:
    def test_round_trip(self):
        attribute = enumeration_attribute("ice cream flavors")
        assert enumeration_predicate(attribute) == "ice cream flavors"

    def test_fill_attributes_are_not_enumerations(self):
        assert enumeration_predicate("humor") is None
        assert enumeration_predicate("__enum_humor") is None

    def test_stats_as_dict_is_json_safe(self):
        stats = EnumerationStats(
            predicate="p",
            rows_enumerated=3,
            unique_seen=3,
            est_total=4.5678949,
            est_coverage=0.656789,
            stopped_on="completeness",
            batches=2,
            sample_size=10,
            cache_hits=1,
            coalesced=0,
            cost=0.1234567,
            completeness_target=0.9,
            budget=None,
        )
        payload = stats.as_dict()
        assert payload["est_total"] == 4.5679
        assert payload["est_coverage"] == 0.6568
        assert payload["cost"] == 0.123457
        assert payload["stopped_on"] == "completeness"
