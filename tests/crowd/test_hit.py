"""Tests for HITs, HIT groups, questions and judgments."""

from __future__ import annotations

import pytest

from repro.crowd.hit import (
    HIT,
    Answer,
    HITGroup,
    Judgment,
    Question,
    TaskItem,
    make_task_items,
)
from repro.errors import HITConfigurationError


class TestAnswer:
    def test_from_bool(self):
        assert Answer.from_bool(True) is Answer.POSITIVE
        assert Answer.from_bool(False) is Answer.NEGATIVE

    def test_to_bool(self):
        assert Answer.POSITIVE.to_bool() is True
        assert Answer.NEGATIVE.to_bool() is False
        assert Answer.DONT_KNOW.to_bool() is None


class TestHIT:
    def test_empty_hit_rejected(self):
        with pytest.raises(HITConfigurationError):
            HIT(hit_id=1, question=Question("x"), items=(), payment=0.02)

    def test_negative_payment_rejected(self):
        with pytest.raises(HITConfigurationError):
            HIT(hit_id=1, question=Question("x"), items=(TaskItem(1),), payment=-1)

    def test_len_and_gold_items(self):
        items = (
            TaskItem(1),
            TaskItem(2, is_gold=True, gold_answer=Answer.POSITIVE),
        )
        hit = HIT(hit_id=1, question=Question("x"), items=items, payment=0.02)
        assert len(hit) == 2
        assert len(hit.gold_items) == 1
        assert hit.gold_items[0].item_id == 2


class TestHITGroup:
    def make_group(self, n_items: int = 25, **kwargs) -> HITGroup:
        defaults = dict(judgments_per_item=3, items_per_hit=10, payment_per_hit=0.02)
        defaults.update(kwargs)
        return HITGroup(question=Question("is_comedy"), items=make_task_items(range(1, n_items + 1)), **defaults)

    def test_build_hits_partitions_items(self):
        hits = self.make_group(25).build_hits()
        assert [len(hit) for hit in hits] == [10, 10, 5]
        assert {item.item_id for hit in hits for item in hit.items} == set(range(1, 26))

    def test_hit_ids_are_unique(self):
        hits = self.make_group(30).build_hits()
        assert len({hit.hit_id for hit in hits}) == len(hits)

    def test_totals(self):
        group = self.make_group(25)
        assert group.total_assignments == 3 * 3
        assert group.total_judgments == 25 * 3
        assert group.max_cost == pytest.approx(9 * 0.02)

    def test_invalid_configuration(self):
        with pytest.raises(HITConfigurationError):
            self.make_group(judgments_per_item=0)
        with pytest.raises(HITConfigurationError):
            self.make_group(items_per_hit=0)
        with pytest.raises(HITConfigurationError):
            HITGroup(question=Question("x"), items=[])

    def test_make_task_items_with_gold(self):
        items = make_task_items([1, 2, 3], gold_answers={2: Answer.NEGATIVE})
        assert items[1].is_gold
        assert items[1].gold_answer is Answer.NEGATIVE
        assert not items[0].is_gold

    def test_make_task_items_with_payloads(self):
        items = make_task_items([1], payloads={1: {"name": "Rocky"}})
        assert items[0].payload == {"name": "Rocky"}


class TestJudgment:
    def test_informative(self):
        keep = Judgment(item_id=1, worker_id=2, answer=Answer.POSITIVE, hit_id=1, timestamp_minutes=1.0)
        skip = Judgment(item_id=1, worker_id=2, answer=Answer.DONT_KNOW, hit_id=1, timestamp_minutes=1.0)
        assert keep.informative
        assert not skip.informative
