"""Tests for the per-worker accuracy tracker and its estimator."""

from __future__ import annotations

import threading

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.crowd.worker_quality import (
    ACCURACY_CEILING,
    ACCURACY_FLOOR,
    DEFAULT_PRIOR_CORRECT,
    DEFAULT_PRIOR_INCORRECT,
    WorkerQualityTracker,
    estimate_accuracy,
)


class TestEstimateAccuracy:
    def test_cold_start_is_the_prior_mean(self):
        expected = DEFAULT_PRIOR_CORRECT / (DEFAULT_PRIOR_CORRECT + DEFAULT_PRIOR_INCORRECT)
        assert estimate_accuracy(0, 0) == pytest.approx(expected)

    def test_evidence_moves_the_posterior(self):
        assert estimate_accuracy(10, 0) > estimate_accuracy(0, 0)
        assert estimate_accuracy(0, 10) < estimate_accuracy(0, 0)

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError):
            estimate_accuracy(-1, 0)
        with pytest.raises(ValueError):
            estimate_accuracy(0, -0.5)

    def test_clamped_into_open_interval(self):
        assert estimate_accuracy(1e9, 0) == ACCURACY_CEILING
        assert estimate_accuracy(0, 1e9) == ACCURACY_FLOOR


class TestTrackerBasics:
    def test_unseen_worker_gets_prior_mean(self):
        tracker = WorkerQualityTracker()
        assert tracker.accuracy_of(99) == pytest.approx(0.7)
        assert tracker.n_workers == 0

    def test_gold_observations_update_counts(self):
        tracker = WorkerQualityTracker()
        tracker.observe_gold(1, True)
        tracker.observe_gold(1, True)
        tracker.observe_gold(1, False)
        assert tracker.totals() == {1: (2.0, 1.0)}
        assert tracker.n_workers == 1

    def test_agreement_is_downweighted(self):
        gold, agree = WorkerQualityTracker(), WorkerQualityTracker(agreement_weight=0.5)
        gold.observe_gold(1, True)
        agree.observe_agreement(1, True)
        assert agree.accuracy_of(1) < gold.accuracy_of(1)
        assert agree.totals() == {1: (0.5, 0.0)}

    def test_mean_accuracy_over_subset(self):
        tracker = WorkerQualityTracker()
        tracker.observe_gold(1, True)
        tracker.observe_gold(2, False)
        subset = tracker.mean_accuracy([1])
        assert subset == pytest.approx(tracker.accuracy_of(1))
        both = tracker.mean_accuracy()
        assert both == pytest.approx(
            (tracker.accuracy_of(1) + tracker.accuracy_of(2)) / 2
        )

    def test_mean_accuracy_of_empty_tracker_is_prior(self):
        assert WorkerQualityTracker().mean_accuracy() == pytest.approx(0.7)

    def test_invalid_construction_rejected(self):
        with pytest.raises(ValueError):
            WorkerQualityTracker(prior_correct=0)
        with pytest.raises(ValueError):
            WorkerQualityTracker(agreement_weight=0.0)
        with pytest.raises(ValueError):
            WorkerQualityTracker(agreement_weight=1.5)

    def test_zero_weight_observation_rejected(self):
        tracker = WorkerQualityTracker()
        with pytest.raises(ValueError):
            tracker.observe_gold(1, True, weight=0.0)


class TestDurabilityHooks:
    def test_flush_journals_absolute_totals_of_dirty_workers_only(self):
        seen: list[dict[int, tuple[float, float]]] = []
        tracker = WorkerQualityTracker(journal=seen.append)
        tracker.observe_gold(1, True)
        tracker.observe_gold(2, False)
        tracker.flush()
        assert seen == [{1: (1.0, 0.0), 2: (0.0, 1.0)}]
        tracker.observe_gold(1, True)
        tracker.flush()
        # Only worker 1 was touched since the last flush — and the totals
        # are absolute, not deltas.
        assert seen[1] == {1: (2.0, 0.0)}

    def test_flush_without_dirt_or_journal_is_a_no_op(self):
        seen: list[dict[int, tuple[float, float]]] = []
        tracker = WorkerQualityTracker(journal=seen.append)
        tracker.flush()
        assert seen == []
        WorkerQualityTracker().flush()  # no journal: never raises

    def test_journal_runs_outside_the_tracker_lock(self):
        tracker = WorkerQualityTracker()

        def journal(_totals):
            # Re-entering the tracker from the journal callback must not
            # deadlock (threading.Lock is not re-entrant).
            tracker.accuracy_of(1)

        tracker.journal = journal
        tracker.observe_gold(1, True)
        done = threading.Event()
        thread = threading.Thread(target=lambda: (tracker.flush(), done.set()))
        thread.start()
        thread.join(timeout=5.0)
        assert done.is_set(), "journal callback deadlocked against the tracker lock"

    def test_load_totals_warm_starts_last_write_wins(self):
        tracker = WorkerQualityTracker()
        tracker.observe_gold(1, False)
        tracker.load_totals({1: (5.0, 0.0), 2: (0.0, 3.0)})
        assert tracker.totals() == {1: (5.0, 0.0), 2: (0.0, 3.0)}
        assert tracker.accuracy_of(1) > 0.7 > tracker.accuracy_of(2)

    def test_load_totals_rejects_negative_counts(self):
        with pytest.raises(ValueError):
            WorkerQualityTracker().load_totals({1: (-1.0, 0.0)})


class TestTrackerProperties:
    @given(
        correct=st.integers(min_value=0, max_value=500),
        incorrect=st.integers(min_value=0, max_value=500),
    )
    def test_accuracy_strictly_inside_unit_interval(self, correct, incorrect):
        tracker = WorkerQualityTracker()
        for _ in range(correct):
            tracker.observe_gold(7, True)
        for _ in range(incorrect):
            tracker.observe_gold(7, False)
        accuracy = tracker.accuracy_of(7)
        assert 0.0 < accuracy < 1.0

    @given(
        outcomes=st.lists(st.booleans(), max_size=60),
        extra_correct=st.integers(min_value=1, max_value=10),
    )
    def test_monotone_in_gold_correctness(self, outcomes, extra_correct):
        base, better = WorkerQualityTracker(), WorkerQualityTracker()
        for outcome in outcomes:
            base.observe_gold(1, outcome)
            better.observe_gold(1, outcome)
        for _ in range(extra_correct):
            better.observe_gold(1, True)
        assert better.accuracy_of(1) >= base.accuracy_of(1)
        # ... and the same number of *incorrect* observations moves it down.
        worse = WorkerQualityTracker()
        for outcome in outcomes:
            worse.observe_gold(1, outcome)
        for _ in range(extra_correct):
            worse.observe_gold(1, False)
        assert worse.accuracy_of(1) <= base.accuracy_of(1)

    @given(
        observations=st.lists(
            st.tuples(st.integers(min_value=1, max_value=5), st.booleans()),
            max_size=60,
        ),
        seed=st.randoms(use_true_random=False),
    )
    def test_order_independent_over_permutations(self, observations, seed):
        shuffled = list(observations)
        seed.shuffle(shuffled)
        a, b = WorkerQualityTracker(), WorkerQualityTracker()
        for worker_id, outcome in observations:
            a.observe_gold(worker_id, outcome)
        for worker_id, outcome in shuffled:
            b.observe_gold(worker_id, outcome)
        assert a.totals() == b.totals()
        for worker_id in {worker_id for worker_id, _ in observations}:
            assert a.accuracy_of(worker_id) == pytest.approx(b.accuracy_of(worker_id))
