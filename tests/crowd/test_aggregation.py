"""Tests for judgment aggregation (majority vote, weighted vote, scoring)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.crowd.aggregation import (
    MajorityVote,
    WeightedVote,
    group_judgments,
    score_against_truth,
)
from repro.crowd.hit import Answer, Judgment


def judgment(item_id: int, worker_id: int, answer: Answer) -> Judgment:
    return Judgment(
        item_id=item_id,
        worker_id=worker_id,
        answer=answer,
        hit_id=1,
        timestamp_minutes=1.0,
    )


def votes(item_id: int, positives: int, negatives: int, dont_know: int = 0) -> list[Judgment]:
    result = []
    worker = 1
    for _ in range(positives):
        result.append(judgment(item_id, worker, Answer.POSITIVE))
        worker += 1
    for _ in range(negatives):
        result.append(judgment(item_id, worker, Answer.NEGATIVE))
        worker += 1
    for _ in range(dont_know):
        result.append(judgment(item_id, worker, Answer.DONT_KNOW))
        worker += 1
    return result


class TestMajorityVote:
    def test_clear_majorities(self):
        outcomes = MajorityVote().aggregate(votes(1, 6, 4) + votes(2, 1, 9))
        assert outcomes[1].label is True
        assert outcomes[2].label is False

    def test_tie_is_unclassified(self):
        outcome = MajorityVote().aggregate_item(1, votes(1, 5, 5))
        assert outcome.label is None
        assert not outcome.classified

    def test_dont_know_is_ignored(self):
        outcome = MajorityVote().aggregate_item(1, votes(1, 2, 1, dont_know=7))
        assert outcome.label is True
        assert outcome.dont_know_votes == 7

    def test_only_dont_know_is_unclassified(self):
        outcome = MajorityVote().aggregate_item(1, votes(1, 0, 0, dont_know=10))
        assert outcome.label is None

    def test_minimum_votes(self):
        aggregator = MajorityVote(minimum_votes=3)
        assert aggregator.aggregate_item(1, votes(1, 2, 0)).label is None
        assert aggregator.aggregate_item(1, votes(1, 3, 0)).label is True

    def test_minimum_votes_validation(self):
        with pytest.raises(ValueError):
            MajorityVote(minimum_votes=0)

    def test_labels_only_returns_classified(self):
        labels = MajorityVote().labels(votes(1, 3, 1) + votes(2, 2, 2))
        assert labels == {1: True}

    def test_margin_and_total(self):
        outcome = MajorityVote().aggregate_item(1, votes(1, 6, 2, dont_know=1))
        assert outcome.margin == 4
        assert outcome.total_votes == 9

    def test_group_judgments(self):
        grouped = group_judgments(votes(1, 1, 0) + votes(2, 0, 1))
        assert set(grouped) == {1, 2}


class TestWeightedVote:
    def test_weights_can_flip_decision(self):
        judgments = votes(1, 2, 1)
        unweighted = MajorityVote().aggregate_item(1, judgments)
        assert unweighted.label is True
        # The single negative voter (worker 3) gets a huge weight.
        weighted = WeightedVote({3: 10.0}).aggregate_item(1, judgments)
        assert weighted.label is False

    def test_default_weight(self):
        aggregator = WeightedVote(default_weight=2.0)
        assert aggregator.weight_of(42) == 2.0

    def test_negative_default_weight_rejected(self):
        with pytest.raises(ValueError):
            WeightedVote(default_weight=-1.0)

    def test_equal_weights_match_majority(self):
        judgments = votes(1, 4, 2, dont_know=2)
        weighted = WeightedVote().aggregate(judgments)
        majority = MajorityVote().aggregate(judgments)
        assert weighted[1].label == majority[1].label

    def test_tie_on_weights_is_unclassified(self):
        assert WeightedVote().aggregate_item(1, votes(1, 2, 2)).label is None


class TestScoring:
    def test_score_against_truth(self):
        outcomes = MajorityVote().aggregate(votes(1, 5, 1) + votes(2, 1, 5) + votes(3, 3, 3))
        truth = {1: True, 2: True, 3: False, 4: False}
        report = score_against_truth(outcomes, truth)
        assert report.n_items == 4
        assert report.n_classified == 2
        assert report.n_correct == 1
        assert report.coverage == pytest.approx(0.5)
        assert report.accuracy_on_classified == pytest.approx(0.5)
        assert report.accuracy_overall == pytest.approx(0.25)

    def test_empty_truth(self):
        report = score_against_truth({}, {})
        assert report.coverage == 0.0
        assert report.accuracy_on_classified == 0.0


class TestMajorityVoteProperties:
    @given(st.integers(0, 20), st.integers(0, 20), st.integers(0, 20))
    def test_label_follows_strict_majority(self, positives, negatives, dont_know):
        outcome = MajorityVote().aggregate_item(1, votes(1, positives, negatives, dont_know))
        if positives > negatives:
            assert outcome.label is True
        elif negatives > positives:
            assert outcome.label is False
        else:
            assert outcome.label is None

    @given(st.integers(0, 20), st.integers(0, 20))
    def test_vote_counts_preserved(self, positives, negatives):
        outcome = MajorityVote().aggregate_item(1, votes(1, positives, negatives))
        assert outcome.positive_votes == positives
        assert outcome.negative_votes == negatives
