"""Tests for judgment aggregation (majority vote, weighted vote, scoring)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.crowd.aggregation import (
    AccuracyWeightedVote,
    MajorityVote,
    WeightedVote,
    group_judgments,
    score_against_truth,
)
from repro.crowd.hit import Answer, Judgment
from repro.crowd.worker_quality import WorkerQualityTracker


def judgment(item_id: int, worker_id: int, answer: Answer) -> Judgment:
    return Judgment(
        item_id=item_id,
        worker_id=worker_id,
        answer=answer,
        hit_id=1,
        timestamp_minutes=1.0,
    )


def votes(item_id: int, positives: int, negatives: int, dont_know: int = 0) -> list[Judgment]:
    result = []
    worker = 1
    for _ in range(positives):
        result.append(judgment(item_id, worker, Answer.POSITIVE))
        worker += 1
    for _ in range(negatives):
        result.append(judgment(item_id, worker, Answer.NEGATIVE))
        worker += 1
    for _ in range(dont_know):
        result.append(judgment(item_id, worker, Answer.DONT_KNOW))
        worker += 1
    return result


class TestMajorityVote:
    def test_clear_majorities(self):
        outcomes = MajorityVote().aggregate(votes(1, 6, 4) + votes(2, 1, 9))
        assert outcomes[1].label is True
        assert outcomes[2].label is False

    def test_tie_is_unclassified(self):
        outcome = MajorityVote().aggregate_item(1, votes(1, 5, 5))
        assert outcome.label is None
        assert not outcome.classified

    def test_dont_know_is_ignored(self):
        outcome = MajorityVote().aggregate_item(1, votes(1, 2, 1, dont_know=7))
        assert outcome.label is True
        assert outcome.dont_know_votes == 7

    def test_only_dont_know_is_unclassified(self):
        outcome = MajorityVote().aggregate_item(1, votes(1, 0, 0, dont_know=10))
        assert outcome.label is None

    def test_minimum_votes(self):
        aggregator = MajorityVote(minimum_votes=3)
        assert aggregator.aggregate_item(1, votes(1, 2, 0)).label is None
        assert aggregator.aggregate_item(1, votes(1, 3, 0)).label is True

    def test_minimum_votes_validation(self):
        with pytest.raises(ValueError):
            MajorityVote(minimum_votes=0)

    def test_quorum_counts_informative_votes_only(self):
        # Regression pin: a pile of "don't know" answers must never
        # satisfy the quorum — only positive/negative votes count toward
        # minimum_votes.
        aggregator = MajorityVote(minimum_votes=3)
        assert aggregator.aggregate_item(1, votes(1, 2, 0, dont_know=10)).label is None
        assert aggregator.aggregate_item(1, votes(1, 2, 1, dont_know=10)).label is True

    def test_labels_only_returns_classified(self):
        labels = MajorityVote().labels(votes(1, 3, 1) + votes(2, 2, 2))
        assert labels == {1: True}

    def test_margin_and_total(self):
        outcome = MajorityVote().aggregate_item(1, votes(1, 6, 2, dont_know=1))
        assert outcome.margin == 4
        assert outcome.total_votes == 9

    def test_group_judgments(self):
        grouped = group_judgments(votes(1, 1, 0) + votes(2, 0, 1))
        assert set(grouped) == {1, 2}


class TestWeightedVote:
    def test_weights_can_flip_decision(self):
        judgments = votes(1, 2, 1)
        unweighted = MajorityVote().aggregate_item(1, judgments)
        assert unweighted.label is True
        # The single negative voter (worker 3) gets a huge weight.
        weighted = WeightedVote({3: 10.0}).aggregate_item(1, judgments)
        assert weighted.label is False

    def test_default_weight(self):
        aggregator = WeightedVote(default_weight=2.0)
        assert aggregator.weight_of(42) == 2.0

    def test_negative_default_weight_rejected(self):
        with pytest.raises(ValueError):
            WeightedVote(default_weight=-1.0)

    def test_equal_weights_match_majority(self):
        judgments = votes(1, 4, 2, dont_know=2)
        weighted = WeightedVote().aggregate(judgments)
        majority = MajorityVote().aggregate(judgments)
        assert weighted[1].label == majority[1].label

    def test_tie_on_weights_is_unclassified(self):
        assert WeightedVote().aggregate_item(1, votes(1, 2, 2)).label is None


class TestAccuracyWeightedVote:
    def test_cold_start_matches_flat_majority(self):
        # With no per-worker knowledge every weight is equal, so the label
        # is exactly the flat majority label on any vote split.
        for positives, negatives, dont_know in [(3, 1, 0), (1, 3, 2), (2, 2, 1), (0, 0, 4)]:
            judgments = votes(1, positives, negatives, dont_know)
            weighted = AccuracyWeightedVote().aggregate_item(1, judgments)
            flat = MajorityVote().aggregate_item(1, judgments)
            assert weighted.label == flat.label

    def test_tracker_weights_can_flip_decision(self):
        tracker = WorkerQualityTracker()
        # Workers 1 and 2 (voting POSITIVE) are known-bad; worker 3
        # (voting NEGATIVE) is known-good.
        for _ in range(20):
            tracker.observe_gold(1, False)
            tracker.observe_gold(2, False)
            tracker.observe_gold(3, True)
        judgments = votes(1, 2, 1)
        assert MajorityVote().aggregate_item(1, judgments).label is True
        outcome = AccuracyWeightedVote(tracker).aggregate_item(1, judgments)
        assert outcome.label is False
        assert outcome.confidence > 0.5

    def test_confidence_grows_with_agreement(self):
        vote = AccuracyWeightedVote()
        few = vote.aggregate_item(1, votes(1, 2, 0))
        many = vote.aggregate_item(1, votes(1, 5, 0))
        assert many.confidence > few.confidence > 0.5

    def test_tie_has_half_confidence(self):
        outcome = AccuracyWeightedVote().aggregate_item(1, votes(1, 2, 2))
        assert outcome.label is None
        assert outcome.confidence == pytest.approx(0.5)

    def test_quorum_counts_informative_votes_only(self):
        # Same quorum semantics as MajorityVote: "don't know" answers do
        # not count toward minimum_votes, and a missed quorum reports
        # zero confidence.
        vote = AccuracyWeightedVote(minimum_votes=3)
        outcome = vote.aggregate_item(1, votes(1, 2, 0, dont_know=10))
        assert outcome.label is None
        assert outcome.confidence == 0.0
        assert vote.aggregate_item(1, votes(1, 2, 1, dont_know=10)).label is True

    def test_accuracy_sources(self):
        mapping = AccuracyWeightedVote({1: 0.95}, default_accuracy=0.6)
        assert mapping.accuracy_of(1) == pytest.approx(0.95)
        assert mapping.accuracy_of(2) == pytest.approx(0.6)
        fn = AccuracyWeightedVote(lambda worker_id: 0.8)
        assert fn.accuracy_of(7) == pytest.approx(0.8)
        with pytest.raises(TypeError):
            AccuracyWeightedVote(42)

    def test_extreme_estimates_are_clamped(self):
        vote = AccuracyWeightedVote({1: 1.0, 2: 0.0})
        assert 0.0 < vote.accuracy_of(1) < 1.0
        assert 0.0 < vote.accuracy_of(2) < 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            AccuracyWeightedVote(minimum_votes=0)
        with pytest.raises(ValueError):
            AccuracyWeightedVote(default_accuracy=1.0)

    def test_labels_only_returns_classified(self):
        labels = AccuracyWeightedVote().labels(votes(1, 3, 1) + votes(2, 2, 2))
        assert labels == {1: True}

    @given(st.integers(0, 15), st.integers(0, 15), st.integers(0, 15))
    def test_cold_start_equivalence_property(self, positives, negatives, dont_know):
        judgments = votes(1, positives, negatives, dont_know)
        weighted = AccuracyWeightedVote().aggregate_item(1, judgments)
        flat = MajorityVote().aggregate_item(1, judgments)
        assert weighted.label == flat.label
        assert 0.0 <= weighted.confidence <= 1.0


class TestScoring:
    def test_score_against_truth(self):
        outcomes = MajorityVote().aggregate(votes(1, 5, 1) + votes(2, 1, 5) + votes(3, 3, 3))
        truth = {1: True, 2: True, 3: False, 4: False}
        report = score_against_truth(outcomes, truth)
        assert report.n_items == 4
        assert report.n_classified == 2
        assert report.n_correct == 1
        assert report.coverage == pytest.approx(0.5)
        assert report.accuracy_on_classified == pytest.approx(0.5)
        assert report.accuracy_overall == pytest.approx(0.25)

    def test_empty_truth(self):
        report = score_against_truth({}, {})
        assert report.coverage == 0.0
        assert report.accuracy_on_classified == 0.0


class TestMajorityVoteProperties:
    @given(st.integers(0, 20), st.integers(0, 20), st.integers(0, 20))
    def test_label_follows_strict_majority(self, positives, negatives, dont_know):
        outcome = MajorityVote().aggregate_item(1, votes(1, positives, negatives, dont_know))
        if positives > negatives:
            assert outcome.label is True
        elif negatives > positives:
            assert outcome.label is False
        else:
            assert outcome.label is None

    @given(st.integers(0, 20), st.integers(0, 20))
    def test_vote_counts_preserved(self, positives, negatives):
        outcome = MajorityVote().aggregate_item(1, votes(1, positives, negatives))
        assert outcome.positive_votes == positives
        assert outcome.negative_votes == negatives
