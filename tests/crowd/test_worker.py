"""Tests for simulated worker behaviour and worker pools."""

from __future__ import annotations

import numpy as np
import pytest

from repro.crowd.hit import Answer, Question, TaskItem
from repro.crowd.worker import (
    SPAM_COUNTRIES,
    WorkerArchetype,
    WorkerPool,
    WorkerProfile,
    make_expert_worker,
    make_honest_worker,
    make_lookup_worker,
    make_spam_worker,
)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(0)


def judge_many(worker: WorkerProfile, question: Question, truth: bool, rng, n: int = 400):
    item = TaskItem(1)
    return [worker.judge(item, question, Answer.from_bool(truth), rng) for _ in range(n)]


class TestWorkerProfileValidation:
    def test_probability_bounds(self):
        with pytest.raises(ValueError):
            WorkerProfile(worker_id=1, archetype=WorkerArchetype.HONEST, accuracy=1.5)
        with pytest.raises(ValueError):
            WorkerProfile(worker_id=1, archetype=WorkerArchetype.HONEST, knowledge_prob=-0.1)

    def test_speed_bounds(self):
        with pytest.raises(ValueError):
            WorkerProfile(worker_id=1, archetype=WorkerArchetype.HONEST, minutes_per_hit=0)
        with pytest.raises(ValueError):
            WorkerProfile(worker_id=1, archetype=WorkerArchetype.HONEST, session_hits=0)

    def test_claimed_knowledge_defaults_to_knowledge(self):
        worker = WorkerProfile(worker_id=1, archetype=WorkerArchetype.HONEST, knowledge_prob=0.3)
        assert worker.claimed_knowledge_prob == pytest.approx(0.3)


class TestWorkerBehaviour:
    def test_honest_worker_often_says_dont_know(self, rng):
        worker = make_honest_worker(1, rng)
        question = Question("is_comedy", allow_dont_know=True)
        answers = judge_many(worker, question, True, rng)
        dont_know_rate = answers.count(Answer.DONT_KNOW) / len(answers)
        assert dont_know_rate > 0.5

    def test_spammer_rarely_says_dont_know(self, rng):
        worker = make_spam_worker(1, rng)
        question = Question("is_comedy", allow_dont_know=True)
        answers = judge_many(worker, question, True, rng)
        dont_know_rate = answers.count(Answer.DONT_KNOW) / len(answers)
        assert dont_know_rate < 0.15

    def test_spammer_answers_do_not_track_truth(self, rng):
        worker = make_spam_worker(1, rng)
        question = Question("is_comedy", allow_dont_know=True)
        positive_when_true = judge_many(worker, question, True, rng).count(Answer.POSITIVE)
        positive_when_false = judge_many(worker, question, False, rng).count(Answer.POSITIVE)
        assert abs(positive_when_true - positive_when_false) < 120

    def test_lookup_worker_is_accurate(self, rng):
        worker = make_lookup_worker(1, rng)
        question = Question("is_comedy", allow_dont_know=False, lookup_allowed=True)
        answers = judge_many(worker, question, True, rng)
        accuracy = answers.count(Answer.POSITIVE) / len(answers)
        assert accuracy > 0.85

    def test_expert_is_trusted_and_accurate(self, rng):
        worker = make_expert_worker(1, rng)
        assert worker.trusted
        question = Question("is_comedy", allow_dont_know=True)
        answers = judge_many(worker, question, False, rng)
        informative = [a for a in answers if a is not Answer.DONT_KNOW]
        accuracy = informative.count(Answer.NEGATIVE) / len(informative)
        assert accuracy > 0.85

    def test_no_dont_know_when_not_allowed(self, rng):
        worker = make_honest_worker(1, rng)
        question = Question("is_comedy", allow_dont_know=False, lookup_allowed=True)
        answers = judge_many(worker, question, True, rng, n=100)
        assert Answer.DONT_KNOW not in answers

    def test_durations_positive_and_scale_with_speed(self, rng):
        fast = WorkerProfile(worker_id=1, archetype=WorkerArchetype.SPAMMER, minutes_per_hit=0.5)
        slow = WorkerProfile(worker_id=2, archetype=WorkerArchetype.LOOKUP, minutes_per_hit=5.0)
        fast_mean = np.mean([fast.draw_hit_duration(rng) for _ in range(200)])
        slow_mean = np.mean([slow.draw_hit_duration(rng) for _ in range(200)])
        assert fast_mean > 0
        assert slow_mean > 3 * fast_mean

    def test_session_length_positive(self, rng):
        worker = make_honest_worker(1, rng)
        assert all(worker.draw_session_length(rng) >= 1 for _ in range(50))


class TestWorkerPool:
    def test_build_counts(self):
        pool = WorkerPool.build(n_honest=5, n_spammers=3, n_lookup=2, n_experts=1, seed=1)
        counts = pool.archetype_counts()
        assert counts[WorkerArchetype.HONEST] == 5
        assert counts[WorkerArchetype.SPAMMER] == 3
        assert counts[WorkerArchetype.LOOKUP] == 2
        assert counts[WorkerArchetype.EXPERT] == 1
        assert len(pool) == 11

    def test_empty_pool_rejected(self):
        with pytest.raises(ValueError):
            WorkerPool([])

    def test_worker_ids_unique(self):
        pool = WorkerPool.build(n_honest=10, n_spammers=10, seed=2)
        ids = [worker.worker_id for worker in pool]
        assert len(set(ids)) == len(ids)

    def test_without_countries_removes_spam_countries(self):
        pool = WorkerPool.build(n_honest=10, n_spammers=10, seed=3)
        filtered = pool.without_countries(SPAM_COUNTRIES)
        assert all(worker.country not in SPAM_COUNTRIES for worker in filtered)
        assert len(filtered) < len(pool)

    def test_only_trusted(self):
        pool = WorkerPool.build(n_honest=5, n_experts=3, seed=4)
        trusted = pool.only_trusted()
        assert len(trusted) == 3
        assert all(worker.trusted for worker in trusted)

    def test_filter_that_removes_everyone_raises(self):
        pool = WorkerPool.build(n_honest=3, seed=5)
        with pytest.raises(ValueError):
            pool.filter(lambda worker: False)

    def test_arrival_order_is_permutation_and_deterministic(self):
        pool = WorkerPool.build(n_honest=8, seed=6)
        first = pool.arrival_order(seed=1)
        second = pool.arrival_order(seed=1)
        assert [w.worker_id for w in first] == [w.worker_id for w in second]
        assert sorted(w.worker_id for w in first) == sorted(w.worker_id for w in pool)

    def test_reproducible_build(self):
        first = WorkerPool.build(n_honest=5, n_spammers=5, seed=9)
        second = WorkerPool.build(n_honest=5, n_spammers=5, seed=9)
        assert [w.accuracy for w in first] == [w.accuracy for w in second]
