"""Tests for the concurrent acquisition runtime and its answer cache."""

from __future__ import annotations

import threading
import time
from typing import Any, Sequence

import pytest

from repro.crowd.runtime import AcquisitionRuntime, AnswerCache


class RecordingSource:
    """ValueSource that counts calls and can block mid-dispatch."""

    def __init__(self, value: Any = 1.0, latency: float = 0.0) -> None:
        self.value = value
        self.latency = latency
        self.calls: list[tuple[str, tuple[int, ...]]] = []
        self._lock = threading.Lock()
        self.release = threading.Event()
        self.release.set()  # blocks only when a test clears it
        self.entered = threading.Event()

    def request_values(
        self, attribute: str, items: Sequence[tuple[int, dict[str, Any]]]
    ) -> dict[int, Any]:
        with self._lock:
            self.calls.append((attribute, tuple(rowid for rowid, _row in items)))
        self.entered.set()
        if self.latency:
            time.sleep(self.latency)
        assert self.release.wait(timeout=10.0), "test forgot to release the source"
        return {rowid: self.value for rowid, _row in items}


def items_for(rowids: Sequence[int]) -> list[tuple[int, dict[str, Any]]]:
    return [(rowid, {"item_id": rowid}) for rowid in rowids]


class TestAnswerCache:
    def test_put_get_roundtrip_and_miss(self):
        cache = AnswerCache(capacity=4)
        assert cache.get("movies", "humor", 1) == (False, None)
        cache.put("movies", "humor", 1, 0.7)
        assert cache.get("Movies", "Humor", 1) == (True, 0.7)  # case-insensitive
        stats = cache.stats()
        assert (stats.hits, stats.misses, stats.size) == (1, 1, 1)

    def test_missing_values_are_never_cached(self):
        from repro.db.types import MISSING

        cache = AnswerCache(capacity=4)
        cache.put("movies", "humor", 1, MISSING)
        assert len(cache) == 0

    def test_capacity_eviction_is_lru(self):
        cache = AnswerCache(capacity=2)
        cache.put("t", "a", 1, "one")
        cache.put("t", "a", 2, "two")
        cache.get("t", "a", 1)  # refresh 1 -> 2 becomes least recently used
        cache.put("t", "a", 3, "three")
        assert cache.get("t", "a", 2) == (False, None)  # evicted
        assert cache.get("t", "a", 1) == (True, "one")
        assert cache.get("t", "a", 3) == (True, "three")
        assert cache.stats().evictions == 1

    def test_ttl_expiry_looks_like_a_miss(self):
        clock = FakeClock()
        cache = AnswerCache(capacity=4, ttl_seconds=10.0, clock=clock)
        cache.put("t", "a", 1, "fresh")
        assert cache.get("t", "a", 1) == (True, "fresh")
        clock.advance(9.0)
        assert cache.get("t", "a", 1) == (True, "fresh")
        clock.advance(1.0)  # exactly at the TTL boundary: expired
        assert cache.get("t", "a", 1) == (False, None)
        stats = cache.stats()
        assert stats.expirations == 1
        assert stats.size == 0

    def test_invalidate_cell_and_table(self):
        cache = AnswerCache(capacity=8)
        cache.put("t", "a", 1, "x")
        cache.put("t", "a", 2, "y")
        cache.put("u", "a", 1, "z")
        assert cache.invalidate("t", "a", 1)
        assert not cache.invalidate("t", "a", 99)  # absent: no-op
        assert cache.invalidate_table("t") == 1
        assert len(cache) == 1
        assert cache.get("u", "a", 1) == (True, "z")

    def test_zero_capacity_disables_caching(self):
        cache = AnswerCache(capacity=0)
        cache.put("t", "a", 1, "x")
        assert cache.get("t", "a", 1) == (False, None)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            AnswerCache(capacity=-1)
        with pytest.raises(ValueError):
            AnswerCache(ttl_seconds=0.0)


class FakeClock:
    """Deterministic monotonic clock for TTL tests."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestAcquire:
    def test_dispatches_once_and_caches(self):
        runtime = AcquisitionRuntime(max_concurrent_batches=2)
        source = RecordingSource(value=0.5)
        outcome = runtime.acquire(source, "movies", [("humor", items_for([1, 2, 3]))])
        assert outcome.values == {"humor": {1: 0.5, 2: 0.5, 3: 0.5}}
        assert (outcome.dispatches, outcome.cache_hits, outcome.coalesced) == (1, 0, 0)
        repeat = runtime.acquire(source, "movies", [("humor", items_for([1, 2, 3]))])
        assert repeat.values == outcome.values
        assert (repeat.dispatches, repeat.cache_hits) == (0, 3)
        assert len(source.calls) == 1

    def test_partial_cache_hit_dispatches_only_the_remainder(self):
        runtime = AcquisitionRuntime()
        source = RecordingSource()
        runtime.acquire(source, "movies", [("humor", items_for([1, 2]))])
        outcome = runtime.acquire(source, "movies", [("humor", items_for([1, 2, 3, 4]))])
        assert outcome.cache_hits == 2
        assert outcome.dispatches == 1
        assert source.calls[-1] == ("humor", (3, 4))

    def test_attributes_dispatch_concurrently(self):
        runtime = AcquisitionRuntime(max_concurrent_batches=4)
        source = RecordingSource(latency=0.15)
        requests = [(attr, items_for([1, 2])) for attr in ("a", "b", "c", "d")]
        start = time.perf_counter()
        outcome = runtime.acquire(source, "t", requests)
        elapsed = time.perf_counter() - start
        assert outcome.dispatches == 4
        # Four 0.15 s dispatches overlapped on four workers: well under the
        # 0.6 s a sequential runtime would need.
        assert elapsed < 0.45

    def test_concurrent_identical_requests_coalesce_to_one_dispatch(self):
        runtime = AcquisitionRuntime(max_concurrent_batches=4)
        source = RecordingSource(value=0.9)
        source.release.clear()  # block the owning dispatch mid-flight
        results: list[Any] = []

        def acquire() -> None:
            results.append(
                runtime.acquire(source, "movies", [("humor", items_for([1, 2, 3]))])
            )

        owner = threading.Thread(target=acquire)
        owner.start()
        assert source.entered.wait(timeout=5.0)  # dispatch is in flight
        joiners = [threading.Thread(target=acquire) for _ in range(3)]
        for thread in joiners:
            thread.start()
        # Joiners registered against the in-flight cells; only now may the
        # platform answer.  N concurrent identical requests -> 1 dispatch.
        time.sleep(0.05)
        source.release.set()
        owner.join(timeout=10.0)
        for thread in joiners:
            thread.join(timeout=10.0)
        assert len(source.calls) == 1
        assert all(r.values == {"humor": {1: 0.9, 2: 0.9, 3: 0.9}} for r in results)
        total_coalesced = sum(r.coalesced for r in results)
        total_hits = sum(r.cache_hits for r in results)
        assert sum(r.dispatches for r in results) == 1
        # Every non-owner cell was either coalesced onto the in-flight
        # dispatch or (if a joiner arrived after completion) cache-served.
        assert total_coalesced + total_hits == 9

    def test_session_is_charged_for_own_dispatches_only(self):
        class CostedSource(RecordingSource):
            def __init__(self) -> None:
                super().__init__(value=1.0)
                self.total_cost = 0.0

            def request_values(self, attribute, items):
                values = super().request_values(attribute, items)
                self.total_cost += 0.25
                return values

        class Session:
            def __init__(self) -> None:
                self.cost_spent = 0.0

            def record_cost(self, cost: float) -> None:
                self.cost_spent += cost

        runtime = AcquisitionRuntime()
        source = CostedSource()
        session = Session()
        runtime.acquire(source, "t", [("a", items_for([1, 2]))], session=session)
        assert session.cost_spent == pytest.approx(0.25)
        # Cache-served repeat: no dispatch, no charge.
        runtime.acquire(source, "t", [("a", items_for([1, 2]))], session=session)
        assert session.cost_spent == pytest.approx(0.25)

    def test_source_with_cost_protocol_is_charged_exactly(self):
        class DetailedSource:
            def __init__(self) -> None:
                self.calls = 0

            def request_values_with_cost(self, attribute, items):
                self.calls += 1
                return {rowid: 1.0 for rowid, _row in items}, 0.4

        class Session:
            cost_spent = 0.0

            def record_cost(self, cost: float) -> None:
                Session.cost_spent += cost

        runtime = AcquisitionRuntime()
        runtime.acquire(DetailedSource(), "t", [("a", items_for([1]))], session=Session())
        assert Session.cost_spent == pytest.approx(0.4)

    def test_budget_exhaustion_mid_flush_skips_later_dispatches(self):
        # A dispatch that exhausts the budget must stop the flush's later
        # dispatches: each one re-checks the budget at execution time.
        class CostedSource(RecordingSource):
            def __init__(self) -> None:
                super().__init__(value=1.0)
                self.total_cost = 0.0

            def request_values(self, attribute, items):
                values = super().request_values(attribute, items)
                self.total_cost += 1.0
                return values

        class Session:
            def __init__(self, max_cost: float) -> None:
                self.max_cost = max_cost
                self.cost_spent = 0.0

            @property
            def budget_exhausted(self) -> bool:
                return self.cost_spent >= self.max_cost

            def record_cost(self, cost: float) -> None:
                self.cost_spent += cost

        # Budget-capped sessions dispatch serially *regardless* of the
        # concurrency knob, so the cap is enforced exactly: a worker pool
        # of 4 must not let 4 dispatches race past the check.
        runtime = AcquisitionRuntime(max_concurrent_batches=4)
        source = CostedSource()
        session = Session(max_cost=1.0)
        outcome = runtime.acquire(
            source,
            "t",
            [("a", items_for([1])), ("b", items_for([1])), ("c", items_for([1]))],
            session=session,
        )
        assert outcome.dispatches == 1  # a spent the whole budget; b, c skipped
        assert session.cost_spent == pytest.approx(1.0)
        assert outcome.values == {"a": {1: 1.0}, "b": {}, "c": {}}

    def test_concurrent_legacy_cost_sources_are_charged_exactly(self):
        # Sources without the request_values_with_cost protocol expose cost
        # only as a total_cost delta; the runtime must not over-charge the
        # session when several of their dispatches are scheduled at once.
        class SlowCostedSource:
            def __init__(self) -> None:
                self.total_cost = 0.0

            def request_values(self, attribute, items):
                time.sleep(0.02)
                self.total_cost += 0.25
                return {rowid: 1.0 for rowid, _row in items}

        class Session:
            def __init__(self) -> None:
                self.cost_spent = 0.0

            def record_cost(self, cost: float) -> None:
                self.cost_spent += cost

        runtime = AcquisitionRuntime(max_concurrent_batches=4)
        session = Session()
        outcome = runtime.acquire(
            SlowCostedSource(),
            "t",
            [(attr, items_for([1])) for attr in ("a", "b", "c", "d")],
            session=session,
        )
        assert outcome.dispatches == 4
        assert session.cost_spent == pytest.approx(1.0)  # never 2*c1 + ...

    def test_joiner_with_budget_retries_budget_skipped_cells(self):
        # A joins cells onto B's in-flight batch, but B's session turns out
        # to be broke and skips the dispatch.  A can pay, so A must
        # re-acquire the cells itself instead of returning MISSING.
        class BrokeSession:
            def __init__(self) -> None:
                self.max_cost = 1.0
                self.reached_check = threading.Event()
                self.gate = threading.Event()

            @property
            def budget_exhausted(self) -> bool:
                self.reached_check.set()
                assert self.gate.wait(timeout=10.0)
                return True

            def record_cost(self, cost: float) -> None:  # pragma: no cover
                pass

        runtime = AcquisitionRuntime(max_concurrent_batches=2)
        source = RecordingSource(value=0.6)
        broke = BrokeSession()
        results: dict[str, Any] = {}

        def broke_acquire() -> None:
            results["broke"] = runtime.acquire(
                source, "t", [("a", items_for([1, 2]))], session=broke
            )

        def rich_acquire() -> None:
            results["rich"] = runtime.acquire(source, "t", [("a", items_for([1, 2]))])

        owner = threading.Thread(target=broke_acquire)
        owner.start()
        # The broke session blocks inside its budget check *after*
        # registering the cells; the rich acquirer joins them now.
        assert broke.reached_check.wait(timeout=5.0)
        joiner = threading.Thread(target=rich_acquire)
        joiner.start()
        time.sleep(0.05)
        broke.gate.set()
        owner.join(timeout=10.0)
        joiner.join(timeout=10.0)

        assert results["broke"].values == {"a": {}}  # skipped, cells MISSING
        assert results["broke"].dispatches == 0
        rich = results["rich"]
        assert rich.values == {"a": {1: 0.6, 2: 0.6}}  # retried and paid
        assert len(source.calls) == 1  # only the rich session dispatched

    def test_failed_submission_wakes_coalesced_waiters(self):
        class BrokenPool:
            def submit(self, *args, **kwargs):
                raise RuntimeError("cannot schedule new futures after shutdown")

        runtime = AcquisitionRuntime()
        runtime._pool = BrokenPool()
        # Multi-attribute flush: the failure hits the *first* submit, and
        # every later, never-submitted batch must be unwound too.
        requests = [(attr, items_for([1, 2])) for attr in ("a", "b", "c")]
        with pytest.raises(RuntimeError, match="cannot schedule"):
            runtime.acquire(RecordingSource(), "t", requests)
        # All cells were unregistered, so nothing hangs and a later
        # acquire (with a working pool) retries them.
        runtime._pool = None
        outcome = runtime.acquire(RecordingSource(), "t", requests)
        assert outcome.dispatches == 3
        assert outcome.coalesced == 0  # no orphaned in-flight batches

    def test_dispatch_errors_propagate_and_unregister(self):
        class FailingSource:
            def request_values(self, attribute, items):
                raise RuntimeError("platform down")

        runtime = AcquisitionRuntime()
        with pytest.raises(RuntimeError, match="platform down"):
            runtime.acquire(FailingSource(), "t", [("a", items_for([1]))])
        # The failed cells were unregistered: a later acquire retries them.
        source = RecordingSource()
        outcome = runtime.acquire(source, "t", [("a", items_for([1]))])
        assert outcome.dispatches == 1

    def test_joiner_survives_owner_dispatch_error(self):
        # The owner's source fails mid-dispatch; a query that merely
        # coalesced onto it must not inherit the error — it re-acquires
        # the cells through its own dispatch.
        entered = threading.Event()
        release = threading.Event()

        class FailingSource:
            def request_values(self, attribute, items):
                entered.set()
                assert release.wait(timeout=10.0)
                raise RuntimeError("owner's platform down")

        runtime = AcquisitionRuntime(max_concurrent_batches=2)
        results: dict[str, Any] = {}

        def owner() -> None:
            try:
                runtime.acquire(FailingSource(), "t", [("a", items_for([1, 2]))])
            except RuntimeError as exc:
                results["owner_error"] = str(exc)

        def joiner() -> None:
            results["joined"] = runtime.acquire(
                RecordingSource(value=0.7), "t", [("a", items_for([1, 2]))]
            )

        owner_thread = threading.Thread(target=owner)
        owner_thread.start()
        assert entered.wait(timeout=5.0)
        joiner_thread = threading.Thread(target=joiner)
        joiner_thread.start()
        time.sleep(0.05)
        release.set()
        owner_thread.join(timeout=10.0)
        joiner_thread.join(timeout=10.0)

        assert results["owner_error"] == "owner's platform down"  # owner still fails
        assert results["joined"].values == {"a": {1: 0.7, 2: 0.7}}  # joiner recovered

    def test_unanswered_cells_are_not_cached(self):
        class SilentSource:
            def request_values(self, attribute, items):
                return {}

        runtime = AcquisitionRuntime()
        outcome = runtime.acquire(SilentSource(), "t", [("a", items_for([1, 2]))])
        assert outcome.values == {"a": {}}
        assert len(runtime.cache) == 0

    def test_run_prediction_counts_batches(self):
        runtime = AcquisitionRuntime()
        assert runtime.run_prediction(lambda: 42) == 42
        assert runtime.stats()["prediction_batches"] == 1

    def test_stats_shape(self):
        runtime = AcquisitionRuntime(max_concurrent_batches=2)
        runtime.acquire(RecordingSource(), "t", [("a", items_for([1]))])
        stats = runtime.stats()
        assert stats["dispatches"] == 1
        assert stats["max_concurrent_batches"] == 2
        assert stats["in_flight"] == 0
        assert stats["cache"].size == 1

    def test_rejects_bad_pool_size(self):
        with pytest.raises(ValueError):
            AcquisitionRuntime(max_concurrent_batches=0)

    def test_shutdown_is_idempotent(self):
        runtime = AcquisitionRuntime()
        runtime.acquire(RecordingSource(), "t", [("a", items_for([1]))])
        runtime.shutdown()
        runtime.shutdown()
        # The pool is recreated transparently on the next dispatch.
        outcome = runtime.acquire(RecordingSource(), "t", [("a", items_for([2]))])
        assert outcome.dispatches == 1
