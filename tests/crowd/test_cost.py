"""Tests for the cost model and spending ledger."""

from __future__ import annotations

import pytest

from repro.crowd.cost import CostModel, SpendingLedger
from repro.errors import BudgetExceededError


class TestCostModel:
    def test_assignment_cost_includes_fee(self):
        model = CostModel(payment_per_hit=0.02, service_fee_rate=0.2)
        assert model.assignment_cost() == pytest.approx(0.024)

    def test_cost_of(self):
        model = CostModel(payment_per_hit=0.03)
        assert model.cost_of(100) == pytest.approx(3.0)


class TestSpendingLedger:
    def test_charges_accumulate(self):
        ledger = SpendingLedger(CostModel(payment_per_hit=0.02))
        ledger.charge_assignment(1.0)
        ledger.charge_assignment(2.0)
        assert ledger.total_spent == pytest.approx(0.04)
        assert len(ledger.entries) == 2

    def test_spent_by_time(self):
        ledger = SpendingLedger(CostModel(payment_per_hit=0.02))
        ledger.charge_assignment(1.0)
        ledger.charge_assignment(5.0)
        ledger.charge_assignment(10.0)
        assert ledger.spent_by(0.5) == 0.0
        assert ledger.spent_by(5.0) == pytest.approx(0.04)
        assert ledger.spent_by(100.0) == pytest.approx(0.06)

    def test_budget_enforced(self):
        ledger = SpendingLedger(CostModel(payment_per_hit=1.0, budget=2.0))
        ledger.charge_assignment(1.0)
        ledger.charge_assignment(2.0)
        assert ledger.remaining_budget() == pytest.approx(0.0)
        with pytest.raises(BudgetExceededError):
            ledger.charge_assignment(3.0)

    def test_no_budget_means_unlimited(self):
        ledger = SpendingLedger(CostModel(payment_per_hit=1.0))
        for t in range(100):
            ledger.charge_assignment(float(t))
        assert ledger.remaining_budget() is None
        assert ledger.total_spent == pytest.approx(100.0)
