"""Tests for the expansion ledger."""

from __future__ import annotations

import pytest

from repro.core.ledger import ExpansionLedger


class TestExpansionLedger:
    def test_record_and_totals(self):
        ledger = ExpansionLedger()
        ledger.record("gold_sample", "is_comedy", cost=2.0, minutes=15.0, judgments=500, values_obtained=100)
        ledger.record("extraction", "is_comedy", values_obtained=900)
        ledger.record("gold_sample", "is_scary", cost=1.0, minutes=10.0, judgments=250, values_obtained=50)

        assert ledger.total_cost == pytest.approx(3.0)
        assert ledger.total_minutes == pytest.approx(25.0)
        assert ledger.total_judgments == 750
        assert ledger.total_values_obtained == 1050
        assert len(ledger.entries) == 3

    def test_for_attribute(self):
        ledger = ExpansionLedger()
        ledger.record("a", "is_comedy", cost=1.0)
        ledger.record("b", "is_scary", cost=2.0)
        assert len(ledger.for_attribute("is_comedy")) == 1
        assert ledger.for_attribute("is_scary")[0].cost == 2.0

    def test_cost_per_value(self):
        ledger = ExpansionLedger()
        assert ledger.cost_per_value() == 0.0
        ledger.record("a", "x", cost=5.0, values_obtained=100)
        assert ledger.cost_per_value() == pytest.approx(0.05)

    def test_summary_keys(self):
        ledger = ExpansionLedger()
        ledger.record("a", "x", cost=1.0, minutes=2.0, judgments=3, values_obtained=4)
        summary = ledger.summary()
        assert set(summary) == {
            "total_cost",
            "total_minutes",
            "total_judgments",
            "total_values_obtained",
            "cost_per_value",
        }
