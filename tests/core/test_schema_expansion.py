"""Tests for the schema expander wiring policies into the database."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.gold_sample import GoldSampleCollector
from repro.core.policies import DirectCrowdPolicy, PerceptualSpacePolicy
from repro.core.schema_expansion import SchemaExpander
from repro.crowd.platform import CrowdPlatform
from repro.crowd.worker import WorkerPool
from repro.db.connection import Connection
from repro.db.types import is_missing
from repro.errors import ExpansionError, UnknownColumnError
from repro.perceptual.space import PerceptualSpace


@pytest.fixture(scope="module")
def space() -> PerceptualSpace:
    rng = np.random.default_rng(4)
    positives = rng.normal(2.0, 0.5, size=(30, 4))
    negatives = rng.normal(0.0, 0.5, size=(70, 4))
    return PerceptualSpace(list(range(1, 101)), np.vstack([positives, negatives]))


@pytest.fixture(scope="module")
def truth() -> dict[int, bool]:
    return {i: i <= 30 for i in range(1, 101)}


def build_db() -> Connection:
    db = Connection()
    db.run_statement("CREATE TABLE items (item_id INTEGER PRIMARY KEY, name TEXT)")
    db.insert_rows("items", [{"item_id": i, "name": f"Item {i}"} for i in range(1, 101)])
    return db


def build_space_policy(space) -> PerceptualSpacePolicy:
    platform = CrowdPlatform(seed=6)
    pool = WorkerPool.build(n_experts=12, seed=6)
    collector = GoldSampleCollector(platform, pool, seed=6)
    return PerceptualSpacePolicy(space, collector, gold_sample_size=40, seed=6)


class TestExplicitExpansion:
    def test_expand_attribute_fills_column(self, space, truth):
        db = build_db()
        expander = SchemaExpander(
            db, build_space_policy(space), key_column="item_id", truth={"is_positive": truth}
        )
        report = expander.expand_attribute("items", "is_positive")
        assert report.rows_total == 100
        assert report.rows_filled == 100
        assert report.coverage == 1.0
        assert report.cost > 0
        found = db.run_statement("SELECT count(*) FROM items WHERE is_positive = true").scalar()
        assert 15 <= found <= 45
        # The write-back is crowd data and must be marked as such, so the
        # quality layer and cache invalidation can tell it from stored fact.
        provenance = db.table("items").provenance_map("is_positive")
        assert provenance and all(e.source == "crowd" for e in provenance.values())

    def test_ledger_records_expansion(self, space, truth):
        db = build_db()
        expander = SchemaExpander(
            db, build_space_policy(space), key_column="item_id", truth={"is_positive": truth}
        )
        expander.expand_attribute("items", "is_positive")
        assert expander.ledger.total_values_obtained == 100
        assert expander.ledger.total_cost > 0
        assert len(expander.reports) == 1

    def test_expansion_with_existing_column(self, space, truth):
        db = build_db()
        db.add_perceptual_column("items", "is_positive")
        expander = SchemaExpander(
            db, build_space_policy(space), key_column="item_id", truth={"is_positive": truth}
        )
        report = expander.expand_attribute("items", "is_positive")
        assert report.rows_filled == 100

    def test_missing_key_column(self, space, truth):
        db = Connection()
        db.run_statement("CREATE TABLE items (other_id INTEGER)")
        expander = SchemaExpander(db, build_space_policy(space), key_column="item_id", truth={})
        with pytest.raises(UnknownColumnError):
            expander.expand_attribute("items", "is_positive")

    def test_table_without_usable_keys(self, space):
        db = Connection()
        db.run_statement("CREATE TABLE items (item_id INTEGER, name TEXT)")
        expander = SchemaExpander(db, build_space_policy(space), key_column="item_id", truth={})
        with pytest.raises(ExpansionError):
            expander.expand_attribute("items", "is_positive")


class TestQueryDrivenExpansion:
    def test_query_triggers_expansion(self, space, truth):
        db = build_db()
        expander = SchemaExpander(
            db, build_space_policy(space), key_column="item_id", truth={"is_positive": truth}
        )
        expander.attach()
        result = db.run_statement("SELECT name FROM items WHERE is_positive = true")
        assert len(result) > 0
        assert len(expander.reports) == 1
        assert expander.reports[0].attribute == "is_positive"

    def test_whitelist_blocks_other_attributes(self, space, truth):
        db = build_db()
        expander = SchemaExpander(
            db,
            build_space_policy(space),
            key_column="item_id",
            truth={"is_positive": truth},
            allowed_attributes={"is_positive"},
        )
        expander.attach()
        with pytest.raises(UnknownColumnError):
            db.run_statement("SELECT name FROM items WHERE email = 'x'")

    def test_failed_expansion_propagates_unknown_column(self, space):
        db = build_db()
        # No truth provided: the gold sample will be one-sided and expansion fails.
        expander = SchemaExpander(
            db, build_space_policy(space), key_column="item_id", truth={}
        )
        expander.attach()
        with pytest.raises(UnknownColumnError):
            db.run_statement("SELECT name FROM items WHERE is_unknown_attr = true")

    def test_direct_crowd_policy_leaves_unclassified_missing(self, truth):
        db = build_db()
        platform = CrowdPlatform(seed=8)
        pool = WorkerPool.build(n_honest=15, n_spammers=10, seed=8)
        policy = DirectCrowdPolicy(platform, pool, judgments_per_item=5)
        expander = SchemaExpander(
            db, policy, key_column="item_id", truth={"is_positive": truth}
        )
        report = expander.expand_attribute("items", "is_positive")
        values = db.column_values("items", "is_positive")
        unresolved = [v for v in values.values() if is_missing(v)]
        assert report.rows_filled + len(unresolved) == 100
