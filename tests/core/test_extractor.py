"""Tests for the perceptual-attribute extractor (Section 3.4)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.extractor import PerceptualAttributeExtractor
from repro.errors import InsufficientTrainingDataError, LearningError
from repro.learn.metrics import g_mean
from repro.learn.model_selection import sample_balanced_training_set
from repro.perceptual.space import PerceptualSpace


@pytest.fixture(scope="module")
def clustered_space() -> PerceptualSpace:
    rng = np.random.default_rng(0)
    positives = rng.normal(2.0, 0.6, size=(60, 6))
    negatives = rng.normal(0.0, 0.6, size=(140, 6))
    return PerceptualSpace(list(range(1, 201)), np.vstack([positives, negatives]))


@pytest.fixture(scope="module")
def clustered_labels() -> dict[int, bool]:
    return {i: i <= 60 for i in range(1, 201)}


class TestBooleanExtraction:
    def test_small_gold_sample_extrapolates_well(self, clustered_space, clustered_labels):
        positives, negatives = sample_balanced_training_set(clustered_labels, 10, seed=0)
        gold = {i: True for i in positives}
        gold.update({i: False for i in negatives})
        extractor = PerceptualAttributeExtractor(clustered_space, seed=0)
        result = extractor.extract_boolean("is_positive", gold)
        truth = np.array([clustered_labels[i] for i in clustered_space.item_ids])
        predictions = np.array([result.values[i] for i in clustered_space.item_ids])
        assert g_mean(truth, predictions) > 0.9
        assert result.coverage(clustered_space.item_ids) == 1.0
        assert result.model_kind == "svc-rbf"

    def test_target_items_restriction(self, clustered_space, clustered_labels):
        gold = {i: clustered_labels[i] for i in list(range(1, 16)) + list(range(61, 76))}
        extractor = PerceptualAttributeExtractor(clustered_space, seed=0)
        result = extractor.extract_boolean("x", gold, target_items=[1, 2, 100])
        assert set(result.values) == {1, 2, 100}

    def test_decision_scores_align_with_predictions(self, clustered_space, clustered_labels):
        gold = {i: clustered_labels[i] for i in list(range(50, 71))}
        extractor = PerceptualAttributeExtractor(clustered_space, seed=0)
        result = extractor.extract_boolean("x", gold)
        for item_id, value in result.values.items():
            assert (result.decision_scores[item_id] >= 0) == value

    def test_items_outside_space_are_ignored_for_training(self, clustered_space, clustered_labels):
        gold = {i: clustered_labels[i] for i in range(55, 70)}
        gold[9999] = True  # unknown item
        extractor = PerceptualAttributeExtractor(clustered_space, seed=0)
        result = extractor.extract_boolean("x", gold)
        assert 9999 not in result.values

    def test_insufficient_training_data(self, clustered_space):
        extractor = PerceptualAttributeExtractor(clustered_space, min_training_size=6)
        with pytest.raises(InsufficientTrainingDataError):
            extractor.extract_boolean("x", {1: True, 2: False})

    def test_one_sided_training_data(self, clustered_space):
        extractor = PerceptualAttributeExtractor(clustered_space)
        with pytest.raises(InsufficientTrainingDataError):
            extractor.extract_boolean("x", {i: True for i in range(1, 20)})

    def test_no_target_items_in_space(self, clustered_space, clustered_labels):
        gold = {i: clustered_labels[i] for i in range(55, 70)}
        extractor = PerceptualAttributeExtractor(clustered_space, seed=0)
        with pytest.raises(LearningError):
            extractor.extract_boolean("x", gold, target_items=[5000, 5001])


class TestNumericExtraction:
    def test_regression_recovers_gradient(self, clustered_space):
        # Numeric target proportional to the first coordinate.
        truth = {i: float(clustered_space.vector(i)[0]) for i in clustered_space.item_ids}
        gold = {i: truth[i] for i in list(clustered_space.item_ids)[::7]}
        extractor = PerceptualAttributeExtractor(clustered_space, seed=0)
        result = extractor.extract_numeric("score", gold)
        predictions = np.array([result.values[i] for i in clustered_space.item_ids])
        target = np.array([truth[i] for i in clustered_space.item_ids])
        correlation = np.corrcoef(predictions, target)[0, 1]
        assert correlation > 0.8
        assert result.model_kind == "svr-rbf"

    def test_value_range_clipping(self, clustered_space):
        gold = {i: float(clustered_space.vector(i)[0]) * 10 for i in list(clustered_space.item_ids)[:30]}
        extractor = PerceptualAttributeExtractor(clustered_space, seed=0)
        result = extractor.extract_numeric("score", gold, value_range=(0.0, 5.0))
        values = np.array(list(result.values.values()))
        assert values.min() >= 0.0
        assert values.max() <= 5.0

    def test_insufficient_numeric_data(self, clustered_space):
        extractor = PerceptualAttributeExtractor(clustered_space)
        with pytest.raises(InsufficientTrainingDataError):
            extractor.extract_numeric("score", {1: 1.0})


class TestOnRealisticSpace:
    def test_movie_space_comedy_extraction(self, small_corpus, small_space):
        labels = small_corpus.labels_for("Comedy")
        positives, negatives = sample_balanced_training_set(labels, 25, seed=3)
        gold = {i: True for i in positives}
        gold.update({i: False for i in negatives})
        extractor = PerceptualAttributeExtractor(small_space, seed=3)
        result = extractor.extract_boolean("is_comedy", gold)
        ids = [i for i in labels if i in result.values]
        truth = np.array([labels[i] for i in ids])
        predictions = np.array([result.values[i] for i in ids])
        assert g_mean(truth, predictions) > 0.6
