"""Tests for questionable-HIT-response detection (Section 4.4)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.quality import QuestionableResponseDetector
from repro.errors import InsufficientTrainingDataError
from repro.experiments.questionable import corrupt_labels
from repro.perceptual.space import PerceptualSpace


@pytest.fixture(scope="module")
def space() -> PerceptualSpace:
    rng = np.random.default_rng(0)
    positives = rng.normal(2.2, 0.6, size=(60, 5))
    negatives = rng.normal(0.0, 0.6, size=(140, 5))
    return PerceptualSpace(list(range(1, 201)), np.vstack([positives, negatives]))


@pytest.fixture(scope="module")
def labels() -> dict[int, bool]:
    return {i: i <= 60 for i in range(1, 201)}


class TestCorruptLabels:
    def test_swapped_fraction(self, labels):
        corrupted, swapped = corrupt_labels(labels, 0.2, seed=0)
        assert len(swapped) == round(0.2 * len(labels))
        assert all(corrupted[i] != labels[i] for i in swapped)
        assert all(corrupted[i] == labels[i] for i in labels if i not in swapped)

    def test_invalid_fraction(self, labels):
        with pytest.raises(ValueError):
            corrupt_labels(labels, 0.0, seed=0)

    def test_reproducible(self, labels):
        first = corrupt_labels(labels, 0.1, seed=3)
        second = corrupt_labels(labels, 0.1, seed=3)
        assert first == second


class TestDetector:
    def test_detects_most_swapped_labels(self, space, labels):
        corrupted, swapped = corrupt_labels(labels, 0.2, seed=1)
        detector = QuestionableResponseDetector(space, seed=1)
        scan = detector.scan("is_positive", corrupted)
        precision, recall = scan.score_against(swapped)
        assert recall > 0.6
        assert precision > 0.5
        assert scan.n_items_scanned == len(labels)
        assert 0.0 < scan.flagged_fraction < 0.6

    def test_clean_labels_produce_few_flags(self, space, labels):
        detector = QuestionableResponseDetector(space, seed=1)
        scan = detector.scan("is_positive", labels)
        assert scan.flagged_fraction < 0.15

    def test_flags_reference_real_disagreements(self, space, labels):
        corrupted, _swapped = corrupt_labels(labels, 0.1, seed=2)
        scan = QuestionableResponseDetector(space, seed=2).scan("x", corrupted)
        for flag in scan.flags:
            assert flag.given_label != flag.predicted_label
            assert flag.item_id in corrupted

    def test_too_few_labels(self, space):
        detector = QuestionableResponseDetector(space)
        with pytest.raises(InsufficientTrainingDataError):
            detector.scan("x", {1: True, 2: False})

    def test_one_sided_labels(self, space):
        detector = QuestionableResponseDetector(space)
        with pytest.raises(InsufficientTrainingDataError):
            detector.scan("x", {i: True for i in range(1, 30)})

    def test_repair_fixes_flagged_items(self, space, labels):
        corrupted, swapped = corrupt_labels(labels, 0.15, seed=3)
        detector = QuestionableResponseDetector(space, seed=3)
        repaired = detector.repair("x", corrupted, verified_labels=labels)
        before = np.mean([corrupted[i] == labels[i] for i in labels])
        after = np.mean([repaired[i] == labels[i] for i in labels])
        assert after > before

    def test_items_outside_space_ignored(self, space, labels):
        extended = dict(labels)
        extended[9999] = True
        scan = QuestionableResponseDetector(space, seed=0).scan("x", extended)
        assert 9999 not in scan.predictions
