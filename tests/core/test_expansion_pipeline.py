"""Tests for the fluent ExpansionPipeline builder and session budgets."""

from __future__ import annotations

import pytest

from repro.core.policies import ExpansionPolicy, PolicyResult
from repro.db import connect
from repro.errors import ExpansionError, UnknownColumnError


class StubPolicy(ExpansionPolicy):
    """Labels every item True at a fixed cost per expansion."""

    def __init__(self, cost: float = 1.0) -> None:
        self.cost = cost
        self.expansions: list[str] = []

    def expand(self, attribute, item_ids, truth) -> PolicyResult:
        self.expansions.append(attribute)
        return PolicyResult(
            attribute=attribute,
            values={item_id: True for item_id in item_ids},
            cost=self.cost,
            minutes=2.0,
            judgments=len(item_ids),
            details={"policy": "stub"},
        )


@pytest.fixture
def conn():
    connection = connect()
    connection.execute("CREATE TABLE movies (movie_id INTEGER PRIMARY KEY, name TEXT)")
    connection.executemany(
        "INSERT INTO movies (movie_id, name) VALUES (?, ?)",
        [(1, "Rocky"), (2, "Psycho"), (3, "Clue")],
    )
    return connection


class TestExpansionPipeline:
    def test_fluent_attach_and_expand(self, conn):
        policy = StubPolicy()
        expander = (
            conn.expansion()
            .with_policy(policy)
            .with_key("movie_id")
            .allow("cult_film")
            .attach()
        )
        rows = conn.execute(
            "SELECT name FROM movies WHERE cult_film = ? ORDER BY movie_id", (True,)
        ).fetchall()
        assert rows == [("Rocky",), ("Psycho",), ("Clue",)]
        assert policy.expansions == ["cult_film"]
        assert expander.reports[0].coverage == 1.0

    def test_allow_list_blocks_other_attributes(self, conn):
        conn.expansion().with_policy(StubPolicy()).with_key("movie_id").allow("cult_film").attach()
        with pytest.raises(UnknownColumnError):
            conn.execute("SELECT name FROM movies WHERE email = ?", ("x",))

    def test_policy_is_required(self, conn):
        with pytest.raises(ExpansionError, match="policy"):
            conn.expansion().with_key("movie_id").attach()

    def test_cost_recorded_in_session_and_ledger(self, conn):
        conn.expansion().with_policy(StubPolicy(cost=2.5)).with_key("movie_id").attach()
        conn.execute("SELECT name FROM movies WHERE cult_film = ?", (True,))
        assert conn.session.cost_spent == pytest.approx(2.5)
        assert conn.session.ledger.total_cost == pytest.approx(2.5)
        assert conn.session.ledger.total_judgments == 3

    def test_budget_stops_expansion(self, conn):
        policy = StubPolicy(cost=2.0)
        (
            conn.expansion()
            .with_policy(policy)
            .with_key("movie_id")
            .with_budget(3.0)
            .attach()
        )
        conn.execute("SELECT name FROM movies WHERE first_attr = ?", (True,))
        conn.execute("SELECT name FROM movies WHERE second_attr = ?", (True,))
        # Two expansions spent $4 > $3: the third is refused.
        with pytest.raises(UnknownColumnError):
            conn.execute("SELECT name FROM movies WHERE third_attr = ?", (True,))
        assert policy.expansions == ["first_attr", "second_attr"]

    def test_budget_of_zero_blocks_immediately(self, conn):
        policy = StubPolicy()
        conn.expansion().with_policy(policy).with_key("movie_id").with_budget(0.0).attach()
        with pytest.raises(UnknownColumnError):
            conn.execute("SELECT name FROM movies WHERE cult_film = ?", (True,))
        assert policy.expansions == []

    def test_abandoned_builder_does_not_change_session(self, conn):
        conn.expansion().with_policy(StubPolicy()).with_budget(5.0)  # never built
        assert conn.session.max_cost is None

    def test_concurrent_expansions_of_same_attribute_coalesce(self):
        import threading
        import time

        from repro.db import Catalog, Connection

        class SlowCountingPolicy(StubPolicy):
            def expand(self, attribute, item_ids, truth):
                time.sleep(0.2)
                return super().expand(attribute, item_ids, truth)

        catalog = Catalog()
        connections = [Connection(catalog) for _ in range(3)]
        connections[0].execute("CREATE TABLE t (item_id INTEGER PRIMARY KEY)")
        connections[0].executemany(
            "INSERT INTO t (item_id) VALUES (?)", [(i,) for i in range(1, 50)]
        )
        policy = SlowCountingPolicy(cost=3.0)
        for connection in connections:
            connection.expansion().with_policy(policy).with_key("item_id").attach()

        results: list[tuple] = []
        errors: list[Exception] = []

        def query(connection):
            try:
                results.append(
                    connection.execute(
                        "SELECT count(*) FROM t WHERE cult = ?", (True,)
                    ).fetchone()
                )
            except Exception as exc:  # pragma: no cover - only on regression
                errors.append(exc)

        threads = [threading.Thread(target=query, args=(c,)) for c in connections]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        # Exactly one connection paid the crowd; every query saw the full result.
        assert policy.expansions == ["cult"]
        assert results == [(49,), (49,), (49,)]
        assert sorted(c.session.cost_spent for c in connections) == [0.0, 0.0, 3.0]

    def test_waiter_recovers_when_owning_expansion_fails(self):
        import threading
        import time

        from repro.db import Catalog, Connection
        from repro.errors import ExpansionError

        class FailingPolicy(ExpansionPolicy):
            def expand(self, attribute, item_ids, truth):
                time.sleep(0.2)
                raise ExpansionError("simulated crowd outage")

        class SlowWorkingPolicy(StubPolicy):
            def expand(self, attribute, item_ids, truth):
                time.sleep(0.05)
                return super().expand(attribute, item_ids, truth)

        catalog = Catalog()
        failing = Connection(catalog)
        working = Connection(catalog)
        failing.execute("CREATE TABLE t (item_id INTEGER PRIMARY KEY)")
        failing.executemany("INSERT INTO t (item_id) VALUES (?)", [(i,) for i in range(1, 20)])
        failing.expansion().with_policy(FailingPolicy()).with_key("item_id").attach()
        working_policy = SlowWorkingPolicy()
        working.expansion().with_policy(working_policy).with_key("item_id").attach()

        outcomes: dict[str, object] = {}

        def run_failing():
            try:
                failing.execute("SELECT count(*) FROM t WHERE cult = ?", (True,))
                outcomes["failing"] = "unexpected success"
            except UnknownColumnError:
                outcomes["failing"] = "unknown-column"

        def run_working():
            time.sleep(0.05)  # let the failing connection claim ownership first
            outcomes["working"] = working.execute(
                "SELECT count(*) FROM t WHERE cult = ?", (True,)
            ).fetchone()

        threads = [threading.Thread(target=run_failing), threading.Thread(target=run_working)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        # The waiter fell back to its own (working) policy after the owner failed.
        assert outcomes["failing"] == "unknown-column"
        assert outcomes["working"] == (19,)
        assert working_policy.expansions == ["cult"]

    def test_expansion_scan_and_writeback_safe_against_concurrent_writer(self):
        import threading
        import time

        from repro.db import Catalog, Connection

        class SlowStubPolicy(StubPolicy):
            def expand(self, attribute, item_ids, truth):
                time.sleep(0.2)  # crowd-sourcing happens outside the catalog lock
                return super().expand(attribute, item_ids, truth)

        catalog = Catalog()
        expanding = Connection(catalog)
        writing = Connection(catalog)
        expanding.execute("CREATE TABLE movies (movie_id INTEGER PRIMARY KEY, name TEXT)")
        expanding.executemany(
            "INSERT INTO movies (movie_id, name) VALUES (?, ?)",
            [(i, f"m{i}") for i in range(1, 200)],
        )
        expanding.expansion().with_policy(SlowStubPolicy()).with_key("movie_id").attach()

        errors: list[Exception] = []

        def writer():
            try:
                for i in range(200, 600):
                    writing.execute(
                        "INSERT INTO movies (movie_id, name) VALUES (?, ?)", (i, f"m{i}")
                    )
            except Exception as exc:  # pragma: no cover - only on regression
                errors.append(exc)

        def expander():
            try:
                expanding.execute("SELECT name FROM movies WHERE cult_film = ?", (True,))
            except Exception as exc:  # pragma: no cover - only on regression
                errors.append(exc)

        threads = [threading.Thread(target=expander), threading.Thread(target=writer)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []

    def test_build_without_attach_leaves_session_untouched(self, conn):
        expander = conn.expansion().with_policy(StubPolicy()).with_key("movie_id").build()
        assert conn.session.expansion_handler is None
        report = expander.expand_attribute("movies", "cult_film")
        assert report.rows_filled == 3
