"""Tests for the expansion policies (direct crowd, perceptual space, hybrid)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.gold_sample import GoldSampleCollector
from repro.core.policies import DirectCrowdPolicy, HybridPolicy, PerceptualSpacePolicy
from repro.crowd.platform import CrowdPlatform
from repro.crowd.worker import WorkerPool
from repro.errors import ExpansionError
from repro.perceptual.space import PerceptualSpace


@pytest.fixture(scope="module")
def space() -> PerceptualSpace:
    rng = np.random.default_rng(2)
    positives = rng.normal(2.0, 0.5, size=(40, 5))
    negatives = rng.normal(0.0, 0.5, size=(110, 5))
    return PerceptualSpace(list(range(1, 151)), np.vstack([positives, negatives]))


@pytest.fixture(scope="module")
def truth() -> dict[int, bool]:
    return {i: i <= 40 for i in range(1, 151)}


@pytest.fixture()
def platform() -> CrowdPlatform:
    return CrowdPlatform(seed=3)


@pytest.fixture()
def pool() -> WorkerPool:
    return WorkerPool.build(n_honest=20, n_experts=10, n_spammers=10, seed=3)


class TestDirectCrowdPolicy:
    def test_expansion_covers_most_items(self, platform, pool, truth):
        policy = DirectCrowdPolicy(platform, pool, judgments_per_item=7)
        result = policy.expand("is_positive", sorted(truth), truth)
        assert result.coverage_count > 0.5 * len(truth)
        assert result.cost > 0
        assert result.judgments == pytest.approx(result.details.get("n_workers", 0), abs=10**9)
        accuracy = np.mean([truth[i] == v for i, v in result.values.items()])
        assert accuracy > 0.6

    def test_empty_items_rejected(self, platform, pool, truth):
        policy = DirectCrowdPolicy(platform, pool)
        with pytest.raises(ExpansionError):
            policy.expand("x", [], truth)


class TestPerceptualSpacePolicy:
    def test_full_coverage_and_low_cost(self, platform, pool, space, truth):
        collector = GoldSampleCollector(platform, pool.only_trusted(), seed=4)
        space_policy = PerceptualSpacePolicy(space, collector, gold_sample_size=50, seed=4)
        crowd_policy = DirectCrowdPolicy(platform, pool, judgments_per_item=10)

        space_result = space_policy.expand("is_positive", sorted(truth), truth)
        crowd_result = crowd_policy.expand("is_positive", sorted(truth), truth)

        assert space_result.coverage_count == len(truth)
        assert space_result.cost < crowd_result.cost
        accuracy = np.mean([truth[i] == v for i, v in space_result.values.items()])
        assert accuracy > 0.8
        assert space_policy.last_gold_sample is not None

    def test_rejects_items_outside_space(self, platform, pool, space, truth):
        collector = GoldSampleCollector(platform, pool.only_trusted(), seed=4)
        policy = PerceptualSpacePolicy(space, collector, seed=4)
        with pytest.raises(ExpansionError):
            policy.expand("x", [9000, 9001], truth)

    def test_empty_items_rejected(self, platform, pool, space, truth):
        collector = GoldSampleCollector(platform, pool.only_trusted(), seed=4)
        policy = PerceptualSpacePolicy(space, collector, seed=4)
        with pytest.raises(ExpansionError):
            policy.expand("x", [], truth)


class TestHybridPolicy:
    def test_combines_space_and_crowd(self, platform, pool, space, truth):
        collector = GoldSampleCollector(platform, pool.only_trusted(), seed=5)
        space_policy = PerceptualSpacePolicy(space, collector, gold_sample_size=40, seed=5)
        crowd_policy = DirectCrowdPolicy(platform, pool, judgments_per_item=5)
        hybrid = HybridPolicy(space_policy, crowd_policy)

        # Items 200-219 are not in the space and must go through the crowd.
        extended_truth = dict(truth)
        extended_truth.update({i: False for i in range(200, 220)})
        result = hybrid.expand("is_positive", sorted(extended_truth), extended_truth)

        assert result.details["covered"] == len(truth)
        assert result.details["uncovered"] == 20
        assert result.coverage_count > len(truth)
        covered_in_space = [i for i in result.values if i in space]
        assert len(covered_in_space) == len(truth)
