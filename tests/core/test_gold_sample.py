"""Tests for gold-sample collection via the simulated crowd."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.gold_sample import GoldSample, GoldSampleCollector
from repro.crowd.platform import CrowdPlatform
from repro.crowd.worker import WorkerPool
from repro.errors import ExpansionError


@pytest.fixture(scope="module")
def truth() -> dict[int, bool]:
    rng = np.random.default_rng(1)
    return {i: bool(rng.random() < 0.3) for i in range(1, 301)}


@pytest.fixture(scope="module")
def collector() -> GoldSampleCollector:
    platform = CrowdPlatform(seed=5)
    pool = WorkerPool.build(n_experts=15, seed=5)
    return GoldSampleCollector(platform, pool, judgments_per_item=5, seed=5)


class TestGoldSampleDataclass:
    def test_positive_negative_partition(self):
        sample = GoldSample("x", {1: True, 2: False, 3: True}, cost=1.0, minutes=2.0, judgments_used=15)
        assert sample.positive_ids == [1, 3]
        assert sample.negative_ids == [2]
        assert len(sample) == 3
        assert sample.is_balanced()
        assert not sample.is_balanced(minimum_per_class=2)


class TestCollection:
    def test_collect_produces_accurate_labels(self, collector, truth):
        sample = collector.collect("is_comedy", sorted(truth), truth, sample_size=80)
        assert 40 <= len(sample) <= 80
        agreement = np.mean([truth[i] == label for i, label in sample.labels.items()])
        assert agreement > 0.85
        assert sample.cost > 0
        assert sample.minutes > 0
        assert sample.judgments_used > 0

    def test_sample_size_capped_by_candidates(self, collector, truth):
        sample = collector.collect("x", list(truth)[:20], truth, sample_size=100)
        assert len(sample) <= 20

    def test_collect_balanced_retries_until_both_classes(self, collector, truth):
        sample = collector.collect_balanced("x", sorted(truth), truth, sample_size=30)
        assert sample.is_balanced(minimum_per_class=3)

    def test_empty_candidates_rejected(self, collector, truth):
        with pytest.raises(ExpansionError):
            collector.collect("x", [], truth)

    def test_invalid_judgments_per_item(self):
        platform = CrowdPlatform(seed=1)
        pool = WorkerPool.build(n_experts=3, seed=1)
        with pytest.raises(ExpansionError):
            GoldSampleCollector(platform, pool, judgments_per_item=0)

    def test_deterministic_given_seed(self, truth):
        def build():
            platform = CrowdPlatform(seed=9)
            pool = WorkerPool.build(n_experts=10, seed=9)
            return GoldSampleCollector(platform, pool, seed=9)

        first = build().collect("x", sorted(truth), truth, sample_size=40)
        second = build().collect("x", sorted(truth), truth, sample_size=40)
        assert first.labels == second.labels
