"""Tests for the write-ahead log: framing, torn tails, group commit, and
the replay property (any prefix of a valid log recovers consistently)."""

from __future__ import annotations

import json
import struct
from zlib import crc32

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db.durability import DurabilityManager
from repro.db.types import MISSING
from repro.db.wal import (
    RECORD_TYPES,
    SYNCHRONOUS_MODES,
    WriteAheadLog,
    decode_cells,
    decode_row,
    decode_value,
    encode_cells,
    encode_row,
    encode_value,
    scan_wal,
)
from repro.errors import PersistenceError


class TestValueEncoding:
    def test_missing_round_trips(self):
        assert decode_value(encode_value(MISSING)) is MISSING

    def test_scalars_pass_through(self):
        for value in (None, 1, 2.5, "text", True, False):
            assert decode_value(encode_value(value)) == value

    def test_row_round_trip(self):
        row = {"id": 1, "name": "Rocky", "score": MISSING, "flag": None}
        decoded = decode_row(json.loads(json.dumps(encode_row(row))))
        assert decoded["id"] == 1 and decoded["name"] == "Rocky"
        assert decoded["score"] is MISSING and decoded["flag"] is None

    def test_cells_round_trip_integer_keys(self):
        cells = {7: True, 12: MISSING}
        decoded = decode_cells(json.loads(json.dumps(encode_cells(cells))))
        assert decoded[7] is True and decoded[12] is MISSING


class TestFraming:
    def test_append_and_scan(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.log")
        wal.append("insert", {"table": "t", "rowid": 1, "row": {"id": 1}})
        wal.append("delete", {"table": "t", "rowid": 1})
        wal.close()
        records, valid = scan_wal(tmp_path / "wal.log")
        assert [record["op"] for record in records] == ["insert", "delete"]
        assert [record["lsn"] for record in records] == [1, 2]
        assert valid == (tmp_path / "wal.log").stat().st_size

    def test_missing_file_scans_empty(self, tmp_path):
        assert scan_wal(tmp_path / "nothing.log") == ([], 0)

    def test_unknown_record_type_is_rejected(self, tmp_path):
        # RECORD_TYPES is the closed vocabulary recovery knows how to
        # replay; appending outside it would strand unreadable records.
        wal = WriteAheadLog(tmp_path / "wal.log")
        with pytest.raises(PersistenceError, match="unknown WAL record type"):
            wal.append("compact", {"table": "t"})
        wal.close()
        assert scan_wal(tmp_path / "wal.log") == ([], 0)

    def test_record_types_cover_the_replay_vocabulary(self):
        assert RECORD_TYPES == {
            "create_table",
            "drop_table",
            "insert",
            "update",
            "delete",
            "fill",
            "add_column",
            "create_index",
            "enum_answers",
            "worker_stats",
        }

    def test_torn_tail_stops_scan(self, tmp_path):
        path = tmp_path / "wal.log"
        wal = WriteAheadLog(path)
        wal.append("insert", {"table": "t", "rowid": 1, "row": {}})
        wal.close()
        intact = path.stat().st_size
        with open(path, "ab") as handle:
            handle.write(struct.pack("<II", 500, 123) + b"short")
        records, valid = scan_wal(path)
        assert len(records) == 1
        assert valid == intact

    def test_corrupt_crc_stops_scan(self, tmp_path):
        path = tmp_path / "wal.log"
        wal = WriteAheadLog(path)
        wal.append("insert", {"table": "t", "rowid": 1, "row": {}})
        wal.append("insert", {"table": "t", "rowid": 2, "row": {}})
        wal.close()
        data = bytearray(path.read_bytes())
        data[-1] ^= 0xFF  # flip a byte inside the last payload
        path.write_bytes(bytes(data))
        records, _valid = scan_wal(path)
        assert len(records) == 1

    def test_crc_catches_in_place_corruption(self, tmp_path):
        path = tmp_path / "wal.log"
        blob = json.dumps({"lsn": 1, "op": "noop"}).encode()
        path.write_bytes(struct.pack("<II", len(blob), crc32(blob) ^ 1) + blob)
        assert scan_wal(path) == ([], 0)


class TestDurabilityModes:
    def test_full_fsyncs_every_record(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.log", synchronous="full")
        for i in range(5):
            wal.append("insert", {"rowid": i})
        assert wal.fsyncs == 5
        wal.close()

    def test_normal_batches_fsyncs(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.log", synchronous="normal", group_size=4)
        for i in range(10):
            wal.append("insert", {"rowid": i})
        assert wal.fsyncs == 2  # two full groups of four
        wal.flush()
        assert wal.fsyncs == 3  # the remaining two records
        wal.flush()
        assert wal.fsyncs == 3  # nothing pending: flush is free
        wal.close()

    def test_off_never_fsyncs(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.log", synchronous="off")
        for i in range(10):
            wal.append("insert", {"rowid": i})
        wal.flush()
        wal.close()
        assert wal.fsyncs == 0
        # ... but the records are still written and readable.
        records, _ = scan_wal(tmp_path / "wal.log")
        assert len(records) == 10

    def test_invalid_mode_rejected(self, tmp_path):
        with pytest.raises(PersistenceError):
            WriteAheadLog(tmp_path / "wal.log", synchronous="eventually")
        assert "full" in SYNCHRONOUS_MODES

    def test_invalid_group_size_rejected(self, tmp_path):
        with pytest.raises(PersistenceError):
            WriteAheadLog(tmp_path / "wal.log", group_size=0)

    def test_truncate_discards_records_keeps_lsn(self, tmp_path):
        path = tmp_path / "wal.log"
        wal = WriteAheadLog(path)
        wal.append("insert", {"rowid": 1})
        wal.truncate()
        assert path.stat().st_size == 0
        lsn = wal.append("insert", {"rowid": 2})
        assert lsn == 2  # LSNs are monotone across truncations
        wal.close()


# ---------------------------------------------------------------------------
# Replay property: any byte prefix of a valid log recovers to the state of
# the statements whose records fully survived the cut.
# ---------------------------------------------------------------------------

#: One generated operation: ("insert", key, value) / ("update", key, value) /
#: ("delete", key) / ("fill", key, value).  Keys index into the rows the
#: model knows exist; inserts always append.
_OPS = st.lists(
    st.one_of(
        st.tuples(st.just("insert"), st.integers(0, 30), st.integers(-5, 5)),
        st.tuples(st.just("update"), st.integers(0, 30), st.integers(-5, 5)),
        st.tuples(st.just("delete"), st.integers(0, 30), st.just(0)),
        st.tuples(st.just("fill"), st.integers(0, 30), st.integers(-5, 5)),
    ),
    min_size=1,
    max_size=12,
)


def _apply_ops(conn, ops) -> int:
    """Run *ops* against a connection; returns statements issued (including
    the CREATE TABLE, i.e. the number of WAL records produced)."""
    conn.execute(
        "CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER, score REAL PERCEPTUAL)"
    )
    issued = 1
    next_id = 1
    live: list[int] = []
    for op, key, value in ops:
        if op == "insert":
            conn.execute("INSERT INTO t (id, v) VALUES (?, ?)", (next_id, value))
            live.append(next_id)
            next_id += 1
        elif op == "update" and live:
            conn.execute("UPDATE t SET v = ? WHERE id = ?", (value, live[key % len(live)]))
        elif op == "delete" and live:
            target = live.pop(key % len(live))
            conn.execute("DELETE FROM t WHERE id = ?", (target,))
        elif op == "fill" and live:
            target = live[key % len(live)]
            storage = conn.table("t")
            rowid = storage.select_rowids(lambda row: row["id"] == target)[0]
            storage.fill_values(
                "score",
                {rowid: float(value)},
                provenance="crowd",
                confidences={rowid: 0.75},
            )
        else:
            continue
        issued += 1
    return issued


def _table_state(conn) -> tuple:
    storage = conn.table("t")
    rows = tuple(sorted((rowid, tuple(sorted(row.items()))) for rowid, row in storage.scan()))
    provenance = tuple(
        sorted(
            (rowid, entry.source, entry.confidence)
            for rowid, entry in storage.provenance_map("score").items()
        )
    )
    return rows, provenance, storage.next_rowid


@settings(max_examples=25, deadline=None)
@given(ops=_OPS, cut_fraction=st.floats(0.0, 1.0))
def test_wal_replay_prefix_property(tmp_path_factory, ops, cut_fraction):
    """Truncating the WAL at *any* byte offset (torn final record included)
    recovers exactly the catalog produced by the statements whose records
    survived the cut — never a corrupt or half-applied state."""
    import repro

    base = tmp_path_factory.mktemp("wal-property")
    full_dir = base / "full"
    conn = repro.connect(path=full_dir, synchronous="off", checkpoint_interval=None)
    _apply_ops(conn, ops)
    conn.close()

    wal_bytes = (full_dir / "wal.log").read_bytes()
    cut = int(len(wal_bytes) * cut_fraction)
    prefix_records, valid = scan_wal(full_dir / "wal.log")
    kept = [record for record in prefix_records]  # all records of the full log
    assert valid == len(wal_bytes)

    # Build the truncated incarnation and recover it.
    cut_dir = base / "cut"
    cut_dir.mkdir()
    (cut_dir / "wal.log").write_bytes(wal_bytes[:cut])
    recovered = repro.connect(path=cut_dir, checkpoint_interval=None)

    # Expected state: replay the surviving record prefix directly.
    surviving, _ = scan_wal(cut_dir / "wal.log")
    assert surviving == kept[: len(surviving)]
    expected_dir = base / "expected"
    expected_manager = DurabilityManager(expected_dir, checkpoint_interval=None)
    for record in surviving:
        expected_manager._apply(record)
    expected_conn = repro.connect(expected_manager.catalog)

    if not surviving:
        assert recovered.table_names() == []
    else:
        assert recovered.table_names() == expected_conn.table_names()
        assert _table_state(recovered) == _table_state(expected_conn)
    recovered.close()
    expected_manager.close()
