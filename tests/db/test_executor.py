"""Tests for SELECT execution, aggregation, joins, ordering and DML."""

from __future__ import annotations

import pytest

from repro.db.connection import Connection
from repro.db.types import MISSING, is_missing
from repro.errors import ExecutionError


@pytest.fixture
def db(movies_db) -> Connection:
    movies_db.run_statement(
        "CREATE TABLE ratings (movie_id INTEGER, user_id INTEGER, score REAL)"
    )
    movies_db.run_statement(
        "INSERT INTO ratings VALUES (1, 100, 5), (1, 101, 4), (2, 100, 5), (3, 102, 3), (99, 103, 1)"
    )
    return movies_db


class TestProjectionAndFilter:
    def test_select_star(self, db):
        result = db.run_statement("SELECT * FROM movies")
        assert result.columns == ["movie_id", "name", "year", "rating", "humor"]
        assert len(result) == 5

    def test_where_filter(self, db):
        result = db.run_statement("SELECT name FROM movies WHERE year > 1975")
        assert set(result.column("name")) == {"Rocky", "Airplane!", "Dirty Dancing"}

    def test_projection_expression(self, db):
        result = db.run_statement("SELECT name, year + 10 AS later FROM movies WHERE movie_id = 1")
        assert result.rows == [("Rocky", 1986)]

    def test_index_lookup_path(self, db):
        assert "IndexLookup" in db.explain("SELECT name FROM movies WHERE movie_id = 2")
        result = db.run_statement("SELECT name FROM movies WHERE movie_id = 2")
        assert result.rows == [("Psycho",)]

    def test_like_filter(self, db):
        result = db.run_statement("SELECT name FROM movies WHERE name LIKE '%o'")
        assert set(result.column("name")) == {"Psycho", "Vertigo"}

    def test_in_filter(self, db):
        result = db.run_statement("SELECT name FROM movies WHERE movie_id IN (1, 3)")
        assert set(result.column("name")) == {"Rocky", "Airplane!"}

    def test_between_filter(self, db):
        result = db.run_statement("SELECT count(*) FROM movies WHERE year BETWEEN 1960 AND 1980")
        assert result.scalar() == 3

    def test_missing_values_do_not_match_predicates(self, db):
        assert db.run_statement("SELECT name FROM movies WHERE humor > 5").rows == []
        assert db.run_statement("SELECT name FROM movies WHERE humor <= 5").rows == []

    def test_is_missing_predicate(self, db):
        result = db.run_statement("SELECT count(*) FROM movies WHERE humor IS MISSING")
        assert result.scalar() == 5

    def test_distinct(self, db):
        db.run_statement("INSERT INTO movies (movie_id, name, year) VALUES (6, 'Rocky', 1976)")
        result = db.run_statement("SELECT DISTINCT name FROM movies WHERE name = 'Rocky'")
        assert len(result) == 1

    def test_result_helpers(self, db):
        result = db.run_statement("SELECT movie_id, name FROM movies ORDER BY movie_id LIMIT 2")
        assert result.to_dicts()[0] == {"movie_id": 1, "name": "Rocky"}
        with pytest.raises(ExecutionError):
            result.scalar()
        with pytest.raises(ExecutionError):
            result.column("nope")


class TestOrderingAndLimit:
    def test_order_by_desc(self, db):
        result = db.run_statement("SELECT name FROM movies ORDER BY year DESC")
        assert result.column("name")[0] == "Dirty Dancing"

    def test_order_by_multiple_keys(self, db):
        db.run_statement("INSERT INTO movies (movie_id, name, year) VALUES (7, 'AAA', 1976)")
        result = db.run_statement("SELECT name FROM movies WHERE year = 1976 ORDER BY year, name")
        assert result.column("name") == ["AAA", "Rocky"]

    def test_order_by_output_alias(self, db):
        result = db.run_statement("SELECT year + 1 AS next_year FROM movies ORDER BY next_year LIMIT 1")
        assert result.rows == [(1959,)]

    def test_limit_offset(self, db):
        result = db.run_statement("SELECT name FROM movies ORDER BY movie_id LIMIT 2 OFFSET 1")
        assert result.column("name") == ["Psycho", "Airplane!"]

    def test_nulls_sort_last(self, db):
        db.run_statement("INSERT INTO movies (movie_id, name) VALUES (8, 'Unknown Year')")
        ascending = db.run_statement("SELECT name FROM movies ORDER BY year").column("name")
        descending = db.run_statement("SELECT name FROM movies ORDER BY year DESC").column("name")
        assert ascending[-1] == "Unknown Year"
        assert descending[-1] == "Unknown Year"


class TestAggregation:
    def test_count_star(self, db):
        assert db.run_statement("SELECT count(*) FROM movies").scalar() == 5

    def test_aggregates_ignore_null_and_missing(self, db):
        db.run_statement("INSERT INTO movies (movie_id, name, rating) VALUES (9, 'NoYear', 1.0)")
        assert db.run_statement("SELECT count(year) FROM movies").scalar() == 5
        assert db.run_statement("SELECT count(humor) FROM movies").scalar() == 0
        assert db.run_statement("SELECT sum(humor) FROM movies").scalar() is None

    def test_avg_min_max(self, db):
        result = db.run_statement("SELECT min(year), max(year), avg(rating) FROM movies")
        low, high, average = result.rows[0]
        assert (low, high) == (1958, 1987)
        assert average == pytest.approx((8.1 + 8.5 + 7.7 + 8.3 + 7.0) / 5)

    def test_group_by(self, db):
        result = db.run_statement(
            "SELECT movie_id, count(*) AS votes, avg(score) FROM ratings GROUP BY movie_id "
            "ORDER BY votes DESC, movie_id"
        )
        assert result.rows[0][0] == 1
        assert result.rows[0][1] == 2

    def test_group_by_having(self, db):
        result = db.run_statement(
            "SELECT movie_id FROM ratings GROUP BY movie_id HAVING count(*) >= 2"
        )
        assert result.column("movie_id") == [1]

    def test_count_distinct(self, db):
        assert db.run_statement("SELECT count(DISTINCT user_id) FROM ratings").scalar() == 4

    def test_aggregate_arithmetic(self, db):
        result = db.run_statement("SELECT max(year) - min(year) FROM movies")
        assert result.scalar() == 1987 - 1958


class TestJoins:
    def test_inner_join(self, db):
        result = db.run_statement(
            "SELECT m.name, r.score FROM movies m JOIN ratings r ON m.movie_id = r.movie_id "
            "ORDER BY m.movie_id, r.user_id"
        )
        assert len(result) == 4
        assert result.rows[0] == ("Rocky", 5.0)

    def test_inner_join_drops_unmatched(self, db):
        result = db.run_statement(
            "SELECT r.movie_id FROM ratings r JOIN movies m ON m.movie_id = r.movie_id"
        )
        assert 99 not in result.column("movie_id")

    def test_left_join_keeps_unmatched(self, db):
        result = db.run_statement(
            "SELECT m.name, r.score FROM movies m LEFT JOIN ratings r ON m.movie_id = r.movie_id "
            "ORDER BY m.movie_id"
        )
        names = [row[0] for row in result.rows]
        assert "Vertigo" in names
        vertigo_rows = [row for row in result.rows if row[0] == "Vertigo"]
        assert vertigo_rows[0][1] is None

    def test_cross_join(self, db):
        result = db.run_statement("SELECT count(*) FROM movies CROSS JOIN ratings")
        assert result.scalar() == 5 * 5

    def test_join_aggregate(self, db):
        result = db.run_statement(
            "SELECT m.name, count(*) AS n FROM movies m JOIN ratings r "
            "ON m.movie_id = r.movie_id GROUP BY m.name ORDER BY n DESC, m.name LIMIT 1"
        )
        assert result.rows == [("Rocky", 2)]


class TestDML:
    def test_insert_rowcount(self, db):
        result = db.run_statement("INSERT INTO movies (movie_id, name) VALUES (20, 'New'), (21, 'Newer')")
        assert result.rowcount == 2

    def test_insert_wrong_arity(self, db):
        with pytest.raises(ExecutionError):
            db.run_statement("INSERT INTO movies (movie_id, name) VALUES (22)")

    def test_update(self, db):
        result = db.run_statement("UPDATE movies SET year = 1999 WHERE name = 'Rocky'")
        assert result.rowcount == 1
        assert db.run_statement("SELECT year FROM movies WHERE name = 'Rocky'").scalar() == 1999

    def test_update_with_expression(self, db):
        db.run_statement("UPDATE movies SET rating = rating + 1 WHERE movie_id = 1")
        assert db.run_statement("SELECT rating FROM movies WHERE movie_id = 1").scalar() == pytest.approx(9.1)

    def test_update_all_rows(self, db):
        assert db.run_statement("UPDATE movies SET rating = 0").rowcount == 5

    def test_delete(self, db):
        assert db.run_statement("DELETE FROM movies WHERE year < 1960").rowcount == 1
        assert db.run_statement("SELECT count(*) FROM movies").scalar() == 4

    def test_delete_all(self, db):
        db.run_statement("DELETE FROM ratings")
        assert db.run_statement("SELECT count(*) FROM ratings").scalar() == 0


class TestDDL:
    def test_alter_table_add_perceptual_column(self, db):
        db.run_statement("ALTER TABLE movies ADD COLUMN is_comedy BOOLEAN PERCEPTUAL")
        values = db.column_values("movies", "is_comedy")
        assert all(is_missing(v) for v in values.values())

    def test_alter_table_add_factual_column_defaults_null(self, db):
        db.run_statement("ALTER TABLE movies ADD COLUMN director TEXT")
        values = db.column_values("movies", "director")
        assert all(v is None for v in values.values())

    def test_alter_table_with_default(self, db):
        db.run_statement("ALTER TABLE movies ADD COLUMN views INTEGER DEFAULT 0")
        assert db.run_statement("SELECT sum(views) FROM movies").scalar() == 0

    def test_create_insert_select_roundtrip(self):
        db = Connection()
        db.run_statement("CREATE TABLE t (a INTEGER PRIMARY KEY, b TEXT)")
        db.run_statement("INSERT INTO t VALUES (1, 'x'), (2, 'y')")
        assert db.run_statement("SELECT b FROM t WHERE a = 2").scalar() == "y"

    def test_drop_table(self, db):
        db.run_statement("DROP TABLE ratings")
        assert "ratings" not in db.table_names()


class TestMissingResolution:
    def test_resolver_fills_value_at_query_time(self, db):
        def resolver(ref, row):
            if ref.name == "humor":
                return 9.0
            return MISSING

        db.set_missing_resolver(resolver)
        result = db.run_statement("SELECT name FROM movies WHERE humor >= 8")
        assert len(result) == 5

    def test_without_resolver_missing_is_unknown(self, db):
        db.set_missing_resolver(None)
        assert db.run_statement("SELECT name FROM movies WHERE humor >= 8").rows == []
