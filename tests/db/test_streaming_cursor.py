"""Tests for streaming cursor semantics over the live operator tree."""

from __future__ import annotations

import pytest

from repro.db import Connection, connect
from repro.db.sql.operators import SeqScan
from repro.errors import ExecutionError, UnknownColumnError

N_ROWS = 100


@pytest.fixture
def conn() -> Connection:
    connection = connect()
    connection.execute("CREATE TABLE numbers (n INTEGER PRIMARY KEY, v INTEGER)")
    connection.executemany(
        "INSERT INTO numbers (n, v) VALUES (?, ?)", [(i, i) for i in range(1, N_ROWS + 1)]
    )
    return connection


def scan_of(cursor) -> SeqScan:
    return next(op for op in cursor.plan.walk() if isinstance(op, SeqScan))


class TestInterleavedFetching:
    def test_fetchone_fetchmany_iteration_interleave(self, conn):
        cursor = conn.execute("SELECT n FROM numbers ORDER BY n")
        assert cursor.fetchone() == (1,)
        assert cursor.fetchmany(3) == [(2,), (3,), (4,)]
        assert next(cursor) == (5,)
        assert cursor.fetchmany() == [(6,)]  # arraysize default is 1
        rest = cursor.fetchall()
        assert rest[0] == (7,)
        assert rest[-1] == (N_ROWS,)
        assert cursor.fetchone() is None
        assert cursor.fetchall() == []

    def test_arraysize_defaults_and_override(self, conn):
        cursor = conn.execute("SELECT n FROM numbers")
        assert cursor.arraysize == 1
        assert len(cursor.fetchmany()) == 1
        cursor.arraysize = 10
        assert len(cursor.fetchmany()) == 10
        assert len(cursor.fetchmany(5)) == 5

    def test_iteration_protocol_streams_everything(self, conn):
        cursor = conn.execute("SELECT v FROM numbers")
        assert sum(v for (v,) in cursor) == sum(range(1, N_ROWS + 1))

    def test_rowcount_drains_but_preserves_fetch_position(self, conn):
        cursor = conn.execute("SELECT n FROM numbers")
        assert cursor.rowcount == N_ROWS
        assert cursor.fetchone() == (1,)

    def test_result_property_interleaves_with_fetching(self, conn):
        cursor = conn.execute("SELECT n FROM numbers")
        assert cursor.fetchone() == (1,)
        result = cursor.result
        assert result.rowcount == N_ROWS
        assert result.columns == ["n"]
        # fetching continues where it left off
        assert cursor.fetchone() == (2,)


class TestLazyExecution:
    def test_limit_stops_pulling_from_scan_early(self, conn):
        cursor = conn.execute("SELECT v FROM numbers LIMIT 5")
        assert len(cursor.fetchall()) == 5
        assert scan_of(cursor).rows_scanned == 5

    def test_fetchone_pulls_incrementally(self, conn):
        cursor = conn.execute("SELECT v FROM numbers")
        assert scan_of(cursor).rows_scanned == 0  # nothing pulled yet
        cursor.fetchone()
        assert scan_of(cursor).rows_scanned == 1
        cursor.fetchmany(10)
        assert scan_of(cursor).rows_scanned == 11

    def test_filtered_limit_scans_only_what_it_needs(self, conn):
        cursor = conn.execute("SELECT v FROM numbers WHERE v % 2 = 0 LIMIT 3")
        assert cursor.fetchall() == [(2,), (4,), (6,)]
        assert scan_of(cursor).rows_scanned == 6

    def test_full_scan_without_limit_reads_all_rows(self, conn):
        cursor = conn.execute("SELECT v FROM numbers")
        cursor.fetchall()
        assert scan_of(cursor).rows_scanned == N_ROWS

    def test_order_by_limit_must_still_scan_everything(self, conn):
        # Sort is a blocking operator: LIMIT cannot cut the scan short.
        cursor = conn.execute("SELECT v FROM numbers ORDER BY v DESC LIMIT 1")
        assert cursor.fetchall() == [(N_ROWS,)]
        assert scan_of(cursor).rows_scanned == N_ROWS

    def test_limit_offset_streams_correct_window(self, conn):
        cursor = conn.execute("SELECT n FROM numbers LIMIT 3 OFFSET 10")
        assert cursor.fetchall() == [(11,), (12,), (13,)]
        assert scan_of(cursor).rows_scanned == 13

    def test_snapshot_taken_at_execute_time(self, conn):
        cursor = conn.execute("SELECT count(*) FROM numbers")
        conn.execute("INSERT INTO numbers (n, v) VALUES (?, ?)", (N_ROWS + 1, 0))
        # the count reflects the table as of execute(), not fetch time
        assert cursor.fetchone() == (N_ROWS,)


class TestCursorLifecycle:
    def test_close_mid_stream_abandons_rest(self, conn):
        cursor = conn.execute("SELECT n FROM numbers")
        assert cursor.fetchmany(2) == [(1,), (2,)]
        scan = scan_of(cursor)
        cursor.close()
        assert scan.rows_scanned == 2  # nothing more was pulled
        with pytest.raises(ExecutionError):
            cursor.fetchone()
        with pytest.raises(ExecutionError):
            cursor.execute("SELECT 1")

    def test_new_execute_discards_previous_stream(self, conn):
        cursor = conn.cursor()
        cursor.execute("SELECT n FROM numbers")
        cursor.fetchone()
        cursor.execute("SELECT n FROM numbers WHERE n > ?", (50,))
        assert cursor.fetchone() == (51,)

    def test_failed_execute_mid_stream_clears_rows(self, conn):
        cursor = conn.cursor()
        cursor.execute("SELECT n FROM numbers")
        cursor.fetchone()
        with pytest.raises(UnknownColumnError):
            cursor.execute("SELECT nonexistent FROM numbers")
        with pytest.raises(ExecutionError):
            cursor.fetchone()

    def test_description_available_before_first_fetch(self, conn):
        cursor = conn.execute("SELECT n, v AS val FROM numbers")
        assert [d[0] for d in cursor.description] == ["n", "val"]
        assert scan_of(cursor).rows_scanned == 0

    def test_expansion_triggers_at_execute_not_fetch(self, conn):
        calls = []

        def handler(table: str, column: str) -> bool:
            calls.append((table, column))
            conn.add_perceptual_column(table, column)
            storage = conn.table(table)
            storage.fill_values(column, {rowid: 1.0 for rowid in storage.rowids()})
            return True

        conn.set_expansion_handler(handler)
        cursor = conn.cursor().execute("SELECT n FROM numbers WHERE shiny > 0.5")
        assert calls == [("numbers", "shiny")]  # before any fetch
        assert cursor.rowcount == N_ROWS
