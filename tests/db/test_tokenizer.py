"""Tests for the SQL tokenizer."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.db.sql.tokenizer import Token, TokenType, tokenize
from repro.errors import SQLSyntaxError


def token_values(sql: str) -> list[tuple[TokenType, str]]:
    return [(t.type, t.value) for t in tokenize(sql) if t.type is not TokenType.EOF]


class TestBasicTokens:
    def test_keywords_are_uppercased(self):
        tokens = token_values("select from where")
        assert tokens == [
            (TokenType.KEYWORD, "SELECT"),
            (TokenType.KEYWORD, "FROM"),
            (TokenType.KEYWORD, "WHERE"),
        ]

    def test_identifiers_are_lowercased(self):
        tokens = token_values("Movies MovieName")
        assert tokens == [
            (TokenType.IDENTIFIER, "movies"),
            (TokenType.IDENTIFIER, "moviename"),
        ]

    def test_quoted_identifier(self):
        tokens = token_values('"Weird Name"')
        assert tokens == [(TokenType.IDENTIFIER, "weird name")]

    def test_unterminated_quoted_identifier(self):
        with pytest.raises(SQLSyntaxError):
            tokenize('"oops')

    def test_numbers(self):
        tokens = token_values("42 3.14 1e5 2.5e-3")
        assert [v for _t, v in tokens] == ["42", "3.14", "1e5", "2.5e-3"]
        assert all(t is TokenType.NUMBER for t, _v in tokens)

    def test_string_literal(self):
        tokens = token_values("'hello world'")
        assert tokens == [(TokenType.STRING, "hello world")]

    def test_string_with_escaped_quote(self):
        tokens = token_values("'it''s'")
        assert tokens == [(TokenType.STRING, "it's")]

    def test_unterminated_string(self):
        with pytest.raises(SQLSyntaxError):
            tokenize("'oops")

    def test_operators(self):
        tokens = token_values("a <= b >= c <> d != e || f")
        operators = [v for t, v in tokens if t is TokenType.OPERATOR]
        assert operators == ["<=", ">=", "<>", "!=", "||"]

    def test_punctuation(self):
        tokens = token_values("(a, b);")
        assert (TokenType.PUNCTUATION, "(") in tokens
        assert (TokenType.PUNCTUATION, ",") in tokens
        assert (TokenType.PUNCTUATION, ";") in tokens

    def test_star_is_operator(self):
        tokens = token_values("SELECT * FROM t")
        assert (TokenType.OPERATOR, "*") in tokens

    def test_comments_are_skipped(self):
        tokens = token_values("SELECT a -- this is a comment\nFROM t")
        values = [v for _t, v in tokens]
        assert "comment" not in values
        assert values == ["SELECT", "a", "FROM", "t"]

    def test_unexpected_character(self):
        with pytest.raises(SQLSyntaxError) as error:
            tokenize("SELECT @")
        assert error.value.position is not None

    def test_parameter_placeholder(self):
        tokens = token_values("SELECT a FROM t WHERE b = ?")
        assert (TokenType.PARAMETER, "?") in tokens

    def test_question_mark_inside_string_literal_is_not_a_parameter(self):
        tokens = tokenize("SELECT 'who?'")
        assert [t.type for t in tokens[:2]] == [TokenType.KEYWORD, TokenType.STRING]
        assert tokens[1].value == "who?"

    def test_eof_token_is_last(self):
        tokens = tokenize("SELECT 1")
        assert tokens[-1].type is TokenType.EOF

    def test_positions_are_recorded(self):
        tokens = tokenize("SELECT name")
        assert tokens[0].position == 0
        assert tokens[1].position == 7

    def test_is_keyword_helper(self):
        token = Token(TokenType.KEYWORD, "SELECT", 0)
        assert token.is_keyword("SELECT")
        assert token.is_keyword("SELECT", "FROM")
        assert not token.is_keyword("FROM")


class TestTokenizerProperties:
    @given(st.integers(min_value=0, max_value=10**12))
    def test_integer_literals_roundtrip(self, value):
        tokens = tokenize(str(value))
        assert tokens[0].type is TokenType.NUMBER
        assert int(tokens[0].value) == value

    @given(st.text(alphabet=st.characters(whitelist_categories=("Ll",), max_codepoint=127), min_size=1, max_size=20))
    def test_identifier_roundtrip(self, name):
        tokens = tokenize(name)
        first = tokens[0]
        assert first.type in (TokenType.IDENTIFIER, TokenType.KEYWORD)
        assert first.value.lower() == name.lower()

    @given(st.text(alphabet=st.characters(blacklist_characters="'", max_codepoint=127), max_size=30))
    def test_string_literal_roundtrip(self, content):
        tokens = tokenize(f"'{content}'")
        assert tokens[0].type is TokenType.STRING
        assert tokens[0].value == content

    @given(st.lists(st.sampled_from(["SELECT", "a", "1", "+", "(", ")", ",", "'x'"]), max_size=15))
    def test_tokenization_never_crashes_on_valid_pieces(self, pieces):
        sql = " ".join(pieces)
        tokens = tokenize(sql)
        assert tokens[-1].type is TokenType.EOF
