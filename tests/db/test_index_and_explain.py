"""Tests for CREATE INDEX and EXPLAIN statements."""

from __future__ import annotations

import pytest

from repro.db.connection import Connection
from repro.db.sql import ast
from repro.db.sql.parser import parse_statement
from repro.errors import SQLSyntaxError, UnknownColumnError, UnknownTableError


@pytest.fixture
def db() -> Connection:
    database = Connection()
    database.run_statement("CREATE TABLE t (a INTEGER PRIMARY KEY, b INTEGER, c TEXT)")
    database.run_statement("INSERT INTO t VALUES (1, 10, 'x'), (2, 20, 'y'), (3, 10, 'z')")
    return database


class TestCreateIndexParsing:
    def test_anonymous_index(self):
        statement = parse_statement("CREATE INDEX ON t (b)")
        assert isinstance(statement, ast.CreateIndexStatement)
        assert statement.table == "t"
        assert statement.column == "b"
        assert statement.name is None

    def test_named_index(self):
        statement = parse_statement("CREATE INDEX idx_b ON t (b)")
        assert statement.name == "idx_b"

    def test_explain_parsing(self):
        statement = parse_statement("EXPLAIN SELECT a FROM t")
        assert isinstance(statement, ast.ExplainStatement)
        assert isinstance(statement.statement, ast.SelectStatement)

    def test_explain_non_select_rejected(self):
        with pytest.raises(SQLSyntaxError):
            parse_statement("EXPLAIN DELETE FROM t")


class TestCreateIndexExecution:
    def test_index_changes_access_path(self, db):
        before = db.run_statement("EXPLAIN SELECT c FROM t WHERE b = 10")
        assert "SeqScan" in before.rows[0][0]
        db.run_statement("CREATE INDEX ON t (b)")
        after = db.run_statement("EXPLAIN SELECT c FROM t WHERE b = 10")
        assert "IndexLookup" in after.rows[0][0]

    def test_indexed_query_results_match_scan(self, db):
        scan_rows = set(db.run_statement("SELECT c FROM t WHERE b = 10").column("c"))
        db.run_statement("CREATE INDEX ON t (b)")
        index_rows = set(db.run_statement("SELECT c FROM t WHERE b = 10").column("c"))
        assert scan_rows == index_rows == {"x", "z"}

    def test_index_on_unknown_table(self, db):
        with pytest.raises(UnknownTableError):
            db.run_statement("CREATE INDEX ON nope (b)")

    def test_index_on_unknown_column(self, db):
        with pytest.raises(UnknownColumnError):
            db.run_statement("CREATE INDEX ON t (nope)")

    def test_index_stays_consistent_after_dml(self, db):
        db.run_statement("CREATE INDEX ON t (b)")
        db.run_statement("UPDATE t SET b = 30 WHERE a = 1")
        db.run_statement("INSERT INTO t VALUES (4, 10, 'w')")
        db.run_statement("DELETE FROM t WHERE a = 3")
        rows = set(db.run_statement("SELECT c FROM t WHERE b = 10").column("c"))
        assert rows == {"w"}


class TestExplainExecution:
    def test_plan_rows_describe_pipeline(self, db):
        result = db.run_statement(
            "EXPLAIN SELECT b, count(*) AS n FROM t WHERE a > 0 GROUP BY b ORDER BY n DESC LIMIT 1"
        )
        text = "\n".join(row[0] for row in result.rows)
        assert result.columns == ["plan"]
        assert "SeqScan" in text
        assert "Aggregate" in text
        assert "Sort" in text
        assert "Limit 1" in text

    def test_explain_does_not_touch_data(self, db):
        db.run_statement("EXPLAIN SELECT * FROM t")
        assert db.run_statement("SELECT count(*) FROM t").scalar() == 3
