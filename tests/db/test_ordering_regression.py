"""Regression: index-backed ORDER BY and Sort-operator ORDER BY agree.

The engine has two ways to order a result set — the ``Sort`` operator's
``_ComparableValue`` and an ordered secondary index walk that eliminates
the Sort.  Both now rank values through the single
:func:`repro.db.types.sort_rank` total order (numbers, then strings, then
other values, then NULL/MISSING last in *both* directions), so the plan
choice can never change the visible row order.  These tests pin that
equivalence on tables containing MISSING cells, the case where the two
code paths historically could diverge.
"""

from __future__ import annotations

import pytest

from repro.db.connection import Connection

_ROWS = (
    (1, 30, "'c'"),
    (2, 10, "'a'"),
    (3, "NULL", "'d'"),
    (4, 20, "'b'"),
    (5, "NULL", "'e'"),
    (6, 15, "NULL"),
)


def _load(with_index: bool) -> Connection:
    db = Connection()
    db.run_statement("CREATE TABLE t (id INTEGER PRIMARY KEY, score INTEGER, tag TEXT)")
    for rid, score, tag in _ROWS:
        db.run_statement(f"INSERT INTO t VALUES ({rid}, {score}, {tag})")
    if with_index:
        db.run_statement("CREATE INDEX ON t (score)")
    return db


def _plan(db: Connection, sql: str) -> str:
    return "\n".join(row[0] for row in db.run_statement(f"EXPLAIN {sql}").rows)


@pytest.mark.parametrize("direction", ["ASC", "DESC"])
class TestIndexBackedOrderMatchesSortOperator:
    def test_plans_differ_but_rows_agree_with_missing_cells(self, direction):
        sql = f"SELECT id, score FROM t ORDER BY score {direction}"
        indexed, plain = _load(with_index=True), _load(with_index=False)
        # The two connections really take the two different code paths.
        assert "IndexRangeScan" in _plan(indexed, sql)
        assert "Sort" in _plan(plain, sql)
        assert "Sort" not in _plan(indexed, sql)
        assert indexed.run_statement(sql).rows == plain.run_statement(sql).rows

    def test_nulls_sort_last_in_both_plans(self, direction):
        sql = f"SELECT id, score FROM t ORDER BY score {direction}"
        for db in (_load(with_index=True), _load(with_index=False)):
            scores = [score for _, score in db.run_statement(sql).rows]
            assert scores[-2:] == [None, None]  # NULLS LAST either direction
            present = scores[:-2]
            assert present == sorted(present, reverse=(direction == "DESC"))

    def test_range_plus_order_agree(self, direction):
        sql = (
            "SELECT id, score FROM t WHERE score >= 12 "
            f"ORDER BY score {direction}"
        )
        indexed, plain = _load(with_index=True), _load(with_index=False)
        assert "IndexRangeScan" in _plan(indexed, sql)
        assert indexed.run_statement(sql).rows == plain.run_statement(sql).rows


class TestMissingPerceptualCellsOrder:
    def test_missing_cells_order_identically_under_both_plans(self):
        def build(with_index: bool) -> Connection:
            db = Connection()
            db.run_statement("CREATE TABLE m (id INTEGER PRIMARY KEY, humor REAL PERCEPTUAL)")
            for rid in range(1, 7):
                db.run_statement(f"INSERT INTO m (id) VALUES ({rid})")
            db.table("m").fill_values(
                "humor", {2: 0.9, 4: 0.1}, provenance="crowd", confidences={2: 1.0, 4: 1.0}
            )
            if with_index:
                db.run_statement("CREATE INDEX ON m (humor)")
            return db

        sql = "SELECT id, humor FROM m ORDER BY humor ASC"
        indexed, plain = build(True), build(False)
        assert "IndexRangeScan" in _plan(indexed, sql)
        assert "Sort" in _plan(plain, sql)
        rows_indexed = indexed.run_statement(sql).rows
        rows_plain = plain.run_statement(sql).rows
        assert rows_indexed == rows_plain
        # Known values first, the four MISSING cells after, rowid-ordered.
        assert [row[0] for row in rows_indexed][:2] == [4, 2]
        assert [row[0] for row in rows_indexed][2:] == [1, 3, 5, 6]
