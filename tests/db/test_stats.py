"""Unit tests for the table statistics layer (repro.db.stats)."""

from __future__ import annotations

import pytest

from repro.db.stats import HISTOGRAM_BUCKETS, KMV_K, ColumnStats, TableStats
from repro.db.types import MISSING


class TestColumnStats:
    def test_min_max_track_numerics_only(self):
        stats = ColumnStats()
        for value in (5, 2.5, "text", None, MISSING, True, 9):
            stats.observe(value)
        assert stats.min_numeric == 1.0  # True counts as 1
        assert stats.max_numeric == 9.0
        assert stats.non_null == 5  # None and MISSING are absent

    def test_ndv_is_exact_below_sketch_capacity(self):
        stats = ColumnStats()
        for value in range(50):
            stats.observe(value)
            stats.observe(value)  # duplicates must not inflate
        assert stats.ndv == 50

    def test_ndv_estimates_large_cardinalities(self):
        stats = ColumnStats()
        n = 20_000
        for value in range(n):
            stats.observe(value)
        assert len(stats._kmv) == KMV_K
        assert 0.7 * n <= stats.ndv <= 1.3 * n  # ~9% expected error

    def test_histogram_requires_numeric_spread(self):
        stats = ColumnStats()
        stats.observe(7)
        stats.build_histogram([7])
        assert stats.histogram is None  # high <= low: no buckets
        spread = ColumnStats()
        for value in range(100):
            spread.observe(value)
        spread.build_histogram(range(100))
        assert len(spread.histogram) == HISTOGRAM_BUCKETS
        assert sum(spread.histogram) == 100

    def test_range_fraction_without_stats_is_none(self):
        assert ColumnStats().range_fraction(0, 10) is None

    def test_range_fraction_linear_interpolation(self):
        stats = ColumnStats()
        stats.observe(0)
        stats.observe(100)
        assert stats.range_fraction(0, 50) == pytest.approx(0.5)
        assert stats.range_fraction(200, 300) == 0.0
        assert stats.range_fraction(None, None) == pytest.approx(1.0)

    def test_range_fraction_histogram_beats_interpolation_on_skew(self):
        stats = ColumnStats()
        values = [0] * 99 + [100]
        for value in values:
            stats.observe(value)
        stats.build_histogram(values)
        # 99% of values sit in the first bucket; interpolation would say ~10%.
        assert stats.range_fraction(0, 10) >= 0.9

    def test_state_round_trip(self):
        stats = ColumnStats()
        for value in range(200):
            stats.observe(value)
        stats.build_histogram(range(200))
        clone = ColumnStats.from_state(stats.to_state())
        assert clone.non_null == stats.non_null
        assert clone.ndv == stats.ndv
        assert clone.histogram == stats.histogram
        assert clone.min_numeric == stats.min_numeric


class TestTableStats:
    def test_observe_and_forget_rows(self):
        stats = TableStats()
        stats.observe_row({"a": 1, "b": "x"})
        stats.observe_row({"a": 2, "b": "y"})
        stats.forget_row()
        assert stats.row_count == 1
        stats.forget_row()
        stats.forget_row()  # never goes negative
        assert stats.row_count == 0
        assert stats.column("a").non_null == 2  # sketches are not shrunk

    def test_estimate_equality_uses_ndv(self):
        stats = TableStats()
        for i in range(100):
            stats.observe_row({"a": i % 10})
        assert stats.estimate_equality("a", 100) == 10
        # A column with no observations estimates the full table.
        assert stats.estimate_equality("zzz", 100) == 100

    def test_estimate_range_falls_back_to_default_selectivity(self):
        stats = TableStats()
        stats.observe_row({"s": "text-only"})
        est = stats.estimate_range("s", 100, None, None)
        assert est == round(100 * TableStats.DEFAULT_RANGE_SELECTIVITY)
        assert stats.estimate_range("s", 0, None, None) == 0

    def test_analyze_rebuilds_from_scratch(self):
        stats = TableStats()
        for i in range(50):
            stats.observe_row({"a": i})
        stats.analyze([{"a": 1}, {"a": 2}])
        assert stats.row_count == 2
        assert stats.column("a").non_null == 2

    def test_column_summaries_shape(self):
        stats = TableStats()
        stats.observe_row({"a": 3, "b": "x"})
        summaries = stats.column_summaries()
        assert summaries["a"] == {
            "non_null": 1,
            "ndv": 1,
            "min": 3.0,
            "max": 3.0,
            "histogram_buckets": 0,
        }
        assert summaries["b"]["min"] is None

    def test_state_round_trip(self):
        stats = TableStats()
        for i in range(30):
            stats.observe_row({"a": i, "b": f"s{i}"})
        clone = TableStats()
        clone.load_state(stats.to_state())
        assert clone.row_count == 30
        assert clone.column("a").ndv == stats.column("a").ndv
        assert clone.estimate_range("a", 30, 0, 14) == stats.estimate_range("a", 30, 0, 14)
