"""Tests for the DB-API-style connection layer (connect/Connection/Cursor)."""

from __future__ import annotations

import threading

import pytest

from repro.db import Catalog, Connection, SessionContext, connect
from repro.db.types import ColumnType, MISSING
from repro.errors import (
    ExecutionError,
    ParameterBindingError,
    UnknownColumnError,
)


@pytest.fixture
def conn() -> Connection:
    connection = connect()
    cursor = connection.cursor()
    cursor.execute(
        "CREATE TABLE movies ("
        " movie_id INTEGER PRIMARY KEY,"
        " name TEXT NOT NULL,"
        " year INTEGER,"
        " rating REAL)"
    )
    cursor.executemany(
        "INSERT INTO movies (movie_id, name, year, rating) VALUES (?, ?, ?, ?)",
        [
            (1, "Rocky", 1976, 8.1),
            (2, "Psycho", 1960, 8.5),
            (3, "Airplane!", 1980, 7.7),
            (4, "Vertigo", 1958, 8.3),
            (5, "Dirty Dancing", 1987, 7.0),
        ],
    )
    return connection


class TestCursorBasics:
    def test_execute_returns_cursor_for_chaining(self, conn):
        row = conn.cursor().execute("SELECT name FROM movies WHERE movie_id = ?", (1,)).fetchone()
        assert row == ("Rocky",)

    def test_fetchone_exhaustion(self, conn):
        cursor = conn.execute("SELECT name FROM movies WHERE movie_id = ?", (2,))
        assert cursor.fetchone() == ("Psycho",)
        assert cursor.fetchone() is None

    def test_fetchmany_and_arraysize(self, conn):
        cursor = conn.execute("SELECT movie_id FROM movies ORDER BY movie_id")
        assert cursor.fetchmany(2) == [(1,), (2,)]
        cursor.arraysize = 2
        assert cursor.fetchmany() == [(3,), (4,)]
        assert cursor.fetchall() == [(5,)]

    def test_iteration_protocol(self, conn):
        cursor = conn.execute("SELECT name FROM movies WHERE year > ? ORDER BY year", (1975,))
        assert [name for (name,) in cursor] == ["Rocky", "Airplane!", "Dirty Dancing"]

    def test_description_for_select(self, conn):
        cursor = conn.execute("SELECT name, year AS y FROM movies LIMIT 1")
        assert [d[0] for d in cursor.description] == ["name", "y"]
        assert all(len(d) == 7 for d in cursor.description)

    def test_description_none_for_dml(self, conn):
        cursor = conn.execute("INSERT INTO movies (movie_id, name) VALUES (?, ?)", (9, "Alien"))
        assert cursor.description is None

    def test_rowcount(self, conn):
        assert conn.execute("SELECT * FROM movies").rowcount == 5
        assert conn.execute("UPDATE movies SET rating = ? WHERE year < ?", (9.0, 1970)).rowcount == 2

    def test_closed_cursor_raises(self, conn):
        cursor = conn.cursor()
        cursor.close()
        with pytest.raises(ExecutionError):
            cursor.execute("SELECT 1")

    def test_fetch_before_execute_raises(self, conn):
        with pytest.raises(ExecutionError):
            conn.cursor().fetchall()

    def test_failed_execute_clears_previous_result(self, conn):
        cursor = conn.cursor()
        cursor.execute("SELECT name FROM movies WHERE movie_id = ?", (1,))
        with pytest.raises(UnknownColumnError):
            cursor.execute("SELECT nope FROM movies")
        # The earlier query's rows must not leak out of the failed execute.
        with pytest.raises(ExecutionError):
            cursor.fetchall()

    def test_cursor_context_manager(self, conn):
        with conn.cursor() as cursor:
            assert cursor.execute("SELECT count(*) FROM movies").fetchone() == (5,)
        with pytest.raises(ExecutionError):
            cursor.execute("SELECT 1")


class TestParameterBinding:
    def test_parameters_in_where(self, conn):
        rows = conn.execute(
            "SELECT name FROM movies WHERE year BETWEEN ? AND ? ORDER BY year", (1960, 1980)
        ).fetchall()
        assert rows == [("Psycho",), ("Rocky",), ("Airplane!",)]

    def test_parameters_in_projection_and_in_list(self, conn):
        rows = conn.execute(
            "SELECT name, ? FROM movies WHERE movie_id IN (?, ?) ORDER BY movie_id",
            ("tag", 1, 3),
        ).fetchall()
        assert rows == [("Rocky", "tag"), ("Airplane!", "tag")]

    def test_question_mark_inside_string_literal_is_not_a_placeholder(self, conn):
        conn.execute("INSERT INTO movies (movie_id, name) VALUES (?, 'Who? Me?')", (7,))
        rows = conn.execute("SELECT name FROM movies WHERE name = 'Who? Me?'").fetchall()
        assert rows == [("Who? Me?",)]

    def test_too_few_parameters(self, conn):
        with pytest.raises(ParameterBindingError, match="2 parameters, 1 given"):
            conn.execute("SELECT * FROM movies WHERE movie_id = ? AND year = ?", (1,))

    def test_too_many_parameters(self, conn):
        with pytest.raises(ParameterBindingError, match="1 parameter, 2 given"):
            conn.execute("SELECT * FROM movies WHERE movie_id = ?", (1, 2))

    def test_parameters_without_placeholders(self, conn):
        with pytest.raises(ParameterBindingError):
            conn.execute("SELECT * FROM movies", (1,))

    def test_string_parameters_rejected(self, conn):
        with pytest.raises(TypeError):
            conn.execute("SELECT * FROM movies WHERE name = ?", "Rocky")

    def test_none_binds_as_null(self, conn):
        conn.execute("UPDATE movies SET rating = ? WHERE movie_id = ?", (None, 1))
        assert conn.execute(
            "SELECT count(*) FROM movies WHERE rating IS NULL"
        ).fetchone() == (1,)

    def test_parameterized_point_lookup_uses_index(self, conn):
        plan = conn.explain("SELECT name FROM movies WHERE movie_id = ?")
        assert "IndexLookup" in plan

    def test_parameters_in_delete(self, conn):
        assert conn.execute("DELETE FROM movies WHERE year < ?", (1960,)).rowcount == 1


class TestExecutemany:
    def test_batch_insert(self, conn):
        cursor = conn.executemany(
            "INSERT INTO movies (movie_id, name) VALUES (?, ?)",
            [(10, "Alien"), (11, "Brazil"), (12, "Clue")],
        )
        assert cursor.rowcount == 3
        assert conn.execute("SELECT count(*) FROM movies").fetchone() == (8,)

    def test_batch_update(self, conn):
        cursor = conn.executemany(
            "UPDATE movies SET rating = ? WHERE movie_id = ?",
            [(1.0, 1), (2.0, 2)],
        )
        assert cursor.rowcount == 2

    def test_empty_parameter_sequence(self, conn):
        assert conn.executemany("INSERT INTO movies (movie_id, name) VALUES (?, ?)", []).rowcount == 0

    def test_select_is_rejected(self, conn):
        with pytest.raises(ExecutionError, match="executemany"):
            conn.executemany("SELECT * FROM movies WHERE movie_id = ?", [(1,)])

    def test_statement_prepared_once(self, conn):
        before = conn.cache_stats()
        conn.executemany(
            "INSERT INTO movies (movie_id, name) VALUES (?, ?)",
            [(20 + i, f"m{i}") for i in range(10)],
        )
        after = conn.cache_stats()
        # One prepare for the whole batch: a single miss, no per-tuple lookups.
        assert after.misses == before.misses + 1
        assert after.hits == before.hits


class TestStatementCache:
    def test_repeated_query_hits_cache(self, conn):
        sql = "SELECT name FROM movies WHERE movie_id = ?"
        for movie_id in (1, 2, 3):
            conn.execute(sql, (movie_id,))
        stats = conn.cache_stats()
        assert stats.hits >= 2
        assert sql in conn.statement_cache

    def test_distinct_sql_misses(self, conn):
        before = conn.cache_stats().misses
        conn.execute("SELECT name FROM movies WHERE movie_id = 1")
        conn.execute("SELECT name  FROM movies WHERE movie_id = 1")  # different text
        assert conn.cache_stats().misses == before + 2

    def test_ddl_invalidates_cached_plan(self, conn):
        sql = "SELECT * FROM movies WHERE movie_id = ?"
        first = conn.execute(sql, (1,))
        assert len(first.result.columns) == 4
        conn.execute("ALTER TABLE movies ADD COLUMN country TEXT")
        second = conn.execute(sql, (1,))
        assert len(second.result.columns) == 5
        assert second.result.columns[-1] == "country"

    def test_create_index_invalidates_cached_plan(self, conn):
        sql = "SELECT name FROM movies WHERE year = ?"
        conn.execute(sql, (1976,))
        assert "SeqScan" in conn.explain(sql)
        conn.execute("CREATE INDEX ON movies (year)")
        assert "IndexLookup" in conn.explain(sql)
        assert conn.execute(sql, (1976,)).fetchall() == [("Rocky",)]

    def test_lru_eviction(self):
        connection = connect(statement_cache_size=2)
        connection.execute("CREATE TABLE t (a INTEGER)")
        connection.execute("SELECT a FROM t")
        connection.execute("SELECT a + 1 FROM t")
        connection.execute("SELECT a + 2 FROM t")
        stats = connection.cache_stats()
        assert stats.size == 2
        assert stats.evictions >= 1

    def test_cache_disabled(self):
        connection = connect(statement_cache_size=0)
        connection.execute("CREATE TABLE t (a INTEGER)")
        connection.execute("SELECT a FROM t")
        connection.execute("SELECT a FROM t")
        stats = connection.cache_stats()
        assert stats.hits == 0
        assert stats.size == 0

    def test_hit_rate(self, conn):
        conn.execute("SELECT 1")
        conn.execute("SELECT 1")
        stats = conn.cache_stats()
        assert 0.0 < stats.hit_rate < 1.0


class TestConnectionLifecycle:
    def test_context_manager_closes(self):
        with connect() as connection:
            connection.execute("CREATE TABLE t (a INTEGER)")
        assert connection.closed
        with pytest.raises(ExecutionError):
            connection.execute("SELECT 1")

    def test_cursor_after_close_raises(self):
        connection = connect()
        connection.close()
        with pytest.raises(ExecutionError):
            connection.cursor()

    def test_commit_is_noop_and_rollback_unsupported(self, conn):
        conn.commit()
        with pytest.raises(ExecutionError):
            conn.rollback()

    def test_statement_log_is_bounded(self):
        connection = connect(statement_log_size=3)
        connection.execute("CREATE TABLE t (a INTEGER)")
        for i in range(5):
            connection.execute("INSERT INTO t VALUES (?)", (i,))
        assert len(connection.statement_log) == 3
        assert all(sql == "INSERT INTO t VALUES (?)" for sql in connection.statement_log)

    def test_executemany_logs_sql_once_per_batch(self):
        connection = connect()
        connection.execute("CREATE TABLE t (a INTEGER)")
        connection.executemany("INSERT INTO t VALUES (?)", [(i,) for i in range(50)])
        assert list(connection.statement_log).count("INSERT INTO t VALUES (?)") == 1

    def test_add_perceptual_column_accepts_type_names(self):
        # A raw string in Column.type would crash the durability journal
        # (snapshot.column_state reads column.type.value), so SQL type names
        # must be normalised to ColumnType at this surface.
        connection = connect()
        connection.execute("CREATE TABLE t (a INTEGER)")
        column = connection.add_perceptual_column("t", "appeal", "REAL")
        assert column.type is ColumnType.REAL
        booleanish = connection.add_perceptual_column("t", "funny", "bool")
        assert booleanish.type is ColumnType.BOOLEAN

    def test_execute_script_logs_individual_statements(self):
        connection = connect()
        connection.execute_script(
            "CREATE TABLE t (a INTEGER); INSERT INTO t VALUES (1); SELECT a FROM t"
        )
        assert connection.statement_log == (
            "CREATE TABLE t (a INTEGER)",
            "INSERT INTO t VALUES (1)",
            "SELECT a FROM t",
        )


class TestSessionScopedCrowdContext:
    def _shared_catalog(self) -> Catalog:
        catalog = Catalog()
        setup = Connection(catalog)
        setup.execute("CREATE TABLE items (item_id INTEGER PRIMARY KEY, score REAL)")
        setup.executemany(
            "INSERT INTO items (item_id, score) VALUES (?, ?)",
            [(i, None) for i in range(1, 6)],
        )
        setup.table("items").fill_values("score", {rowid: MISSING for rowid in range(1, 6)})
        return catalog

    def test_two_connections_with_different_resolvers(self):
        catalog = self._shared_catalog()

        def resolver_for(value):
            def resolver(ref, row):
                return value

            return resolver

        low = Connection(catalog, session=SessionContext(missing_resolver=resolver_for(0.1)))
        high = Connection(catalog, session=SessionContext(missing_resolver=resolver_for(0.9)))
        query = "SELECT count(*) FROM items WHERE score > ?"
        assert low.execute(query, (0.5,)).fetchone() == (0,)
        assert high.execute(query, (0.5,)).fetchone() == (5,)

    def test_concurrent_connections_do_not_clobber_each_other(self):
        catalog = self._shared_catalog()
        failures: list[str] = []

        def run(value, expected):
            session = SessionContext(missing_resolver=lambda ref, row: value)
            connection = Connection(catalog, session=session)
            for _ in range(50):
                (count,) = connection.execute(
                    "SELECT count(*) FROM items WHERE score > ?", (0.5,)
                ).fetchone()
                if count != expected:
                    failures.append(f"resolver {value} saw count {count}")
                    return

        threads = [
            threading.Thread(target=run, args=(0.1, 0)),
            threading.Thread(target=run, args=(0.9, 5)),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert failures == []

    def test_concurrent_reader_and_writer_on_shared_catalog(self):
        catalog = self._shared_catalog()
        errors: list[Exception] = []

        def reader():
            connection = Connection(catalog)
            try:
                for _ in range(300):
                    connection.column_values("items", "score")
                    connection.missing_count("items", "score")
            except Exception as exc:  # pragma: no cover - only on regression
                errors.append(exc)

        def writer():
            connection = Connection(catalog)
            try:
                for i in range(300):
                    connection.execute(
                        "INSERT INTO items (item_id, score) VALUES (?, ?)", (100 + i, 0.5)
                    )
            except Exception as exc:  # pragma: no cover - only on regression
                errors.append(exc)

        threads = [threading.Thread(target=reader), threading.Thread(target=writer)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []

    def test_slow_missing_resolver_does_not_block_other_connections(self):
        import time

        catalog = self._shared_catalog()

        def slow_resolver(ref, row):
            time.sleep(0.4)  # crowd-sourcing one MISSING cell
            return 1.0

        resolving = Connection(catalog, session=SessionContext(missing_resolver=slow_resolver))
        probing = Connection(catalog)
        latencies: list[float] = []

        def probe():
            time.sleep(0.2)  # land inside the resolver's crowd time
            for _ in range(3):
                start = time.perf_counter()
                probing.execute("SELECT count(*) FROM items").fetchone()
                latencies.append(time.perf_counter() - start)
                time.sleep(0.05)

        threads = [
            threading.Thread(
                target=lambda: resolving.execute(
                    "SELECT count(*) FROM items WHERE score > ?", (0.5,)
                )
            ),
            threading.Thread(target=probe),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        # Evaluation (where the resolver runs) happens on row copies outside
        # the catalog lock, so the probing connection must stay fast.
        assert latencies and max(latencies) < 0.25

    def test_slow_expansion_does_not_block_other_connections(self):
        import time

        catalog = Catalog()
        expanding = Connection(catalog)
        probing = Connection(catalog)
        expanding.execute("CREATE TABLE t (id INTEGER PRIMARY KEY)")
        expanding.execute("INSERT INTO t (id) VALUES (1)")

        def slow_handler(table, column):
            time.sleep(0.5)  # stands in for minutes of crowd-sourcing
            expanding.add_perceptual_column(table, column, ColumnType.BOOLEAN)
            storage = expanding.table(table)
            storage.fill_values(column, {r: True for r in storage.rowids()})
            return True

        expanding.set_expansion_handler(slow_handler)
        latencies: list[float] = []

        def probe():
            time.sleep(0.1)  # let the expansion start first
            for _ in range(3):
                start = time.perf_counter()
                probing.execute("SELECT count(*) FROM t").fetchone()
                latencies.append(time.perf_counter() - start)
                time.sleep(0.05)

        threads = [
            threading.Thread(
                target=lambda: expanding.execute("SELECT id FROM t WHERE slow = ?", (True,))
            ),
            threading.Thread(target=probe),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        # The handler runs outside the catalog lock, so the probing
        # connection's queries must not wait out the 0.5 s expansion.
        assert latencies and max(latencies) < 0.25

    def test_session_scoped_expansion_with_parameters(self):
        connection = connect()
        connection.execute("CREATE TABLE movies (movie_id INTEGER PRIMARY KEY, name TEXT)")
        connection.executemany(
            "INSERT INTO movies (movie_id, name) VALUES (?, ?)",
            [(1, "Rocky"), (2, "Psycho")],
        )

        calls = []

        def handler(table, column):
            calls.append((table, column))
            connection.add_perceptual_column(table, column, ColumnType.BOOLEAN)
            storage = connection.table(table)
            storage.fill_values(column, {rowid: rowid == 1 for rowid in storage.rowids()})
            return True

        connection.set_expansion_handler(handler)
        rows = connection.execute(
            "SELECT name FROM movies WHERE is_comedy = ? AND movie_id = ?", (True, 1)
        ).fetchall()
        assert rows == [("Rocky",)]
        assert calls == [("movies", "is_comedy")]

    def test_expansion_is_per_session_not_global(self):
        catalog = Catalog()
        first = Connection(catalog)
        second = Connection(catalog)
        first.execute("CREATE TABLE t (item_id INTEGER PRIMARY KEY)")
        first.execute("INSERT INTO t (item_id) VALUES (1)")

        def handler(table, column):
            first.add_perceptual_column(table, column, ColumnType.BOOLEAN)
            storage = first.table(table)
            storage.fill_values(column, {rowid: True for rowid in storage.rowids()})
            return True

        first.set_expansion_handler(handler)
        # The second connection shares the catalog but has no handler.
        with pytest.raises(UnknownColumnError):
            second.execute("SELECT item_id FROM t WHERE missing_attr = ?", (True,))
        assert first.execute("SELECT item_id FROM t WHERE is_new = ?", (True,)).fetchall() == [(1,)]

    def test_execute_script_triggers_expansion(self):
        connection = connect()
        connection.execute("CREATE TABLE movies (movie_id INTEGER PRIMARY KEY, name TEXT)")
        connection.execute("INSERT INTO movies (movie_id, name) VALUES (1, 'Rocky')")

        def handler(table, column):
            connection.add_perceptual_column(table, column, ColumnType.BOOLEAN)
            storage = connection.table(table)
            storage.fill_values(column, {rowid: True for rowid in storage.rowids()})
            return True

        connection.set_expansion_handler(handler)
        results = connection.execute_script(
            "SELECT name FROM movies WHERE is_comedy = true"
        )
        assert results[0].rows == [("Rocky",)]

    def test_budget_exhausted_session(self):
        session = SessionContext(max_cost=1.0)
        assert not session.budget_exhausted
        assert session.remaining_budget == 1.0
        session.record_cost(0.6)
        assert session.remaining_budget == pytest.approx(0.4)
        session.record_cost(0.6)
        assert session.budget_exhausted
        assert session.remaining_budget == 0.0

    def test_connection_exposes_session(self):
        db = Connection()
        assert isinstance(db.session, SessionContext)
        resolver = lambda ref, row: 1.0  # noqa: E731
        db.set_missing_resolver(resolver)
        assert db.session.missing_resolver is resolver
