"""Crash-recovery property matrix for the paged storage layer.

Hypothesis draws a kill point — a scenario (buffer-pool write-back churn,
ordered-index build, checkpoint storm) and a progress threshold — and a
writer subprocess running with ``synchronous=full`` is SIGKILLed there.
Recovery must always come up clean with exactly a contiguous committed
prefix, and every query answered through a recovered ordered index must
match the answer computed from the recovered base rows (i.e. recovered
indexes are indistinguishable from indexes rebuilt from scratch).
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import textwrap
import time
from pathlib import Path

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro

#: Writer subprocess.  Scenario knobs:
#:   writeback  — 2-page buffer pool, every insert churns eviction/write-back
#:   indexbuild — bulk rows, then CREATE INDEX (parent kills on "INDEXING")
#:   checkpoint — checkpoint every 2 commits, kill lands mid-checkpoint
_WRITER = textwrap.dedent(
    """
    import sys
    import repro

    scenario, path = sys.argv[1], sys.argv[2]
    kwargs = {"synchronous": "full"}
    if scenario == "writeback":
        kwargs["buffer_pool_pages"] = 2
    if scenario == "checkpoint":
        kwargs["checkpoint_interval"] = 2
    conn = repro.connect(path=path, **kwargs)
    conn.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)")
    if scenario == "indexbuild":
        for i in range(1, 401):
            conn.execute("INSERT INTO t (id, v) VALUES (?, ?)", (i, (i * 37) % 101))
        print("INDEXING", flush=True)
        conn.execute("CREATE INDEX ON t (v)")
        print("INDEXED", flush=True)
    else:
        conn.execute("CREATE INDEX ON t (v)")
    i = 400 if scenario == "indexbuild" else 0
    while True:
        i += 1
        conn.execute("INSERT INTO t (id, v) VALUES (?, ?)", (i, (i * 37) % 101))
        print(i, flush=True)  # acknowledged: the WAL record is fsynced
    """
)


def _spawn_writer(scenario: str, db_path: Path) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(Path(__file__).resolve().parents[2] / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return subprocess.Popen(
        [sys.executable, "-c", _WRITER, scenario, str(db_path)],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        env=env,
        text=True,
    )


def _kill_after(process: subprocess.Popen, threshold: int, scenario: str) -> int:
    """Read progress lines until the kill point, then SIGKILL; returns the
    number of acknowledged inserts."""
    acknowledged = 0
    deadline = time.monotonic() + 60
    while True:
        assert time.monotonic() < deadline, (
            "writer made no progress; stderr: "
            + str(process.stderr.read() if process.poll() is not None else "")
        )
        line = process.stdout.readline().strip()
        if not line:
            continue
        if line == "INDEXING":
            if scenario == "indexbuild":
                break  # kill lands while CREATE INDEX is building the run
            continue
        if line == "INDEXED":
            continue
        acknowledged = int(line)
        if scenario != "indexbuild" and acknowledged >= threshold:
            break
    process.send_signal(signal.SIGKILL)
    return acknowledged


class TestCrashRecoveryMatrix:
    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.function_scoped_fixture],
    )
    @given(
        scenario=st.sampled_from(("writeback", "indexbuild", "checkpoint")),
        threshold=st.integers(min_value=3, max_value=30),
        low=st.integers(min_value=0, max_value=100),
        span=st.integers(min_value=0, max_value=60),
    )
    def test_kill_point_leaves_committed_prefix_and_sound_indexes(
        self, tmp_path_factory, scenario, threshold, low, span
    ):
        db_path = tmp_path_factory.mktemp("crash") / "db"
        process = _spawn_writer(scenario, db_path)
        try:
            acknowledged = _kill_after(process, threshold, scenario)
        finally:
            process.kill()
            process.wait(timeout=30)

        recovered = repro.connect(path=db_path)
        try:
            rows = recovered.execute("SELECT id, v FROM t ORDER BY id").fetchall()
            ids = [row[0] for row in rows]
            # Committed-prefix property: every acknowledged insert survived,
            # and nothing beyond a contiguous prefix raced in.
            floor = 400 if scenario == "indexbuild" else acknowledged
            assert len(ids) >= floor
            assert ids == list(range(1, len(ids) + 1))

            # Recovered-index soundness: a range query answered through the
            # ordered index (when it survived) must equal the answer computed
            # from the recovered base rows — i.e. rebuilt-from-scratch.
            high = low + span
            expected = sorted(
                (v, rid) for rid, v in rows if low <= v <= high
            )
            got = recovered.execute(
                f"SELECT v, id FROM t WHERE v BETWEEN {low} AND {high} ORDER BY v, id"
            ).fetchall()
            assert [tuple(pair) for pair in got] == expected
        finally:
            recovered.close()
