"""Tests for open-world crowd enumeration and the unified acquisition policy.

Covers the whole ``FROM CROWD`` surface: SQL parsing of the enumeration
constraints, the Chao92 stopping rule of ``CrowdEnumerate`` (completeness /
budget / dry-streak), EXPLAIN ANALYZE statistics, the ``INSERT ... FROM
CROWD`` dedup-and-fill path with crowd provenance, determinism across
runtime concurrency levels, SIGKILL crash recovery of enumerated rows, and
the ``AcquisitionPolicy`` / ``PRAGMA acquisition_*`` configuration surface.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import textwrap
import time
from pathlib import Path

import pytest

import repro
from repro.crowd.platform import CrowdPlatform
from repro.crowd.sources import SimulatedCrowdValueSource
from repro.crowd.worker import WorkerPool
from repro.db.acquisition import AcquisitionPolicy
from repro.db.connection import Connection, SessionContext, connect
from repro.db.sql import ast
from repro.db.sql.parser import parse_statement
from repro.errors import ExecutionError, SQLSyntaxError

#: n=20 with 25 answers/batch: the Chao92 stop at >= 0.9 estimated coverage
#: lands at >= 0.9 *true* coverage after 3 batches (deterministic, seed 7).
UNIVERSE = [f"species-{i:02d}" for i in range(20)]


def make_source(seed: int = 7, answers_per_batch: int = 25, **kwargs):
    return SimulatedCrowdValueSource(
        CrowdPlatform(seed=11),
        WorkerPool.build(n_honest=5, seed=3),
        truth={},
        seed=seed,
        universe={"birds": UNIVERSE},
        answers_per_batch=answers_per_batch,
        payment_per_hit=0.05,
        **kwargs,
    )


def make_conn(source=None, session: SessionContext | None = None) -> Connection:
    conn = Connection(session=session)
    if source is not None:
        conn.set_value_source(source)
    conn.run_statement("CREATE TABLE birds (bird_id INTEGER PRIMARY KEY, name TEXT)")
    return conn


class TestParsing:
    def test_select_from_crowd_with_constraints(self):
        statement = parse_statement(
            "SELECT value FROM CROWD 'birds' WITH COMPLETENESS >= 0.9 AND BUDGET <= 2.5"
        )
        assert isinstance(statement, ast.SelectStatement)
        assert statement.from_crowd is not None
        assert statement.from_crowd.predicate == "birds"
        assert statement.from_crowd.completeness == pytest.approx(0.9)
        assert statement.from_crowd.budget == pytest.approx(2.5)

    def test_insert_from_crowd_defaults_predicate_to_table_column(self):
        statement = parse_statement("INSERT INTO birds (name) FROM CROWD")
        assert isinstance(statement, ast.InsertFromCrowdStatement)
        assert statement.crowd.predicate == "birds.name"

    def test_insert_from_crowd_with_where_predicate(self):
        statement = parse_statement(
            "INSERT INTO birds (name) FROM CROWD WHERE 'birds' WITH BUDGET <= 1.0"
        )
        assert isinstance(statement, ast.InsertFromCrowdStatement)
        assert statement.crowd.predicate == "birds"
        assert statement.crowd.budget == pytest.approx(1.0)

    def test_duplicate_constraint_rejected(self):
        with pytest.raises(SQLSyntaxError):
            parse_statement(
                "SELECT value FROM CROWD 'x' WITH COMPLETENESS >= 0.5 AND COMPLETENESS >= 0.9"
            )

    def test_out_of_range_completeness_rejected(self):
        with pytest.raises(SQLSyntaxError):
            parse_statement("SELECT value FROM CROWD 'x' WITH COMPLETENESS >= 1.5")

    def test_plain_insert_still_parses(self):
        statement = parse_statement("INSERT INTO birds (bird_id, name) VALUES (1, 'a')")
        assert isinstance(statement, ast.InsertStatement)


class TestStoppingRules:
    def test_completeness_stop_reaches_true_coverage(self):
        conn = make_conn(make_source())
        cur = conn.execute(
            "INSERT INTO birds (name) FROM CROWD WHERE 'birds' WITH COMPLETENESS >= 0.9"
        )
        stats = cur.result.enumeration
        assert stats["stopped_on"] == "completeness"
        # Stopped before exhausting the simulated universe...
        assert stats["batches"] < conn.session.max_enum_batches
        # ...yet covering >= 0.9 of the true population.
        assert stats["unique_seen"] / len(UNIVERSE) >= 0.9
        assert 0.0 <= stats["est_coverage"] <= 1.0
        assert stats["est_coverage"] >= 0.9
        assert cur.rowcount == stats["rows_enumerated"]

    def test_budget_stop(self):
        conn = make_conn(make_source())
        cur = conn.execute(
            "INSERT INTO birds (name) FROM CROWD WHERE 'birds' WITH BUDGET <= 0.08"
        )
        stats = cur.result.enumeration
        assert stats["stopped_on"] == "budget"
        assert stats["cost"] <= 0.08 + 1e-9

    def test_session_budget_stops_enumeration(self):
        session = SessionContext(max_cost=0.05)
        conn = make_conn(make_source(), session=session)
        cur = conn.execute("INSERT INTO birds (name) FROM CROWD WHERE 'birds'")
        stats = cur.result.enumeration
        assert stats["stopped_on"] == "budget"
        assert session.cost_spent <= 0.05 + 1e-9

    def test_unknown_predicate_dries_out(self):
        conn = make_conn(make_source())
        cur = conn.execute("INSERT INTO birds (name) FROM CROWD WHERE 'no such universe'")
        stats = cur.result.enumeration
        assert cur.rowcount == 0
        assert stats["stopped_on"] == "exhausted"
        assert stats["rows_enumerated"] == 0

    def test_requires_value_source(self):
        conn = make_conn()
        with pytest.raises(ExecutionError, match="value source"):
            conn.execute("INSERT INTO birds (name) FROM CROWD WHERE 'birds'")


class TestInsertFromCrowd:
    def test_rows_get_crowd_provenance_and_fresh_pks(self):
        conn = make_conn(make_source())
        cur = conn.execute(
            "INSERT INTO birds (name) FROM CROWD WHERE 'birds' WITH COMPLETENESS >= 0.9"
        )
        assert cur.rowcount > 0
        assert conn.provenance_counts("birds", "name") == {"crowd": cur.rowcount}
        ids = [row[0] for row in conn.execute("SELECT bird_id FROM birds ORDER BY bird_id")]
        assert ids == list(range(1, cur.rowcount + 1))

    def test_reinsert_dedups_against_existing_rows(self):
        conn = make_conn(make_source())
        sql = "INSERT INTO birds (name) FROM CROWD WHERE 'birds' WITH COMPLETENESS >= 0.9"
        first = conn.execute(sql).rowcount
        assert first > 0
        again = conn.execute(sql)
        assert again.rowcount == 0
        assert conn.execute("SELECT count(*) FROM birds").fetchone() == (first,)

    def test_manual_rows_also_dedup(self):
        conn = make_conn(make_source())
        # Pre-seed one species with different case/whitespace: entity
        # resolution must recognise it and not insert a duplicate.
        conn.execute(
            "INSERT INTO birds (bird_id, name) VALUES (100, '  SPECIES-00 ')"
        )
        conn.execute(
            "INSERT INTO birds (name) FROM CROWD WHERE 'birds' WITH COMPLETENESS >= 0.9"
        )
        names = [
            row[0].strip().lower()
            for row in conn.execute("SELECT name FROM birds").fetchall()
        ]
        assert names.count("species-00") == 1

    def test_explain_analyze_reports_enumeration_statistics(self):
        conn = make_conn(make_source())
        plan = conn.explain_analyze(
            "SELECT value FROM CROWD 'birds' WITH COMPLETENESS >= 0.9"
        )
        assert "CrowdEnumerate" in plan
        for token in ("rows_enumerated", "unique_seen", "est_total", "est_coverage", "stopped_on"):
            assert token in plan

    def test_select_from_crowd_streams_rows(self):
        conn = make_conn(make_source())
        rows = conn.execute(
            "SELECT value FROM CROWD 'birds' WITH COMPLETENESS >= 0.9 ORDER BY value"
        ).fetchall()
        assert rows == sorted(rows)
        assert len(rows) >= 0.9 * len(UNIVERSE)

    def test_limit_stops_pulling_early(self):
        source = make_source()
        conn = make_conn(source)
        rows = conn.execute("SELECT value FROM CROWD 'birds' LIMIT 3").fetchall()
        assert len(rows) == 3
        # One batch already yields 25 answers, so LIMIT 3 needs exactly one.
        assert source.dispatches == 1


class TestDeterminism:
    def enumerate_with_concurrency(self, max_concurrent_batches: int) -> list[str]:
        session = SessionContext(max_concurrent_batches=max_concurrent_batches)
        conn = make_conn(make_source(seed=42), session=session)
        conn.execute(
            "INSERT INTO birds (name) FROM CROWD WHERE 'birds' WITH COMPLETENESS >= 0.9"
        )
        return [
            row[0] for row in conn.execute("SELECT name FROM birds ORDER BY bird_id")
        ]

    def test_same_seed_same_sequence_at_any_concurrency(self):
        sequences = {
            concurrency: self.enumerate_with_concurrency(concurrency)
            for concurrency in (1, 4, 8)
        }
        assert sequences[1] == sequences[4] == sequences[8]
        assert len(sequences[1]) > 0

    def enumerate_with_seed(self, seed: int) -> list[str]:
        conn = make_conn(make_source(seed=seed))
        conn.execute("INSERT INTO birds (name) FROM CROWD WHERE 'birds'")
        return [
            row[0] for row in conn.execute("SELECT name FROM birds ORDER BY bird_id")
        ]

    def test_different_seeds_differ(self):
        assert self.enumerate_with_seed(1) != self.enumerate_with_seed(2)


class TestAcquisitionPolicy:
    def test_connect_accepts_policy(self):
        policy = AcquisitionPolicy(max_cost=3.0, crowd_batch_size=10, completeness_target=0.8)
        conn = connect(policy=policy)
        assert conn.policy.max_cost == 3.0
        assert conn.session.crowd_batch_size == 10
        assert conn.session.completeness_target == pytest.approx(0.8)

    def test_set_policy_replaces_wholesale(self):
        conn = connect()
        conn.set_policy(AcquisitionPolicy(max_cost=1.0))
        assert conn.session.max_cost == 1.0
        conn.set_policy(None)
        assert conn.session.max_cost is None

    def test_legacy_attributes_delegate_to_policy(self):
        session = SessionContext()
        session.max_cost = 2.0
        session.crowd_batch_size = 7
        session.completeness_target = 0.75
        assert session.policy.max_cost == 2.0
        assert session.policy.crowd_batch_size == 7
        assert session.policy.completeness_target == pytest.approx(0.75)

    def test_session_completeness_target_is_the_default_for_enumeration(self):
        session = SessionContext(policy=AcquisitionPolicy(completeness_target=0.9))
        conn = make_conn(make_source(), session=session)
        cur = conn.execute("INSERT INTO birds (name) FROM CROWD WHERE 'birds'")
        assert cur.result.enumeration["stopped_on"] == "completeness"

    def test_policy_and_acquisition_kwargs_conflict(self):
        with pytest.raises(ValueError):
            SessionContext(policy=AcquisitionPolicy(), acquisition=AcquisitionPolicy())

    def test_assigning_acquisition_preserves_budget(self):
        session = SessionContext(max_cost=5.0)
        session.acquisition = AcquisitionPolicy(sample_fraction=0.5)
        assert session.max_cost == 5.0
        assert session.policy.sample_fraction == pytest.approx(0.5)

    def test_policy_validation_rejects_bad_values(self):
        with pytest.raises(ExecutionError):
            AcquisitionPolicy(completeness_target=1.5)
        with pytest.raises(ExecutionError):
            AcquisitionPolicy(max_cost=-1.0)
        with pytest.raises(ExecutionError):
            AcquisitionPolicy(enum_dry_batches=0)

    def test_pragma_read_write_round_trip(self):
        conn = connect()
        conn.execute("PRAGMA acquisition_completeness_target = 0.85")
        assert conn.execute("PRAGMA acquisition_completeness_target").fetchone() == (0.85,)
        conn.execute("PRAGMA acquisition_completeness_target = none")
        assert conn.execute("PRAGMA acquisition_completeness_target").fetchone() == (None,)
        conn.execute("PRAGMA acquisition_crowd_write_back = off")
        assert conn.session.crowd_write_back is False

    def test_pragma_policy_lists_every_knob(self):
        conn = connect()
        rows = dict(conn.execute("PRAGMA acquisition_policy").fetchall())
        from dataclasses import fields

        assert set(rows) == {f.name for f in fields(AcquisitionPolicy)}

    def test_pragma_rejects_unknown_and_invalid(self):
        conn = connect()
        with pytest.raises(ExecutionError):
            conn.execute("PRAGMA acquisition_no_such_knob = 1")
        with pytest.raises(ExecutionError):
            conn.execute("PRAGMA acquisition_completeness_target = 1.5")
        # A failed write leaves the session untouched.
        assert conn.session.completeness_target is None

    def test_deprecated_setters_warn_but_delegate(self):
        conn = connect()
        with pytest.warns(DeprecationWarning):
            conn.set_value_source(None, batch_size=9)
        assert conn.session.crowd_batch_size == 9
        with pytest.warns(DeprecationWarning):
            conn.set_predictor(None, sample_fraction=0.25)
        assert conn.policy.sample_fraction == pytest.approx(0.25)

    def test_deprecated_pipeline_budget_warns_but_delegates(self):
        conn = connect()
        from repro.core.policies import ExpansionPolicy, PolicyResult

        class StubPolicy(ExpansionPolicy):
            def expand(self, attribute, item_ids, truth):
                return PolicyResult(values={}, cost=0.0, minutes=0.0, judgments=0)

        with pytest.warns(DeprecationWarning):
            conn.expansion().with_policy(StubPolicy()).with_budget(4.0).build()
        assert conn.session.max_cost == 4.0


class TestCrashRecovery:
    def test_sigkill_preserves_enumerated_rows_without_respend(self, tmp_path):
        """SIGKILL after an acknowledged INSERT ... FROM CROWD: recovery must
        restore every enumerated row with crowd provenance, and reading the
        recovered data must never touch the crowd again."""
        db_path = tmp_path / "enum-db"
        script = textwrap.dedent(
            """
            import sys, time
            import repro
            from repro.crowd.platform import CrowdPlatform
            from repro.crowd.sources import SimulatedCrowdValueSource
            from repro.crowd.worker import WorkerPool

            universe = [f"species-{i:02d}" for i in range(20)]
            source = SimulatedCrowdValueSource(
                CrowdPlatform(seed=11), WorkerPool.build(n_honest=5, seed=3),
                truth={}, seed=7, universe={"birds": universe},
                answers_per_batch=25, payment_per_hit=0.05,
            )
            conn = repro.connect(path=sys.argv[1], synchronous="full")
            conn.set_value_source(source)
            conn.execute("CREATE TABLE birds (bird_id INTEGER PRIMARY KEY, name TEXT)")
            cur = conn.execute(
                "INSERT INTO birds (name) FROM CROWD WHERE 'birds' "
                "WITH COMPLETENESS >= 0.9"
            )
            print(f"DONE {cur.rowcount}", flush=True)  # acknowledged & fsynced
            while True:
                time.sleep(1)
            """
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = str(Path(__file__).resolve().parents[2] / "src") + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        process = subprocess.Popen(
            [sys.executable, "-c", script, str(db_path)],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            env=env,
            text=True,
        )
        try:
            line = process.stdout.readline().strip()
            assert line.startswith("DONE"), (
                "writer produced no acknowledgement; stderr: "
                + str(process.stderr.read() if process.poll() is not None else "")
            )
            inserted = int(line.split()[1])
            process.send_signal(signal.SIGKILL)
        finally:
            process.kill()
            process.wait(timeout=30)

        assert inserted > 0
        recovered = repro.connect(path=db_path)
        try:
            count = recovered.execute("SELECT count(*) FROM birds").fetchone()[0]
            assert count == inserted
            assert recovered.provenance_counts("birds", "name") == {"crowd": inserted}
            # Zero re-spend: no value source is configured, so serving the
            # recovered rows cannot dispatch crowd work or charge anything.
            names = recovered.execute("SELECT name FROM birds").fetchall()
            assert len(names) == inserted
            assert recovered.session.cost_spent == 0.0
            # And repeating the INSERT is entirely free: the dispatched
            # batches were journaled in the WAL, so recovery warm-starts
            # the answer cache and the re-run replays every batch without
            # a single platform call — zero rows, zero spend.
            fresh = make_source()
            recovered.set_value_source(fresh)
            again = recovered.execute(
                "INSERT INTO birds (name) FROM CROWD WHERE 'birds' "
                "WITH COMPLETENESS >= 0.9"
            )
            assert again.rowcount == 0
            assert fresh.dispatches == 0
            assert recovered.session.cost_spent == 0.0
        finally:
            recovered.close()

    def test_checkpoint_preserves_enum_batches(self, tmp_path):
        """Checkpointing truncates the WAL; the snapshot must carry the
        journaled enumeration batches so re-runs stay dispatch-free."""
        db_path = tmp_path / "enum-ckpt"
        conn = repro.connect(path=db_path)
        try:
            conn.set_value_source(make_source())
            conn.execute("CREATE TABLE birds (bird_id INTEGER PRIMARY KEY, name TEXT)")
            first = conn.execute(
                "INSERT INTO birds (name) FROM CROWD WHERE 'birds' "
                "WITH COMPLETENESS >= 0.9"
            )
            assert first.rowcount > 0
            conn.execute("PRAGMA wal_checkpoint")
        finally:
            conn.close()

        reopened = repro.connect(path=db_path)
        try:
            fresh = make_source()
            reopened.set_value_source(fresh)
            again = reopened.execute(
                "INSERT INTO birds (name) FROM CROWD WHERE 'birds' "
                "WITH COMPLETENESS >= 0.9"
            )
            assert again.rowcount == 0
            assert fresh.dispatches == 0
            assert reopened.session.cost_spent == 0.0
        finally:
            reopened.close()
