"""Tests for the CrowdDatabase facade (expansion hook, helpers, scripts)."""

from __future__ import annotations

import pytest

from repro.db.database import CrowdDatabase
from repro.db.schema import Column, TableSchema
from repro.db.types import ColumnType, is_missing
from repro.errors import ExecutionError, UnknownColumnError


class TestFacadeBasics:
    def test_execute_script(self):
        db = CrowdDatabase()
        results = db.execute_script(
            "CREATE TABLE t (a INTEGER); INSERT INTO t VALUES (1); SELECT a FROM t"
        )
        assert len(results) == 3
        assert results[-1].rows == [(1,)]

    def test_create_table_from_schema_object(self):
        db = CrowdDatabase()
        schema = TableSchema("t", [Column("a", ColumnType.INTEGER)])
        db.create_table(schema)
        assert "t" in db.table_names()

    def test_insert_rows_and_column_values(self, movies_db):
        values = movies_db.column_values("movies", "name")
        assert sorted(values.values())[0] == "Airplane!"

    def test_describe(self, movies_db):
        description = movies_db.describe("movies")
        names = [d["name"] for d in description]
        assert names == ["movie_id", "name", "year", "rating", "humor"]

    def test_missing_count(self, movies_db):
        assert movies_db.missing_count("movies", "humor") == 5

    def test_add_perceptual_column(self, movies_db):
        column = movies_db.add_perceptual_column("movies", "suspense")
        assert column.name == "suspense"
        assert movies_db.missing_count("movies", "suspense") == 5

    def test_statement_log(self, movies_db):
        movies_db.execute("SELECT 1")
        assert movies_db.statement_log[-1] == "SELECT 1"

    def test_repr_lists_tables(self, movies_db):
        assert "movies" in repr(movies_db)

    def test_explain_rejects_non_select(self, movies_db):
        with pytest.raises(ExecutionError):
            movies_db.explain("DELETE FROM movies")


class TestExpansionHook:
    def test_unknown_column_without_handler_raises(self, movies_db):
        with pytest.raises(UnknownColumnError):
            movies_db.execute("SELECT name FROM movies WHERE is_comedy = true")

    def test_handler_expands_and_retries(self, movies_db):
        calls = []

        def handler(table, column):
            calls.append((table, column))
            movies_db.add_perceptual_column(table, column, ColumnType.BOOLEAN)
            storage = movies_db.table(table)
            storage.fill_values(column, {rowid: True for rowid in storage.rowids()})
            return True

        movies_db.set_expansion_handler(handler)
        result = movies_db.execute("SELECT name FROM movies WHERE is_comedy = true")
        assert len(result) == 5
        assert calls == [("movies", "is_comedy")]

    def test_handler_refusal_propagates_error(self, movies_db):
        movies_db.set_expansion_handler(lambda table, column: False)
        with pytest.raises(UnknownColumnError):
            movies_db.execute("SELECT name FROM movies WHERE is_comedy = true")

    def test_expansion_disabled_per_statement(self, movies_db):
        movies_db.set_expansion_handler(lambda table, column: True)
        with pytest.raises(UnknownColumnError):
            movies_db.execute(
                "SELECT name FROM movies WHERE is_comedy = true", allow_expansion=False
            )

    def test_handler_not_used_for_dml(self, movies_db):
        movies_db.set_expansion_handler(lambda table, column: True)
        with pytest.raises(UnknownColumnError):
            movies_db.execute("UPDATE movies SET is_comedy = true")

    def test_handler_only_called_once_per_query(self, movies_db):
        calls = []

        def handler(table, column):
            calls.append(column)
            movies_db.add_perceptual_column(table, column, ColumnType.BOOLEAN)
            return True

        movies_db.set_expansion_handler(handler)
        result = movies_db.execute("SELECT name FROM movies WHERE is_comedy = true")
        # Column added but all values MISSING, so the filter matches nothing.
        assert result.rows == []
        assert calls == ["is_comedy"]
        assert all(
            is_missing(v) for v in movies_db.column_values("movies", "is_comedy").values()
        )
