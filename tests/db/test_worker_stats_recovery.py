"""SIGKILL recovery of WAL-durable worker-quality statistics.

A writer subprocess (``synchronous=full``) fills crowd cells through the
quality-tracked acquisition path, checkpoints mid-way — so the recorded
worker stats live partly in the snapshot and partly in the WAL tail — and
is then SIGKILLed.  Recovery must reproduce the exact per-worker totals,
``PRAGMA worker_stats`` must report them, a fresh runtime's tracker must
be warm-started from them, and re-running the same query must dispatch
**zero** platform calls (the paid-for answers and worker knowledge both
survived the crash).
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import textwrap
import time
from pathlib import Path

import repro

_WRITER = textwrap.dedent(
    """
    import json
    import sys
    import time

    import repro
    from repro.crowd.platform import CrowdPlatform
    from repro.crowd.sources import SimulatedCrowdValueSource
    from repro.crowd.worker import WorkerPool

    path = sys.argv[1]
    conn = repro.connect(path=path, synchronous="full")
    conn.execute("CREATE TABLE items (item_id INTEGER PRIMARY KEY, name TEXT)")
    conn.executemany(
        "INSERT INTO items (item_id, name) VALUES (?, ?)",
        [(i, f"item-{i}") for i in range(1, 21)],
    )
    conn.add_perceptual_column("items", "is_comedy")

    truth = {"is_comedy": {i: i % 2 == 0 for i in range(1, 21)}}
    gold = {"is_comedy": {i: i % 3 == 0 for i in range(100, 108)}}
    pool = WorkerPool.build(n_honest=20, seed=7)
    rates = {w.worker_id: (0.08 if w.worker_id % 4 else 0.42) for w in pool}
    source = SimulatedCrowdValueSource(
        CrowdPlatform(seed=11), pool, truth=truth, seed=42, items_per_hit=1,
        worker_error_rates=rates, gold_answers=gold,
    )
    conn.set_value_source(source)

    # First half of the cells, then a checkpoint: these worker stats ride
    # the snapshot.  Second half: the stats delta lands in the WAL tail.
    conn.execute("SELECT count(is_comedy) FROM items WHERE item_id <= 10").fetchone()
    conn.execute("PRAGMA wal_checkpoint")
    conn.execute("SELECT count(is_comedy) FROM items").fetchone()

    stats = conn.catalog.worker_stats()
    print(
        "DONE " + json.dumps(
            {str(wid): [c, i] for wid, (c, i) in sorted(stats.items())}
        ),
        flush=True,
    )
    while True:  # spin until the parent SIGKILLs us mid-flight
        time.sleep(0.05)
    """
)


def _run_writer_until_done(db_path: Path) -> dict[int, tuple[float, float]]:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(Path(__file__).resolve().parents[2] / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    process = subprocess.Popen(
        [sys.executable, "-c", _WRITER, str(db_path)],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        env=env,
        text=True,
    )
    try:
        deadline = time.monotonic() + 120
        while True:
            assert time.monotonic() < deadline, (
                "writer made no progress; stderr: "
                + str(process.stderr.read() if process.poll() is not None else "")
            )
            line = process.stdout.readline().strip()
            if process.poll() is not None:
                raise AssertionError(f"writer died early: {process.stderr.read()}")
            if line.startswith("DONE "):
                payload = json.loads(line[len("DONE "):])
                break
        process.send_signal(signal.SIGKILL)
    finally:
        process.kill()
        process.wait(timeout=30)
    return {
        int(worker_id): (float(correct), float(incorrect))
        for worker_id, (correct, incorrect) in payload.items()
    }


def _make_quality_source():
    from repro.crowd.platform import CrowdPlatform
    from repro.crowd.sources import SimulatedCrowdValueSource
    from repro.crowd.worker import WorkerPool

    truth = {"is_comedy": {i: i % 2 == 0 for i in range(1, 21)}}
    gold = {"is_comedy": {i: i % 3 == 0 for i in range(100, 108)}}
    pool = WorkerPool.build(n_honest=20, seed=7)
    rates = {w.worker_id: (0.08 if w.worker_id % 4 else 0.42) for w in pool}
    return SimulatedCrowdValueSource(
        CrowdPlatform(seed=11), pool, truth=truth, seed=42, items_per_hit=1,
        worker_error_rates=rates, gold_answers=gold,
    )


class TestWorkerStatsSurviveSigkill:
    def test_stats_recover_from_snapshot_plus_wal_tail(self, tmp_path):
        db_path = tmp_path / "db"
        expected = _run_writer_until_done(db_path)
        assert expected, "writer recorded no worker stats before the kill"

        recovered = repro.connect(path=db_path)
        try:
            # The catalog's recorded totals are exactly the pre-kill totals
            # (snapshot section merged with the WAL-tail records, last wins).
            assert recovered.catalog.worker_stats() == expected

            # PRAGMA worker_stats reports every worker with its estimate.
            rows = recovered.execute("PRAGMA worker_stats").fetchall()
            assert {row[0]: (row[1], row[2]) for row in rows} == expected
            assert all(0.0 < row[3] < 1.0 for row in rows)

            # A runtime registering on the recovered catalog is warm-started.
            runtime = recovered.catalog.acquisition_runtime()
            assert runtime.worker_quality.totals() == expected

            # Zero re-dispatches: every crowd answer was persisted before
            # the kill, so the same query costs no further platform calls.
            source = _make_quality_source()
            recovered.set_value_source(source)
            count = recovered.execute(
                "SELECT count(is_comedy) FROM items"
            ).fetchone()[0]
            assert count == 20
            assert source.dispatches == 0
        finally:
            recovered.close()
