"""Tests for table schemas, columns and attribute kinds."""

from __future__ import annotations

import pytest

from repro.db.schema import AttributeKind, Column, TableSchema, perceptual_column
from repro.db.types import MISSING, ColumnType, is_missing
from repro.errors import (
    DuplicateColumnError,
    IntegrityError,
    UnknownColumnError,
)


def make_schema() -> TableSchema:
    return TableSchema(
        "Movies",
        [
            Column("movie_id", ColumnType.INTEGER, nullable=False),
            Column("Name", ColumnType.TEXT, nullable=False),
            Column("year", ColumnType.INTEGER),
            perceptual_column("humor"),
        ],
        primary_key="movie_id",
    )


class TestColumn:
    def test_name_is_lowercased(self):
        assert Column("Year", ColumnType.INTEGER).name == "year"

    def test_invalid_name_rejected(self):
        with pytest.raises(ValueError):
            Column("bad name", ColumnType.TEXT)
        with pytest.raises(ValueError):
            Column("", ColumnType.TEXT)

    def test_default_kind_is_factual(self):
        assert Column("year", ColumnType.INTEGER).kind is AttributeKind.FACTUAL

    def test_with_kind(self):
        column = Column("humor", ColumnType.REAL).with_kind(AttributeKind.PERCEPTUAL)
        assert column.kind is AttributeKind.PERCEPTUAL
        assert column.name == "humor"

    def test_coerce_uses_column_type(self):
        assert Column("year", ColumnType.INTEGER).coerce("1999") == 1999

    def test_perceptual_column_helper(self):
        column = perceptual_column("suspense")
        assert column.kind is AttributeKind.PERCEPTUAL
        assert is_missing(column.default)


class TestTableSchema:
    def test_names_are_case_insensitive(self):
        schema = make_schema()
        assert schema.name == "movies"
        assert "NAME" in schema
        assert schema.column("NAME").name == "name"

    def test_column_order_preserved(self):
        assert make_schema().column_names == ["movie_id", "name", "year", "humor"]

    def test_len_and_iter(self):
        schema = make_schema()
        assert len(schema) == 4
        assert [column.name for column in schema] == schema.column_names

    def test_duplicate_column_rejected(self):
        with pytest.raises(DuplicateColumnError):
            TableSchema(
                "t", [Column("a", ColumnType.TEXT), Column("A", ColumnType.TEXT)]
            )

    def test_empty_schema_rejected(self):
        with pytest.raises(ValueError):
            TableSchema("t", [])

    def test_unknown_primary_key_rejected(self):
        with pytest.raises(UnknownColumnError):
            TableSchema("t", [Column("a", ColumnType.TEXT)], primary_key="b")

    def test_unknown_column_lookup(self):
        with pytest.raises(UnknownColumnError):
            make_schema().column("suspense")

    def test_perceptual_and_factual_partitions(self):
        schema = make_schema()
        assert [c.name for c in schema.perceptual_columns()] == ["humor"]
        assert "humor" not in [c.name for c in schema.factual_columns()]
        assert len(schema.factual_columns()) + len(schema.perceptual_columns()) == len(schema)

    def test_add_column(self):
        schema = make_schema()
        schema.add_column(perceptual_column("suspense"))
        assert "suspense" in schema
        with pytest.raises(DuplicateColumnError):
            schema.add_column(Column("suspense", ColumnType.REAL))

    def test_copy_is_independent(self):
        schema = make_schema()
        clone = schema.copy()
        clone.add_column(Column("extra", ColumnType.TEXT))
        assert "extra" in clone
        assert "extra" not in schema


class TestNormaliseRow:
    def test_full_row(self):
        schema = make_schema()
        row = schema.normalise_row({"movie_id": 1, "name": "Rocky", "year": "1976"})
        assert row == {"movie_id": 1, "name": "Rocky", "year": 1976, "humor": MISSING}

    def test_missing_perceptual_default(self):
        row = make_schema().normalise_row({"movie_id": 1, "name": "Rocky"})
        assert is_missing(row["humor"])
        assert row["year"] is None

    def test_unknown_column_rejected(self):
        with pytest.raises(UnknownColumnError):
            make_schema().normalise_row({"movie_id": 1, "name": "x", "director": "y"})

    def test_not_null_enforced(self):
        with pytest.raises(IntegrityError):
            make_schema().normalise_row({"movie_id": 1})

    def test_case_insensitive_keys(self):
        row = make_schema().normalise_row({"MOVIE_ID": 2, "Name": "Psycho"})
        assert row["movie_id"] == 2
        assert row["name"] == "Psycho"

    def test_describe(self):
        description = make_schema().describe()
        assert description[0]["name"] == "movie_id"
        assert description[0]["nullable"] is False
        humor = [d for d in description if d["name"] == "humor"][0]
        assert humor["kind"] == "perceptual"
        assert humor["default"] == "MISSING"
