"""Tests for the query planner (validation, star expansion, access paths)."""

from __future__ import annotations

import pytest

from repro.db.catalog import Catalog
from repro.db.schema import Column, TableSchema
from repro.db.sql.parser import parse_statement
from repro.db.sql.planner import Planner
from repro.db.types import ColumnType
from repro.errors import PlanningError, UnknownColumnError, UnknownTableError


@pytest.fixture
def catalog() -> Catalog:
    catalog = Catalog()
    movies = catalog.create_table(
        TableSchema(
            "movies",
            [
                Column("movie_id", ColumnType.INTEGER, nullable=False),
                Column("name", ColumnType.TEXT),
                Column("year", ColumnType.INTEGER),
            ],
            primary_key="movie_id",
        )
    )
    movies.insert({"movie_id": 1, "name": "Rocky", "year": 1976})
    ratings = catalog.create_table(
        TableSchema(
            "ratings",
            [
                Column("movie_id", ColumnType.INTEGER),
                Column("user_id", ColumnType.INTEGER),
                Column("score", ColumnType.REAL),
            ],
        )
    )
    ratings.insert({"movie_id": 1, "user_id": 10, "score": 4.0})
    return catalog


@pytest.fixture
def planner(catalog) -> Planner:
    return Planner(catalog)


def plan(planner: Planner, sql: str):
    return planner.plan_select(parse_statement(sql))


class TestValidation:
    def test_unknown_table(self, planner):
        with pytest.raises(UnknownTableError):
            plan(planner, "SELECT * FROM nope")

    def test_unknown_column_triggers_expansion_error(self, planner):
        with pytest.raises(UnknownColumnError) as error:
            plan(planner, "SELECT name FROM movies WHERE is_comedy = true")
        assert error.value.column == "is_comedy"
        assert error.value.table == "movies"

    def test_unknown_column_in_projection(self, planner):
        with pytest.raises(UnknownColumnError):
            plan(planner, "SELECT humor FROM movies")

    def test_unknown_alias(self, planner):
        with pytest.raises(PlanningError):
            plan(planner, "SELECT x.name FROM movies m")

    def test_duplicate_alias(self, planner):
        with pytest.raises(PlanningError):
            plan(planner, "SELECT * FROM movies m JOIN ratings m ON 1 = 1")

    def test_ambiguous_column_across_tables(self, planner):
        with pytest.raises(PlanningError):
            plan(
                planner,
                "SELECT movie_id FROM movies m JOIN ratings r ON m.movie_id = r.movie_id",
            )

    def test_order_by_output_alias_is_allowed(self, planner):
        result = plan(planner, "SELECT year AS y FROM movies ORDER BY y")
        assert result.order_by[0].expression.name == "y"

    def test_select_without_from_and_column(self, planner):
        with pytest.raises(UnknownColumnError):
            plan(planner, "SELECT name")


class TestProjectionResolution:
    def test_star_expansion(self, planner):
        result = plan(planner, "SELECT * FROM movies")
        assert [column.name for column in result.output] == ["movie_id", "name", "year"]

    def test_qualified_star_expansion(self, planner):
        result = plan(
            planner,
            "SELECT m.* FROM movies m JOIN ratings r ON m.movie_id = r.movie_id",
        )
        assert [column.name for column in result.output] == ["movie_id", "name", "year"]

    def test_unknown_alias_star(self, planner):
        with pytest.raises(PlanningError):
            plan(planner, "SELECT x.* FROM movies m")

    def test_alias_names(self, planner):
        result = plan(planner, "SELECT name AS title, year FROM movies")
        assert [column.name for column in result.output] == ["title", "year"]

    def test_duplicate_output_names_are_disambiguated(self, planner):
        result = plan(planner, "SELECT year, year FROM movies")
        assert result.output[0].name != result.output[1].name

    def test_aggregate_detection(self, planner):
        result = plan(planner, "SELECT count(*) FROM movies")
        assert result.output[0].aggregate is True
        assert result.aggregate is not None


class TestAggregateValidation:
    def test_group_by_allows_grouped_columns(self, planner):
        result = plan(planner, "SELECT year, count(*) FROM movies GROUP BY year")
        assert result.aggregate is not None

    def test_non_grouped_column_rejected(self, planner):
        with pytest.raises(PlanningError):
            plan(planner, "SELECT name, count(*) FROM movies GROUP BY year")

    def test_mixed_aggregate_without_group_by_rejected(self, planner):
        with pytest.raises(PlanningError):
            plan(planner, "SELECT name, count(*) FROM movies")

    def test_having_without_aggregate_rejected(self, planner):
        with pytest.raises(PlanningError):
            plan(planner, "SELECT name FROM movies HAVING year > 1980")


class TestAccessPath:
    def test_index_lookup_for_pk_equality(self, planner):
        result = plan(planner, "SELECT name FROM movies WHERE movie_id = 1")
        assert result.scan.uses_index
        assert result.scan.index_column == "movie_id"

    def test_reversed_equality_also_uses_index(self, planner):
        result = plan(planner, "SELECT name FROM movies WHERE 1 = movie_id")
        assert result.scan.uses_index

    def test_non_indexed_column_uses_scan(self, planner):
        result = plan(planner, "SELECT name FROM movies WHERE year = 1976")
        assert not result.scan.uses_index

    def test_complex_predicate_uses_scan(self, planner):
        result = plan(planner, "SELECT name FROM movies WHERE movie_id = 1 OR year = 1976")
        assert not result.scan.uses_index

    def test_describe_mentions_plan_steps(self, planner):
        result = plan(
            planner,
            "SELECT year, count(*) AS n FROM movies WHERE year > 1950 "
            "GROUP BY year ORDER BY n DESC LIMIT 3",
        )
        description = result.describe()
        assert "SeqScan" in description
        assert "Aggregate" in description
        assert "Sort" in description
        assert "Limit 3" in description

    def test_describe_index_lookup(self, planner):
        description = plan(planner, "SELECT name FROM movies WHERE movie_id = 1").describe()
        assert "IndexLookup" in description

    def test_referenced_columns_collected(self, planner):
        result = plan(planner, "SELECT name FROM movies WHERE year > 1950 ORDER BY year")
        assert "year" in result.referenced_columns
        assert "name" in result.referenced_columns
