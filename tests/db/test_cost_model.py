"""Tests for the cost-based access-path choice and the stats PRAGMAs.

The planner picks SeqScan vs IndexRangeScan vs ordered index walks from
per-table statistics at lower() time (docs/storage.md documents the cost
model); these tests pin the decision boundaries, the EXPLAIN/EXPLAIN
ANALYZE surfaces and the PRAGMA plumbing around it.
"""

from __future__ import annotations

import pytest

from repro.db.connection import Connection, connect
from repro.db.sql.planner import choose_join_strategy
from repro.errors import ExecutionError


def _make(n_rows: int, *, index: bool = True) -> Connection:
    db = Connection()
    db.run_statement("CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)")
    db.executemany(
        "INSERT INTO t (id, v) VALUES (?, ?)",
        [(i, (i * 7) % n_rows) for i in range(1, n_rows + 1)],
    )
    if index:
        db.run_statement("CREATE INDEX ON t (v)")
    return db


def _plan(db: Connection, sql: str) -> str:
    return "\n".join(row[0] for row in db.run_statement(f"EXPLAIN {sql}").rows)


class TestAccessPathChoice:
    def test_narrow_range_on_large_table_uses_index(self):
        db = _make(2000)
        plan = _plan(db, "SELECT id FROM t WHERE v BETWEEN 5 AND 10")
        assert "IndexRangeScan" in plan and "SeqScan" not in plan
        assert "Filter" in plan  # residual filter is always kept

    def test_tiny_table_keeps_seq_scan(self):
        db = _make(3)
        # N=3: log2(4) + est*2 >= 3, the index cannot pay for itself.
        assert "SeqScan" in _plan(db, "SELECT id FROM t WHERE v >= 1")

    def test_unindexed_column_keeps_seq_scan(self):
        db = _make(2000, index=False)
        assert "SeqScan" in _plan(db, "SELECT id FROM t WHERE v BETWEEN 5 AND 10")

    def test_equality_still_uses_index_lookup(self):
        db = _make(2000)
        plan = _plan(db, "SELECT id FROM t WHERE v = 5")
        assert "IndexLookup" in plan and "IndexRangeScan" not in plan

    def test_null_bound_rejects_the_index_path(self):
        db = _make(2000)
        # v < NULL is unknown-for-all; the range candidate must be dropped,
        # not treated as an open bound.
        plan = _plan(db, "SELECT id FROM t WHERE v < NULL")
        assert "SeqScan" in plan
        assert db.run_statement("SELECT id FROM t WHERE v < NULL").rows == []

    def test_ascending_order_by_composes_with_range(self):
        db = _make(2000)
        sql = "SELECT id, v FROM t WHERE v >= 1990 ORDER BY v"
        plan = _plan(db, sql)
        assert "IndexRangeScan" in plan and "(ordered)" in plan
        assert "Sort" not in plan
        values = [v for _, v in db.run_statement(sql).rows]
        assert values == sorted(values)

    def test_descending_order_with_bounds_keeps_sort(self):
        db = _make(2000)
        sql = "SELECT id, v FROM t WHERE v >= 1990 ORDER BY v DESC"
        plan = _plan(db, sql)
        assert "IndexRangeScan" in plan and "Sort" in plan
        values = [v for _, v in db.run_statement(sql).rows]
        assert values == sorted(values, reverse=True)

    def test_bare_descending_order_walks_the_index_backwards(self):
        db = _make(2000)
        sql = "SELECT id, v FROM t ORDER BY v DESC LIMIT 5"
        plan = _plan(db, sql)
        assert "IndexRangeScan" in plan and "(ordered desc)" in plan
        assert "Sort" not in plan

    def test_alias_shadowing_order_column_keeps_sort(self):
        db = _make(2000)
        # Output alias `v` is a different expression: index order on t.v
        # must NOT be used for ORDER BY v (which binds to the alias).
        plan = _plan(db, "SELECT id, v * -1 AS v FROM t ORDER BY v")
        assert "Sort" in plan

    def test_aggregate_query_keeps_sort(self):
        db = _make(2000)
        plan = _plan(db, "SELECT v, count(*) AS n FROM t GROUP BY v ORDER BY v")
        assert "Sort" in plan


class TestExplainAnalyzeEstimates:
    def test_estimates_reported_next_to_actuals(self):
        db = _make(2000)
        report = db.explain_analyze("SELECT id FROM t WHERE v BETWEEN 5 AND 10")
        assert "IndexRangeScan" in report
        assert "est=" in report and "rows=" in report

    def test_seq_scan_estimates_full_table(self):
        db = _make(100, index=False)
        report = db.explain_analyze("SELECT id FROM t")
        assert "est=100" in report


class TestChooseJoinStrategy:
    def test_hash_always_wins_with_equi_keys(self):
        for left, right in ((1, 1), (1, 1000), (1000, 1), (50, 50)):
            assert choose_join_strategy(left, right, equi_keys=True) == "hash"

    def test_without_keys_only_nested_is_possible(self):
        assert choose_join_strategy(10, 10, equi_keys=False) == "nested"


class TestStatsPragmas:
    def test_pragma_analyze_builds_histograms(self):
        db = _make(200)
        result = db.run_statement("PRAGMA analyze")
        assert result.columns == ["analyzed_tables"]
        assert result.rows == [(1,)]
        rows = {
            row[0]: row
            for row in db.run_statement("PRAGMA table_stats = 't'").rows
        }
        assert rows["v"][5] > 0  # histogram_buckets populated by ANALYZE

    def test_pragma_table_stats_requires_a_name(self):
        db = _make(10)
        with pytest.raises(ExecutionError):
            db.run_statement("PRAGMA table_stats")

    def test_pragma_analyze_single_table(self):
        db = _make(10)
        assert db.run_statement("PRAGMA analyze = 't'").rows == [(1,)]


class TestBufferPoolPragmas:
    def test_read_resize_and_stats(self, tmp_path):
        db = connect(path=tmp_path / "db", buffer_pool_pages=8)
        try:
            db.run_statement("CREATE TABLE t (id INTEGER PRIMARY KEY)")
            assert db.run_statement("PRAGMA buffer_pool_pages").rows == [(8,)]
            db.run_statement("PRAGMA buffer_pool_pages = 4")
            assert db.run_statement("PRAGMA buffer_pool_pages").rows == [(4,)]
            stats = dict(db.run_statement("PRAGMA buffer_pool_stats").rows)
            assert stats["capacity_pages"] == 4
            assert "evictions" in stats and "pin_violations" in stats
            with pytest.raises(ExecutionError):
                db.run_statement("PRAGMA buffer_pool_pages = 'lots'")
        finally:
            db.close()

    def test_buffer_pool_pragmas_require_durability(self):
        db = Connection()
        with pytest.raises(ExecutionError):
            db.run_statement("PRAGMA buffer_pool_stats")

    def test_buffer_pool_kwarg_requires_path(self):
        with pytest.raises(ValueError):
            connect(buffer_pool_pages=4)
