"""Differential tests: the repro SQL engine vs. the sqlite3 reference.

Random tables and a family of query shapes (filters, aggregates, grouping,
ordering, joins) are executed on both engines; results must agree.  Query
shapes are restricted to the semantics both engines share (no NULLs in
ordering keys, no integer division), which covers everything the
schema-expansion workloads use.
"""

from __future__ import annotations

import sqlite3

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.db.connection import Connection

_NAMES = ("alpha", "beta", "gamma", "delta", "rho", "omega")


@st.composite
def table_rows(draw):
    """Random (id, name, year, score) rows with unique ids."""
    n = draw(st.integers(min_value=1, max_value=25))
    names = [draw(st.sampled_from(_NAMES)) for _ in range(n)]
    years = [draw(st.integers(min_value=1950, max_value=2012)) for _ in range(n)]
    scores = [draw(st.integers(min_value=0, max_value=100)) for _ in range(n)]
    return [
        (index + 1, names[index], years[index], scores[index]) for index in range(n)
    ]


def build_engines(rows):
    """Load the same rows into a Connection and an in-memory sqlite3 db."""
    ours = Connection()
    ours.run_statement(
        "CREATE TABLE movies (movie_id INTEGER PRIMARY KEY, name TEXT, year INTEGER, score INTEGER)"
    )
    reference = sqlite3.connect(":memory:")
    reference.execute(
        "CREATE TABLE movies (movie_id INTEGER PRIMARY KEY, name TEXT, year INTEGER, score INTEGER)"
    )
    for movie_id, name, year, score in rows:
        ours.run_statement(
            f"INSERT INTO movies VALUES ({movie_id}, '{name}', {year}, {score})"
        )
        reference.execute(
            "INSERT INTO movies VALUES (?, ?, ?, ?)", (movie_id, name, year, score)
        )
    return ours, reference


def both(rows, sql: str):
    """Run *sql* on both engines and return (ours, reference) row lists."""
    ours, reference = build_engines(rows)
    mine = [tuple(row) for row in ours.run_statement(sql).rows]
    theirs = [tuple(row) for row in reference.execute(sql).fetchall()]
    reference.close()
    return mine, theirs


def normalise(rows):
    """Sort rows so order-insensitive comparisons are stable."""
    return sorted(tuple(float(c) if isinstance(c, (int, float)) else c for c in row) for row in rows)


common_settings = settings(
    max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


class TestDifferentialAgainstSqlite:
    @common_settings
    @given(table_rows(), st.integers(1950, 2012))
    def test_filter_and_projection(self, rows, threshold):
        sql = f"SELECT name, year FROM movies WHERE year >= {threshold}"
        mine, theirs = both(rows, sql)
        assert normalise(mine) == normalise(theirs)

    @common_settings
    @given(table_rows(), st.integers(0, 100), st.integers(0, 100))
    def test_between_and_conjunction(self, rows, low, high):
        low, high = min(low, high), max(low, high)
        sql = (
            f"SELECT movie_id FROM movies WHERE score BETWEEN {low} AND {high} "
            f"AND year > 1960"
        )
        mine, theirs = both(rows, sql)
        assert normalise(mine) == normalise(theirs)

    @common_settings
    @given(table_rows(), st.sampled_from(_NAMES))
    def test_string_equality_and_in(self, rows, name):
        sql = f"SELECT movie_id FROM movies WHERE name = '{name}' OR year IN (1960, 1980, 2000)"
        mine, theirs = both(rows, sql)
        assert normalise(mine) == normalise(theirs)

    @common_settings
    @given(table_rows())
    def test_like_prefix(self, rows):
        sql = "SELECT name FROM movies WHERE name LIKE 'a%'"
        mine, theirs = both(rows, sql)
        assert normalise(mine) == normalise(theirs)

    @common_settings
    @given(table_rows())
    def test_global_aggregates(self, rows):
        sql = "SELECT count(*), min(year), max(year), sum(score) FROM movies"
        mine, theirs = both(rows, sql)
        assert normalise(mine) == normalise(theirs)

    @common_settings
    @given(table_rows())
    def test_group_by_having(self, rows):
        sql = (
            "SELECT name, count(*), max(score) FROM movies "
            "GROUP BY name HAVING count(*) >= 1"
        )
        mine, theirs = both(rows, sql)
        assert normalise(mine) == normalise(theirs)

    @common_settings
    @given(table_rows(), st.integers(1, 5))
    def test_order_by_with_limit(self, rows, limit):
        sql = (
            f"SELECT movie_id, score FROM movies ORDER BY score DESC, movie_id ASC LIMIT {limit}"
        )
        mine, theirs = both(rows, sql)
        assert mine == theirs  # order-sensitive comparison

    @common_settings
    @given(table_rows())
    def test_distinct(self, rows):
        sql = "SELECT DISTINCT name FROM movies"
        mine, theirs = both(rows, sql)
        assert normalise(mine) == normalise(theirs)

    @common_settings
    @given(table_rows())
    def test_arithmetic_projection(self, rows):
        sql = "SELECT movie_id, score * 2 + 1 FROM movies WHERE score * 2 > 50"
        mine, theirs = both(rows, sql)
        assert normalise(mine) == normalise(theirs)

    @common_settings
    @given(table_rows())
    def test_self_join_on_year(self, rows):
        sql = (
            "SELECT a.movie_id, b.movie_id FROM movies a JOIN movies b "
            "ON a.year = b.year WHERE a.movie_id < b.movie_id"
        )
        mine, theirs = both(rows, sql)
        assert normalise(mine) == normalise(theirs)


_EXTRA_COLUMNS = ("a", "b", "c")
_COMPARISONS = ("<", "<=", ">", ">=", "=")


@st.composite
def op_sequences(draw):
    """A random schema plus a random INSERT/UPDATE/DELETE/SELECT sequence.

    Every operation is rendered as a SQL string valid on both engines; the
    value domain is NULL-free so ordering semantics agree (the engines
    diverge only on NULL placement, which :mod:`test_ordering_regression`
    covers on our side alone).
    """
    columns = draw(
        st.lists(st.sampled_from(_EXTRA_COLUMNS), min_size=1, max_size=3, unique=True)
    )
    indexed = draw(st.sampled_from(columns))
    ops: list[tuple[str, str]] = []
    next_pk = 1
    for _ in range(draw(st.integers(min_value=4, max_value=12))):
        kind = draw(st.sampled_from(("insert", "insert", "update", "delete", "select")))
        if kind == "insert":
            values = [str(next_pk)] + [
                str(draw(st.integers(min_value=0, max_value=40))) for _ in columns
            ]
            ops.append(("write", f"INSERT INTO t VALUES ({', '.join(values)})"))
            next_pk += 1
        elif kind == "update":
            target = draw(st.sampled_from(columns))
            where = draw(st.sampled_from(columns))
            cmp = draw(st.sampled_from(_COMPARISONS))
            value = draw(st.integers(min_value=0, max_value=40))
            bound = draw(st.integers(min_value=0, max_value=40))
            ops.append(
                ("write", f"UPDATE t SET {target} = {value} WHERE {where} {cmp} {bound}")
            )
        elif kind == "delete":
            where = draw(st.sampled_from(columns))
            cmp = draw(st.sampled_from(_COMPARISONS))
            bound = draw(st.integers(min_value=0, max_value=40))
            ops.append(("write", f"DELETE FROM t WHERE {where} {cmp} {bound}"))
        else:
            where = draw(st.sampled_from(columns))
            shape = draw(st.sampled_from(("range", "between", "ordered")))
            low = draw(st.integers(min_value=0, max_value=40))
            high = draw(st.integers(min_value=0, max_value=40))
            low, high = min(low, high), max(low, high)
            if shape == "range":
                cmp = draw(st.sampled_from(_COMPARISONS))
                ops.append(("multiset", f"SELECT * FROM t WHERE {where} {cmp} {low}"))
            elif shape == "between":
                ops.append(
                    ("multiset", f"SELECT * FROM t WHERE {where} BETWEEN {low} AND {high}")
                )
            else:
                direction = draw(st.sampled_from(("ASC", "DESC")))
                ops.append(
                    (
                        "ordered",
                        f"SELECT pk, {where} FROM t WHERE {where} >= {low} "
                        f"ORDER BY {where} {direction}, pk ASC",
                    )
                )
    # Always end with a full-table audit so writes are compared even when
    # no SELECT was drawn.
    ops.append(("multiset", "SELECT * FROM t"))
    return columns, indexed, ops


class TestGenerativeDifferential:
    """Random write/read sequences on a paged, eviction-stressed store.

    The engine runs durable with a deliberately tiny buffer pool so every
    sequence churns pages through eviction and write-back; sqlite3 is the
    oracle.  Divergence on any of the 200 generated sequences fails.
    """

    @settings(max_examples=200, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(op_sequences())
    def test_random_sequences_match_sqlite(self, spec):
        import tempfile

        columns, indexed, ops = spec
        decls = ", ".join(f"{name} INTEGER" for name in columns)
        with tempfile.TemporaryDirectory() as tmp:
            from repro.db.connection import connect

            ours = connect(path=f"{tmp}/db", buffer_pool_pages=2)
            reference = sqlite3.connect(":memory:")
            try:
                for engine_exec in (ours.run_statement, reference.execute):
                    engine_exec(f"CREATE TABLE t (pk INTEGER PRIMARY KEY, {decls})")
                ours.run_statement(f"CREATE INDEX ON t ({indexed})")
                reference.execute(f"CREATE INDEX idx_diff ON t ({indexed})")
                for mode, sql in ops:
                    mine = [tuple(row) for row in ours.run_statement(sql).rows]
                    theirs = [tuple(row) for row in reference.execute(sql).fetchall()]
                    if mode == "multiset":
                        assert normalise(mine) == normalise(theirs), sql
                    elif mode == "ordered":
                        assert mine == theirs, sql
            finally:
                ours.close()
                reference.close()


class TestKnownSemanticDifferencesAreContained:
    """Behaviours where the engine intentionally differs from sqlite."""

    def test_missing_marker_has_no_sqlite_equivalent(self):
        db = Connection()
        db.run_statement("CREATE TABLE t (a INTEGER, humor REAL PERCEPTUAL)")
        db.run_statement("INSERT INTO t (a) VALUES (1)")
        assert db.run_statement("SELECT count(*) FROM t WHERE humor IS MISSING").scalar() == 1
        assert db.run_statement("SELECT count(humor) FROM t").scalar() == 0

    def test_true_division_for_integers(self):
        db = Connection()
        db.run_statement("CREATE TABLE t (a INTEGER)")
        db.run_statement("INSERT INTO t VALUES (3)")
        assert db.run_statement("SELECT a / 2 FROM t").scalar() == pytest.approx(1.5)
