"""Differential tests: the repro SQL engine vs. the sqlite3 reference.

Random tables and a family of query shapes (filters, aggregates, grouping,
ordering, joins) are executed on both engines; results must agree.  Query
shapes are restricted to the semantics both engines share (no NULLs in
ordering keys, no integer division), which covers everything the
schema-expansion workloads use.
"""

from __future__ import annotations

import sqlite3

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.db.connection import Connection

_NAMES = ("alpha", "beta", "gamma", "delta", "rho", "omega")


@st.composite
def table_rows(draw):
    """Random (id, name, year, score) rows with unique ids."""
    n = draw(st.integers(min_value=1, max_value=25))
    names = [draw(st.sampled_from(_NAMES)) for _ in range(n)]
    years = [draw(st.integers(min_value=1950, max_value=2012)) for _ in range(n)]
    scores = [draw(st.integers(min_value=0, max_value=100)) for _ in range(n)]
    return [
        (index + 1, names[index], years[index], scores[index]) for index in range(n)
    ]


def build_engines(rows):
    """Load the same rows into a Connection and an in-memory sqlite3 db."""
    ours = Connection()
    ours.run_statement(
        "CREATE TABLE movies (movie_id INTEGER PRIMARY KEY, name TEXT, year INTEGER, score INTEGER)"
    )
    reference = sqlite3.connect(":memory:")
    reference.execute(
        "CREATE TABLE movies (movie_id INTEGER PRIMARY KEY, name TEXT, year INTEGER, score INTEGER)"
    )
    for movie_id, name, year, score in rows:
        ours.run_statement(
            f"INSERT INTO movies VALUES ({movie_id}, '{name}', {year}, {score})"
        )
        reference.execute(
            "INSERT INTO movies VALUES (?, ?, ?, ?)", (movie_id, name, year, score)
        )
    return ours, reference


def both(rows, sql: str):
    """Run *sql* on both engines and return (ours, reference) row lists."""
    ours, reference = build_engines(rows)
    mine = [tuple(row) for row in ours.run_statement(sql).rows]
    theirs = [tuple(row) for row in reference.execute(sql).fetchall()]
    reference.close()
    return mine, theirs


def normalise(rows):
    """Sort rows so order-insensitive comparisons are stable."""
    return sorted(tuple(float(c) if isinstance(c, (int, float)) else c for c in row) for row in rows)


common_settings = settings(
    max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


class TestDifferentialAgainstSqlite:
    @common_settings
    @given(table_rows(), st.integers(1950, 2012))
    def test_filter_and_projection(self, rows, threshold):
        sql = f"SELECT name, year FROM movies WHERE year >= {threshold}"
        mine, theirs = both(rows, sql)
        assert normalise(mine) == normalise(theirs)

    @common_settings
    @given(table_rows(), st.integers(0, 100), st.integers(0, 100))
    def test_between_and_conjunction(self, rows, low, high):
        low, high = min(low, high), max(low, high)
        sql = (
            f"SELECT movie_id FROM movies WHERE score BETWEEN {low} AND {high} "
            f"AND year > 1960"
        )
        mine, theirs = both(rows, sql)
        assert normalise(mine) == normalise(theirs)

    @common_settings
    @given(table_rows(), st.sampled_from(_NAMES))
    def test_string_equality_and_in(self, rows, name):
        sql = f"SELECT movie_id FROM movies WHERE name = '{name}' OR year IN (1960, 1980, 2000)"
        mine, theirs = both(rows, sql)
        assert normalise(mine) == normalise(theirs)

    @common_settings
    @given(table_rows())
    def test_like_prefix(self, rows):
        sql = "SELECT name FROM movies WHERE name LIKE 'a%'"
        mine, theirs = both(rows, sql)
        assert normalise(mine) == normalise(theirs)

    @common_settings
    @given(table_rows())
    def test_global_aggregates(self, rows):
        sql = "SELECT count(*), min(year), max(year), sum(score) FROM movies"
        mine, theirs = both(rows, sql)
        assert normalise(mine) == normalise(theirs)

    @common_settings
    @given(table_rows())
    def test_group_by_having(self, rows):
        sql = (
            "SELECT name, count(*), max(score) FROM movies "
            "GROUP BY name HAVING count(*) >= 1"
        )
        mine, theirs = both(rows, sql)
        assert normalise(mine) == normalise(theirs)

    @common_settings
    @given(table_rows(), st.integers(1, 5))
    def test_order_by_with_limit(self, rows, limit):
        sql = (
            f"SELECT movie_id, score FROM movies ORDER BY score DESC, movie_id ASC LIMIT {limit}"
        )
        mine, theirs = both(rows, sql)
        assert mine == theirs  # order-sensitive comparison

    @common_settings
    @given(table_rows())
    def test_distinct(self, rows):
        sql = "SELECT DISTINCT name FROM movies"
        mine, theirs = both(rows, sql)
        assert normalise(mine) == normalise(theirs)

    @common_settings
    @given(table_rows())
    def test_arithmetic_projection(self, rows):
        sql = "SELECT movie_id, score * 2 + 1 FROM movies WHERE score * 2 > 50"
        mine, theirs = both(rows, sql)
        assert normalise(mine) == normalise(theirs)

    @common_settings
    @given(table_rows())
    def test_self_join_on_year(self, rows):
        sql = (
            "SELECT a.movie_id, b.movie_id FROM movies a JOIN movies b "
            "ON a.year = b.year WHERE a.movie_id < b.movie_id"
        )
        mine, theirs = both(rows, sql)
        assert normalise(mine) == normalise(theirs)


class TestKnownSemanticDifferencesAreContained:
    """Behaviours where the engine intentionally differs from sqlite."""

    def test_missing_marker_has_no_sqlite_equivalent(self):
        db = Connection()
        db.run_statement("CREATE TABLE t (a INTEGER, humor REAL PERCEPTUAL)")
        db.run_statement("INSERT INTO t (a) VALUES (1)")
        assert db.run_statement("SELECT count(*) FROM t WHERE humor IS MISSING").scalar() == 1
        assert db.run_statement("SELECT count(humor) FROM t").scalar() == 0

    def test_true_division_for_integers(self):
        db = Connection()
        db.run_statement("CREATE TABLE t (a INTEGER)")
        db.run_statement("INSERT INTO t VALUES (3)")
        assert db.run_statement("SELECT a / 2 FROM t").scalar() == pytest.approx(1.5)
