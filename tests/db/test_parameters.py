"""Tests for qmark parameter parsing and AST/plan binding."""

from __future__ import annotations

import pytest

from repro.db.sql import ast
from repro.db.sql.parameters import (
    bind_expression,
    bind_statement,
    count_parameters,
)
from repro.db.sql.parser import parse_statement
from repro.errors import ExecutionError, ParameterBindingError, SQLSyntaxError


class TestParsing:
    def test_placeholders_numbered_left_to_right(self):
        statement = parse_statement(
            "SELECT ? FROM t WHERE a = ? AND b IN (?, ?) ORDER BY c"
        )
        assert count_parameters(statement) == 4
        assert statement.items[0].expression == ast.Parameter(0)

    def test_placeholders_in_insert_rows(self):
        statement = parse_statement("INSERT INTO t (a, b) VALUES (?, ?), (?, ?)")
        assert count_parameters(statement) == 4

    def test_placeholders_in_update(self):
        statement = parse_statement("UPDATE t SET a = ?, b = ? WHERE c = ?")
        assert count_parameters(statement) == 3

    def test_placeholders_in_case_and_between(self):
        statement = parse_statement(
            "SELECT CASE WHEN a BETWEEN ? AND ? THEN ? ELSE ? END FROM t"
        )
        assert count_parameters(statement) == 4

    def test_placeholder_not_allowed_as_limit(self):
        with pytest.raises(SQLSyntaxError):
            parse_statement("SELECT a FROM t LIMIT ?")

    def test_string_literal_question_mark_is_not_counted(self):
        statement = parse_statement("SELECT a FROM t WHERE b = 'really?'")
        assert count_parameters(statement) == 0

    def test_script_statements_number_parameters_independently(self):
        from repro.db.sql.parser import parse_sql

        first, second = parse_sql(
            "SELECT a FROM t WHERE b = ?; SELECT a FROM t WHERE c = ?"
        )
        assert first.where.right == ast.Parameter(0)
        assert second.where.right == ast.Parameter(0)
        assert bind_statement(second, (5,)).where.right == ast.Literal(5)


class TestBinding:
    def test_bind_statement_replaces_parameters(self):
        statement = parse_statement("SELECT a FROM t WHERE b = ? AND c > ?")
        bound = bind_statement(statement, ("x", 3))
        assert count_parameters(bound) == 0
        comparison = bound.where
        assert comparison.left.right == ast.Literal("x")
        assert comparison.right.right == ast.Literal(3)

    def test_bind_statement_checks_arity(self):
        statement = parse_statement("SELECT a FROM t WHERE b = ?")
        with pytest.raises(ParameterBindingError):
            bind_statement(statement, ())
        with pytest.raises(ParameterBindingError):
            bind_statement(statement, (1, 2))

    def test_bind_statement_without_parameters_is_identity(self):
        statement = parse_statement("SELECT a FROM t")
        assert bind_statement(statement, ()) is statement

    def test_bind_expression_covers_compound_nodes(self):
        statement = parse_statement(
            "SELECT coalesce(a, ?) FROM t "
            "WHERE (a IS NULL OR NOT b = ?) AND c NOT IN (?) AND d LIKE ?"
        )
        bound = bind_statement(statement, (0, 1, 2, "x%"))
        assert count_parameters(bound) == 0

    def test_bind_expression_out_of_range_raises(self):
        with pytest.raises(ParameterBindingError):
            bind_expression(ast.Parameter(5), (1, 2))

    def test_unbound_parameter_fails_at_evaluation(self):
        from repro.db.sql.expressions import RowContext, evaluate

        with pytest.raises(ExecutionError, match="unbound parameter"):
            evaluate(ast.Parameter(0), RowContext())

    def test_distinct_parameters_never_compare_equal_in_group_by(self):
        from repro.db import connect
        from repro.errors import PlanningError

        conn = connect()
        conn.execute("CREATE TABLE t (a INTEGER)")
        conn.execute("INSERT INTO t VALUES (1)")
        # a + ?1 in the SELECT list is not the GROUP BY key a + ?2; with a
        # position-blind label both would render "a + ?" and validation
        # would silently pass with wrong results.
        with pytest.raises(PlanningError):
            conn.execute("SELECT a + ?, count(*) FROM t GROUP BY a + ?", (1, 100))

    def test_template_statement_is_reusable(self):
        statement = parse_statement("SELECT a FROM t WHERE b = ?")
        first = bind_statement(statement, (1,))
        second = bind_statement(statement, (2,))
        assert first.where.right == ast.Literal(1)
        assert second.where.right == ast.Literal(2)
        assert statement.where.right == ast.Parameter(0)
