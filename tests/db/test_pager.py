"""Unit and stress tests for the paged row store (pager.py).

Covers the page file, the pinning buffer pool (LRU eviction, dirty
write-back, the pin-violation assertion counter), the record heap
(including jumbo records and rowid verification), the row-map facade, and
an eviction-churn stress test running concurrent readers and writers over
a pool far smaller than the table.  The companion invariant — the
lock-order graph over ``PagedRowStore._lock`` → ``Pager._alloc_lock`` →
``BufferPool._lock`` stays acyclic — is enforced by the reprolint gate in
``tests/analysis/test_framework.py``.
"""

from __future__ import annotations

import threading

import pytest

from repro.db.pager import (
    BufferPool,
    PagedRowMap,
    PagedRowStore,
    PageFile,
    Pager,
)
from repro.errors import PersistenceError


@pytest.fixture()
def pager(tmp_path):
    pager = Pager(tmp_path / "pages.dat", page_size=256, pool_pages=4)
    yield pager
    pager.close()


class TestPageFile:
    def test_read_past_end_is_zero_filled(self, tmp_path):
        file = PageFile(tmp_path / "p.dat", page_size=64)
        assert file.read_page(3) == bytearray(64)
        file.close()

    def test_write_then_read_round_trips(self, tmp_path):
        file = PageFile(tmp_path / "p.dat", page_size=64)
        file.write_page(2, b"x" * 64)
        assert bytes(file.read_page(2)) == b"x" * 64
        assert file.size_bytes >= 3 * 64
        file.close()

    def test_reopen_truncates_previous_contents(self, tmp_path):
        file = PageFile(tmp_path / "p.dat", page_size=64)
        file.write_page(0, b"y" * 64)
        file.close()
        reopened = PageFile(tmp_path / "p.dat", page_size=64)
        assert reopened.size_bytes == 0  # spill file: rebuilt every open
        reopened.close()


class TestBufferPool:
    def test_lru_eviction_caps_resident_pages(self, tmp_path):
        file = PageFile(tmp_path / "p.dat", page_size=64)
        pool = BufferPool(file, capacity_pages=2)
        for page_no in range(5):
            frame = pool.pin(page_no)
            frame.data[0] = page_no + 1
            pool.unpin(page_no, dirty=True)
        stats = pool.stats()
        assert stats["cached_pages"] <= 2
        assert stats["evictions"] >= 3
        # Evicted dirty pages were written back, not lost.
        assert pool.pin(0).data[0] == 1
        pool.unpin(0)
        file.close()

    def test_unpinned_access_bumps_violation_counter(self, tmp_path):
        file = PageFile(tmp_path / "p.dat", page_size=64)
        pool = BufferPool(file, capacity_pages=2)
        assert pool.pin_violations == 0
        pool.unpin(7)  # page was never pinned
        assert pool.pin_violations == 1
        file.close()

    def test_pinned_pages_survive_capacity_pressure(self, tmp_path):
        file = PageFile(tmp_path / "p.dat", page_size=64)
        pool = BufferPool(file, capacity_pages=1)
        held = pool.pin(0)
        held.data[0] = 42
        # A second pin overflows the pool rather than evicting the pinned page.
        pool.pin(1)
        pool.unpin(1)
        assert pool.pin_overflows >= 1
        assert held.data[0] == 42
        pool.unpin(0, dirty=True)
        file.close()

    def test_resize_shrinks_resident_set(self, tmp_path):
        file = PageFile(tmp_path / "p.dat", page_size=64)
        pool = BufferPool(file, capacity_pages=8)
        for page_no in range(8):
            pool.pin(page_no)
            pool.unpin(page_no)
        pool.resize(2)
        assert pool.stats()["cached_pages"] <= 2
        assert pool.stats()["capacity_pages"] == 2
        file.close()


class TestPager:
    def test_write_read_round_trip(self, pager):
        loc = pager.write_record(7, b"payload")
        assert pager.read_record(7, loc) == b"payload"

    def test_records_never_straddle_pages(self, pager):
        locs = [pager.write_record(i, bytes([65 + i]) * 100) for i in range(10)]
        for i, loc in enumerate(locs):
            page_of_start = loc // pager.page_size
            page_of_end = (loc + 100 + 13 - 1) // pager.page_size
            assert page_of_start == page_of_end
            assert pager.read_record(i, loc) == bytes([65 + i]) * 100

    def test_jumbo_record_round_trips(self, pager):
        big = b"j" * (pager.page_size * 3)
        loc = pager.write_record(9, big)
        assert pager.read_record(9, loc) == big
        assert pager.jumbo_records == 1

    def test_rowid_mismatch_is_a_persistence_error(self, pager):
        loc = pager.write_record(1, b"abc")
        with pytest.raises(PersistenceError):
            pager.read_record(2, loc)

    def test_stats_include_pool_and_heap_counters(self, pager):
        pager.write_record(1, b"x")
        stats = pager.stats()
        assert stats["records_written"] == 1
        assert "capacity_pages" in stats and "page_size" in stats


class TestPagedRowStoreAndMap:
    def test_mapping_contract(self, pager):
        rows = PagedRowMap(PagedRowStore(pager))
        rows[1] = {"a": 1}
        rows[2] = {"a": 2}
        rows[1] = {"a": 10}  # update appends a new version, repoints
        del rows[2]
        assert dict(rows.items()) == {1: {"a": 10}}
        assert len(rows) == 1
        assert 1 in rows and 2 not in rows
        with pytest.raises(KeyError):
            rows[2]
        with pytest.raises(KeyError):
            del rows[2]

    def test_add_column_fill_backfills_old_rows_on_decode(self, pager):
        rows = pager.row_map()
        rows[1] = {"a": 1}
        rows.add_column_fill("b", None)
        rows[2] = {"a": 2, "b": 5}
        assert rows[1] == {"a": 1, "b": None}
        assert rows[2] == {"a": 2, "b": 5}

    def test_lazy_snapshot_is_point_in_time(self, pager):
        rows = pager.row_map()
        rows[1] = {"a": 1}
        snapshot = rows.lazy_snapshot()
        rows[2] = {"a": 2}
        rows[1] = {"a": 99}
        assert list(snapshot) == [(1, {"a": 1})]  # captured set AND versions
        assert len(snapshot) == 1


class TestEvictionChurnStress:
    """Concurrent readers and writers over a pool far smaller than the table.

    Rowids are partitioned per writer so "no lost update" is well defined:
    after the churn, every row must hold its writer's final version.  The
    pin-violation assertion counter must stay zero — no code path touched
    a page it did not hold pinned.
    """

    def test_concurrent_churn_loses_no_updates_and_no_pins(self, tmp_path):
        pager = Pager(tmp_path / "pages.dat", page_size=256, pool_pages=4)
        rows = pager.row_map()
        writers, per_writer, rounds = 4, 50, 8
        for rowid in range(writers * per_writer):
            rows[rowid] = {"v": 0, "w": rowid // per_writer}
        errors: list[BaseException] = []
        stop = threading.Event()

        def write(writer: int) -> None:
            try:
                owned = range(writer * per_writer, (writer + 1) * per_writer)
                for version in range(1, rounds + 1):
                    for rowid in owned:
                        rows[rowid] = {"v": version, "w": writer}
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        def read() -> None:
            try:
                while not stop.is_set():
                    for rowid in range(0, writers * per_writer, 7):
                        row = rows[rowid]
                        assert row["w"] == rowid // per_writer
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=write, args=(w,)) for w in range(writers)]
        readers = [threading.Thread(target=read) for _ in range(2)]
        for thread in threads + readers:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        stop.set()
        for thread in readers:
            thread.join(timeout=60)
        try:
            assert not errors, errors
            for rowid in range(writers * per_writer):
                assert rows[rowid] == {"v": rounds, "w": rowid // per_writer}
            assert pager.pool.pin_violations == 0
            assert pager.pool.stats()["evictions"] > 0  # the pool really churned
        finally:
            pager.close()
