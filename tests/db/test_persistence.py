"""End-to-end tests for durable storage: ``repro.connect(path=...)``.

Covers snapshot + WAL recovery, checkpointing (manual, automatic and via
PRAGMA), the durability knobs, crash recovery with a SIGKILLed writer
process, rowid high-water marks across restarts and DROP/re-CREATE, and
the AnswerCache warm start that serves repeat crowd queries with zero
platform calls after a restart."""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import textwrap
import time
from pathlib import Path

import pytest

import repro
from repro.db import Catalog, Connection
from repro.db.durability import DurabilityManager
from repro.db.snapshot import SNAPSHOT_FORMAT_VERSION, load_snapshot
from repro.errors import ExecutionError, PersistenceError


def make_db(path, **knobs) -> Connection:
    conn = repro.connect(path=path, **knobs)
    conn.execute("CREATE TABLE movies (movie_id INTEGER PRIMARY KEY, name TEXT)")
    conn.executemany(
        "INSERT INTO movies (movie_id, name) VALUES (?, ?)",
        [(i, f"movie-{i}") for i in range(1, 6)],
    )
    return conn


class TestRoundTrip:
    def test_rows_survive_reopen(self, tmp_path):
        conn = make_db(tmp_path / "db")
        conn.execute("UPDATE movies SET name = ? WHERE movie_id = ?", ("renamed", 2))
        conn.execute("DELETE FROM movies WHERE movie_id = ?", (5,))
        conn.close()

        reopened = repro.connect(path=tmp_path / "db")
        rows = reopened.execute(
            "SELECT movie_id, name FROM movies ORDER BY movie_id"
        ).fetchall()
        assert rows == [(1, "movie-1"), (2, "renamed"), (3, "movie-3"), (4, "movie-4")]
        reopened.close()

    def test_schema_expansion_and_indexes_survive(self, tmp_path):
        conn = make_db(tmp_path / "db")
        conn.execute("CREATE INDEX ON movies (name)")
        conn.add_perceptual_column("movies", "is_comedy")
        conn.close()

        reopened = repro.connect(path=tmp_path / "db")
        schema = {col["name"]: col for col in reopened.describe("movies")}
        assert schema["is_comedy"]["kind"] == "perceptual"
        assert schema["is_comedy"]["default"] == "MISSING"
        assert reopened.table("movies").index_on("name") is not None
        assert reopened.missing_count("movies", "is_comedy") == 5
        reopened.close()

    def test_crowd_fill_provenance_survives(self, tmp_path):
        conn = make_db(tmp_path / "db")
        conn.add_perceptual_column("movies", "is_comedy")
        conn.table("movies").fill_values(
            "is_comedy",
            {1: True, 2: False},
            provenance="crowd",
            confidences={1: 0.9, 2: 0.8},
        )
        conn.close()

        reopened = repro.connect(path=tmp_path / "db")
        provenance = reopened.value_provenance("movies", "is_comedy")
        assert provenance[1].source == "crowd" and provenance[1].confidence == 0.9
        assert provenance[2].source == "crowd" and provenance[2].confidence == 0.8
        assert reopened.missing_count("movies", "is_comedy") == 3
        reopened.close()

    def test_drop_table_survives(self, tmp_path):
        conn = make_db(tmp_path / "db")
        conn.execute("DROP TABLE movies")
        conn.close()
        reopened = repro.connect(path=tmp_path / "db")
        assert reopened.table_names() == []
        reopened.close()

    def test_connect_rejects_catalog_and_path(self, tmp_path):
        with pytest.raises(ValueError, match="either a catalog or a path"):
            repro.connect(Catalog(), path=tmp_path / "db")

    def test_connect_rejects_durability_knobs_without_path(self):
        # connect(synchronous="full") without a path must not silently
        # pretend to be durable.
        with pytest.raises(ValueError, match="require path"):
            repro.connect(synchronous="full")
        with pytest.raises(ValueError, match="require path"):
            repro.connect(checkpoint_interval=10)

    def test_directory_lock_blocks_second_opener(self, tmp_path):
        conn = make_db(tmp_path / "db")
        with pytest.raises(PersistenceError, match="locked"):
            repro.connect(path=tmp_path / "db")
        conn.close()
        # ... and the lock is released on close.
        reopened = repro.connect(path=tmp_path / "db")
        reopened.close()


class TestCheckpointing:
    def test_manual_checkpoint_truncates_wal(self, tmp_path):
        conn = make_db(tmp_path / "db", checkpoint_interval=None)
        wal_path = tmp_path / "db" / "wal.log"
        conn.commit()  # group commit: flush the buffered records first
        assert wal_path.stat().st_size > 0
        conn.checkpoint()
        assert wal_path.stat().st_size == 0
        snapshot = load_snapshot(tmp_path / "db")
        assert snapshot is not None
        assert snapshot["format_version"] == SNAPSHOT_FORMAT_VERSION
        assert len(snapshot["tables"]) == 1
        conn.close()

        reopened = repro.connect(path=tmp_path / "db")
        stats = reopened.durability.stats()
        assert stats["snapshot_loaded"] is True
        assert stats["records_replayed"] == 0
        assert reopened.execute("SELECT count(*) FROM movies").fetchone() == (5,)
        reopened.close()

    def test_automatic_checkpoint_every_interval(self, tmp_path):
        conn = make_db(tmp_path / "db", checkpoint_interval=4)
        # CREATE + 5 INSERTs = 6 records: at least one auto checkpoint.
        assert conn.durability.stats()["checkpoints"] >= 1
        conn.close()
        reopened = repro.connect(path=tmp_path / "db")
        assert reopened.execute("SELECT count(*) FROM movies").fetchone() == (5,)
        reopened.close()

    def test_post_checkpoint_writes_replay_on_top_of_snapshot(self, tmp_path):
        conn = make_db(tmp_path / "db", checkpoint_interval=None)
        conn.checkpoint()
        conn.execute("INSERT INTO movies (movie_id, name) VALUES (?, ?)", (9, "late"))
        conn.close()
        reopened = repro.connect(path=tmp_path / "db")
        stats = reopened.durability.stats()
        assert stats["snapshot_loaded"] is True and stats["records_replayed"] == 1
        assert reopened.execute(
            "SELECT name FROM movies WHERE movie_id = ?", (9,)
        ).fetchone() == ("late",)
        reopened.close()

    def test_checkpoint_requires_durable_database(self):
        conn = repro.connect()
        with pytest.raises(ExecutionError, match="durable database"):
            conn.checkpoint()

    def test_snapshot_format_version_gate(self, tmp_path):
        conn = make_db(tmp_path / "db")
        conn.checkpoint()
        conn.close()
        snapshot_path = tmp_path / "db" / "snapshot.json"
        snapshot_path.write_text(
            snapshot_path.read_text().replace(
                f'"format_version":{SNAPSHOT_FORMAT_VERSION}', '"format_version":999'
            )
        )
        with pytest.raises(PersistenceError, match="format version"):
            repro.connect(path=tmp_path / "db")


class TestPragmas:
    def test_synchronous_read_and_write(self, tmp_path):
        conn = make_db(tmp_path / "db", synchronous="full")
        assert conn.execute("PRAGMA synchronous").fetchone() == ("full",)
        conn.execute("PRAGMA synchronous = normal")
        assert conn.execute("PRAGMA synchronous").fetchone() == ("normal",)
        with pytest.raises(PersistenceError, match="synchronous"):
            conn.execute("PRAGMA synchronous = eventually")
        conn.close()

    def test_checkpoint_interval_knob(self, tmp_path):
        conn = make_db(tmp_path / "db", checkpoint_interval=None)
        assert conn.execute("PRAGMA checkpoint_interval").fetchone() == (0,)
        conn.execute("PRAGMA checkpoint_interval = 2")
        assert conn.execute("PRAGMA checkpoint_interval").fetchone() == (2,)
        before = conn.durability.stats()["checkpoints"]
        conn.execute("INSERT INTO movies (movie_id, name) VALUES (?, ?)", (7, "a"))
        conn.execute("INSERT INTO movies (movie_id, name) VALUES (?, ?)", (8, "b"))
        assert conn.durability.stats()["checkpoints"] > before
        conn.close()

    def test_wal_checkpoint_pragma(self, tmp_path):
        conn = make_db(tmp_path / "db", checkpoint_interval=None)
        assert conn.execute("PRAGMA wal_checkpoint").fetchone() == ("ok",)
        assert (tmp_path / "db" / "wal.log").stat().st_size == 0
        conn.close()

    def test_durability_stats_pragma(self, tmp_path):
        conn = make_db(tmp_path / "db")
        stats = dict(conn.execute("PRAGMA durability_stats").fetchall())
        assert stats["synchronous"] == "normal"
        assert stats["wal_records"] >= 6
        conn.close()

    def test_memory_database_pragmas(self):
        conn = repro.connect()
        assert conn.execute("PRAGMA synchronous").fetchone() == ("memory",)
        with pytest.raises(ExecutionError, match="durable database"):
            conn.execute("PRAGMA synchronous = full")
        with pytest.raises(ExecutionError, match="durable database"):
            conn.execute("PRAGMA wal_checkpoint")
        with pytest.raises(ExecutionError, match="unknown PRAGMA"):
            conn.execute("PRAGMA no_such_knob")

    def test_explain_analyze_reports_durability_counters(self, tmp_path):
        conn = make_db(tmp_path / "db")
        text = conn.explain_analyze("SELECT count(*) FROM movies")
        assert "Durability:" in text
        assert "wal_records=" in text and "checkpoints=" in text
        conn.close()
        # In-memory plans carry no footer.
        memory = repro.connect()
        memory.execute("CREATE TABLE t (id INTEGER)")
        assert "Durability:" not in memory.explain_analyze("SELECT id FROM t")


class TestRowidWatermarks:
    def test_rowids_never_reused_across_restart(self, tmp_path):
        conn = make_db(tmp_path / "db")
        conn.execute("DELETE FROM movies WHERE movie_id >= ?", (3,))
        conn.close()
        reopened = repro.connect(path=tmp_path / "db")
        reopened.execute("INSERT INTO movies (movie_id, name) VALUES (?, ?)", (10, "new"))
        # Rowids 3-5 were used by the deleted rows; the new row must not
        # reuse them even though the process restarted in between.
        assert reopened.table("movies").rowids() == [1, 2, 6]
        reopened.close()

    def test_rowids_never_reused_across_drop_and_recreate(self, tmp_path):
        conn = make_db(tmp_path / "db")
        conn.execute("DROP TABLE movies")
        conn.execute("CREATE TABLE movies (movie_id INTEGER PRIMARY KEY, name TEXT)")
        conn.execute("INSERT INTO movies (movie_id, name) VALUES (?, ?)", (1, "fresh"))
        assert conn.table("movies").rowids() == [6]
        conn.close()
        # The watermark survives the restart too (via snapshot or WAL).
        reopened = repro.connect(path=tmp_path / "db")
        reopened.execute("INSERT INTO movies (movie_id, name) VALUES (?, ?)", (2, "x"))
        assert reopened.table("movies").rowids() == [6, 7]
        reopened.close()

    def test_watermark_survives_checkpoint_of_dropped_table(self, tmp_path):
        conn = make_db(tmp_path / "db", checkpoint_interval=None)
        conn.execute("DROP TABLE movies")
        conn.checkpoint()  # snapshot now holds the watermark, not the table
        conn.close()
        reopened = repro.connect(path=tmp_path / "db")
        reopened.execute("CREATE TABLE movies (movie_id INTEGER PRIMARY KEY)")
        reopened.execute("INSERT INTO movies (movie_id) VALUES (?)", (1,))
        assert reopened.table("movies").rowids() == [6]
        reopened.close()


class TestCrashRecovery:
    def test_torn_tail_is_dropped_and_truncated(self, tmp_path):
        conn = make_db(tmp_path / "db")
        conn.close()
        wal_path = tmp_path / "db" / "wal.log"
        intact = wal_path.stat().st_size
        with open(wal_path, "ab") as handle:
            handle.write(b"\x40\x00\x00\x00torn-partial-record")
        reopened = repro.connect(path=tmp_path / "db")
        assert reopened.durability.stats()["torn_records_dropped"] == 1
        assert wal_path.stat().st_size == intact
        assert reopened.execute("SELECT count(*) FROM movies").fetchone() == (5,)
        reopened.close()

    def test_kill_mid_commit_recovers_every_acknowledged_row(self, tmp_path):
        """SIGKILL a writer mid-commit; recovery must retain at least every
        row whose INSERT was acknowledged (synchronous=full) and come up
        with a consistent contiguous prefix — never an error."""
        db_path = tmp_path / "killed-db"
        script = textwrap.dedent(
            """
            import sys
            import repro

            conn = repro.connect(path=sys.argv[1], synchronous="full")
            conn.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)")
            i = 0
            while True:
                i += 1
                conn.execute(
                    "INSERT INTO t (id, v) VALUES (?, ?)", (i, "payload-" + "x" * 64)
                )
                print(i, flush=True)  # acknowledged: the WAL record is fsynced
            """
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = str(Path(__file__).resolve().parents[2] / "src") + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        process = subprocess.Popen(
            [sys.executable, "-c", script, str(db_path)],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            env=env,
            text=True,
        )
        acknowledged = 0
        try:
            deadline = time.monotonic() + 30
            while acknowledged < 25:
                assert time.monotonic() < deadline, (
                    "writer subprocess produced no progress; stderr: "
                    + str(process.stderr.read() if process.poll() is not None else "")
                )
                line = process.stdout.readline().strip()
                if line:
                    acknowledged = int(line)
            process.send_signal(signal.SIGKILL)
        finally:
            process.kill()
            process.wait(timeout=30)

        recovered = repro.connect(path=db_path)
        ids = [row[0] for row in recovered.execute("SELECT id FROM t ORDER BY id")]
        # Every acknowledged insert survived; the unacknowledged tail may
        # contain at most what the kill raced in, as a contiguous prefix.
        assert len(ids) >= acknowledged
        assert ids == list(range(1, len(ids) + 1))
        recovered.close()


class TestAnswerCacheWarmStart:
    def test_restart_serves_crowd_answers_from_cache(self, tmp_path):
        conn = make_db(tmp_path / "db")
        conn.add_perceptual_column("movies", "is_comedy")
        conn.table("movies").fill_values(
            "is_comedy",
            {1: True, 2: False, 3: True},
            provenance="crowd",
            confidences={1: 0.9, 2: 0.8, 3: 0.7},
        )
        # Predicted cells must NOT warm the cache: it only ever holds
        # human answers.
        conn.table("movies").fill_values(
            "is_comedy", {4: True}, provenance="predicted", confidences={4: 0.5}
        )
        conn.close()

        reopened = repro.connect(path=tmp_path / "db")
        cache = reopened.acquisition_runtime().cache
        assert len(cache) == 3
        hit, value = cache.get("movies", "is_comedy", 1)
        assert hit and value == 1.0  # REAL perceptual column stores floats
        assert cache.get("movies", "is_comedy", 4) == (False, None)
        reopened.close()

    def test_deleted_row_is_skipped_by_warm_start(self, tmp_path):
        conn = make_db(tmp_path / "db")
        conn.add_perceptual_column("movies", "is_comedy")
        conn.table("movies").fill_values(
            "is_comedy", {1: True, 2: True}, provenance="crowd"
        )
        conn.execute("DELETE FROM movies WHERE movie_id = ?", (1,))
        conn.close()

        reopened = repro.connect(path=tmp_path / "db")
        cache = reopened.acquisition_runtime().cache
        assert cache.get("movies", "is_comedy", 1) == (False, None)
        assert cache.get("movies", "is_comedy", 2) == (True, 1.0)
        reopened.close()

    def test_warm_start_propagates_unexpected_errors(self, tmp_path, monkeypatch):
        # The deleted-row skip is narrowed to ExecutionError; an arbitrary
        # failure while reading a cell is a bug and must surface, not be
        # silently treated as "row deleted".
        conn = make_db(tmp_path / "db")
        conn.add_perceptual_column("movies", "is_comedy")
        conn.table("movies").fill_values("is_comedy", {1: True}, provenance="crowd")
        storage = conn.table("movies")

        def broken_get(rowid):
            raise RuntimeError("storage corrupted")

        monkeypatch.setattr(storage, "get", broken_get)
        with pytest.raises(RuntimeError, match="storage corrupted"):
            conn.durability._collect_crowd_answers()
        monkeypatch.undo()
        conn.close()

    def test_direct_update_invalidates_warm_answer_for_late_runtimes(self, tmp_path):
        conn = make_db(tmp_path / "db")
        conn.add_perceptual_column("movies", "is_comedy")
        conn.table("movies").fill_values(
            "is_comedy", {1: True, 2: True}, provenance="crowd"
        )
        conn.close()

        reopened = repro.connect(path=tmp_path / "db")
        # The UPDATE lands before any runtime registers; a runtime created
        # afterwards must not be warmed with the stale crowd answer.
        reopened.execute(
            "UPDATE movies SET is_comedy = ? WHERE movie_id = ?", (False, 1)
        )
        cache = reopened.acquisition_runtime().cache
        assert cache.get("movies", "is_comedy", 1) == (False, None)
        assert cache.get("movies", "is_comedy", 2) == (True, 1.0)
        reopened.close()


class TestSharedCatalogLifecycle:
    def test_sharing_connection_does_not_close_manager(self, tmp_path):
        owner = make_db(tmp_path / "db")
        sharer = Connection(owner.catalog)
        sharer.close()
        assert not owner.durability.closed
        owner.execute("INSERT INTO movies (movie_id, name) VALUES (?, ?)", (6, "still"))
        owner.close()
        assert owner.durability.closed

    def test_sharer_statements_fail_cleanly_after_owner_closes(self, tmp_path):
        """Once the owning connection closed the directory, a sharer must
        be refused *before* executing — a mutation applied in memory but
        never journaled would silently vanish on restart."""
        owner = make_db(tmp_path / "db")
        sharer = Connection(owner.catalog)
        owner.close()
        with pytest.raises(ExecutionError, match="directory .* is closed"):
            sharer.execute("INSERT INTO movies (movie_id, name) VALUES (?, ?)", (7, "x"))
        with pytest.raises(ExecutionError, match="directory .* is closed"):
            sharer.execute("SELECT count(*) FROM movies")
        # Nothing half-applied: the reopened database has the original rows.
        reopened = repro.connect(path=tmp_path / "db")
        assert reopened.execute("SELECT count(*) FROM movies").fetchone() == (5,)
        reopened.close()

    def test_commit_flushes_pending_group(self, tmp_path):
        conn = make_db(tmp_path / "db", synchronous="normal")
        fsyncs_before = conn.durability.stats()["fsyncs"]
        conn.execute("INSERT INTO movies (movie_id, name) VALUES (?, ?)", (6, "x"))
        conn.commit()
        assert conn.durability.stats()["fsyncs"] > fsyncs_before
        conn.close()

    def test_manager_context_and_repr(self, tmp_path):
        with DurabilityManager(tmp_path / "db") as manager:
            assert "open" in repr(manager)
        assert manager.closed and "closed" in repr(manager)
