"""Hybrid crowd+predict acquisition: sampling policy, lowering, provenance."""

from __future__ import annotations

import math
from typing import Any, Sequence

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db import Catalog, Connection, SessionContext
from repro.db.acquisition import (
    AcquisitionPolicy,
    PredictionBatch,
    choose_sample_size,
    plan_sample,
    select_sample,
)
from repro.db.sql.operators import CrowdFill, PredictFill
from repro.errors import ExecutionError

# ---------------------------------------------------------------------------
# Test doubles
# ---------------------------------------------------------------------------


class CountingSource:
    """ValueSource that answers from a truth table and counts platform calls."""

    def __init__(self, truth: dict[int, Any], key_column: str = "item_id") -> None:
        self.truth = truth
        self.key_column = key_column
        self.calls: list[tuple[str, int]] = []
        self.requested_rowids: list[int] = []

    def request_values(
        self, attribute: str, items: Sequence[tuple[int, dict[str, Any]]]
    ) -> dict[int, Any]:
        self.calls.append((attribute, len(items)))
        self.requested_rowids.extend(rowid for rowid, _row in items)
        return {
            rowid: self.truth[row[self.key_column]]
            for rowid, row in items
            if row.get(self.key_column) in self.truth
        }


class MeanPredictor:
    """AttributePredictor double: predicts the training mean, fixed confidence."""

    def __init__(self, confidence: float = 0.8) -> None:
        self.confidence = confidence
        self.fit_calls: list[tuple[str, int, int]] = []

    def fit_predict(self, attribute, train, targets):
        self.fit_calls.append((attribute, len(train), len(targets)))
        if not train:
            return PredictionBatch()
        mean = sum(float(value) for _r, _row, value in train) / len(train)
        return PredictionBatch(
            values={rowid: mean for rowid, _row in targets},
            confidences={rowid: self.confidence for rowid, _row in targets},
            model_kind="mean",
            rmse=0.1,
            training_size=len(train),
        )


def make_movies(n: int = 40) -> tuple[Catalog, Connection]:
    catalog = Catalog()
    conn = Connection(catalog)
    conn.execute("CREATE TABLE movies (item_id INTEGER PRIMARY KEY, name TEXT)")
    conn.executemany(
        "INSERT INTO movies (item_id, name) VALUES (?, ?)",
        [(i, f"movie-{i}") for i in range(1, n + 1)],
    )
    conn.add_perceptual_column("movies", "humor")
    return catalog, conn


POLICIES = st.builds(
    AcquisitionPolicy,
    sample_fraction=st.floats(0.01, 1.0, allow_nan=False),
    min_sample=st.integers(1, 50),
    min_confidence=st.floats(0.0, 1.0, allow_nan=False),
    cost_ratio=st.floats(0.0, 2.0, allow_nan=False),
    crowd_cost_per_value=st.floats(0.001, 1.0, allow_nan=False),
)


# ---------------------------------------------------------------------------
# Sampling policy properties
# ---------------------------------------------------------------------------


class TestSamplingPolicy:
    @given(
        n=st.integers(0, 5000),
        policy=POLICIES,
        budget=st.floats(0.0, 100.0, allow_nan=False),
    )
    @settings(max_examples=200, deadline=None)
    def test_sample_never_exceeds_budget(self, n, policy, budget):
        size = choose_sample_size(n, policy, budget=budget)
        assert 0 <= size <= n
        assert size * policy.crowd_cost_per_value <= budget + 1e-9

    @given(
        n=st.integers(0, 5000),
        policy=POLICIES,
        low=st.floats(0.0, 50.0, allow_nan=False),
        extra=st.floats(0.0, 50.0, allow_nan=False),
    )
    @settings(max_examples=200, deadline=None)
    def test_coverage_monotone_in_budget(self, n, policy, low, extra):
        smaller = choose_sample_size(n, policy, budget=low)
        larger = choose_sample_size(n, policy, budget=low + extra)
        assert smaller <= larger

    @given(n=st.integers(0, 5000), policy=POLICIES)
    @settings(max_examples=200, deadline=None)
    def test_unbudgeted_sample_bounded_by_candidates(self, n, policy):
        size = choose_sample_size(n, policy)
        assert 0 <= size <= n
        if n > policy.min_sample and policy.cost_ratio < 1.0:
            assert size >= min(n, policy.min_sample)

    @given(
        rowids=st.sets(st.integers(1, 10_000), max_size=300),
        size=st.integers(0, 350),
    )
    @settings(max_examples=200, deadline=None)
    def test_select_sample_is_deterministic_subset(self, rowids, size):
        first = select_sample(rowids, size)
        second = select_sample(rowids, size)
        assert first == second
        assert first <= set(rowids)
        assert len(first) == min(max(size, 0), len(rowids))

    def test_cost_ratio_one_degenerates_to_crowd_only(self):
        policy = AcquisitionPolicy(sample_fraction=0.1, min_sample=5, cost_ratio=1.0)
        assert choose_sample_size(1000, policy) == 1000

    def test_plan_without_source_leaves_all_to_predictor(self):
        plan = plan_sample("humor", range(100), AcquisitionPolicy(), can_acquire=False)
        assert plan.sample_size == 0
        assert plan.predicted_count == 100

    def test_crowd_calls_saved_matches_batch_arithmetic(self):
        plan = plan_sample(
            "humor", range(100), AcquisitionPolicy(sample_fraction=0.2, min_sample=5)
        )
        assert plan.sample_size == 20
        assert plan.crowd_calls_saved(10) == math.ceil(100 / 10) - math.ceil(20 / 10)

    def test_policy_validation(self):
        with pytest.raises(ExecutionError):
            AcquisitionPolicy(sample_fraction=0.0)
        with pytest.raises(ExecutionError):
            AcquisitionPolicy(min_sample=0)
        with pytest.raises(ExecutionError):
            AcquisitionPolicy(min_confidence=1.5)
        with pytest.raises(ExecutionError):
            AcquisitionPolicy(crowd_cost_per_value=0.0)


# ---------------------------------------------------------------------------
# Planner lowering
# ---------------------------------------------------------------------------


def operator_types(cursor) -> list[type]:
    assert cursor.plan is not None
    return [type(op) for op in cursor.plan.walk()]


class TestLowering:
    def test_predictfill_only_with_predictor(self):
        _catalog, conn = make_movies()
        truth = {i: float(i % 7) for i in range(1, 41)}
        conn.set_value_source(CountingSource(truth), batch_size=10)
        cursor = conn.execute("SELECT humor FROM movies")
        assert CrowdFill in operator_types(cursor)
        assert PredictFill not in operator_types(cursor)

    def test_predictfill_only_for_predictable_columns(self):
        _catalog, conn = make_movies()
        conn.set_value_source(CountingSource({}), batch_size=10)
        conn.set_predictor(MeanPredictor())
        cursor = conn.execute("SELECT name FROM movies")
        assert CrowdFill not in operator_types(cursor)
        assert PredictFill not in operator_types(cursor)
        cursor = conn.execute("SELECT humor FROM movies")
        assert PredictFill in operator_types(cursor)

    def test_predictfill_skipped_when_sample_covers_everything(self):
        _catalog, conn = make_movies(n=8)
        truth = {i: 1.0 for i in range(1, 9)}
        conn.set_value_source(CountingSource(truth), batch_size=10)
        # min_sample 10 > 8 candidates: crowd-only is the cost model's call.
        conn.set_predictor(MeanPredictor())
        cursor = conn.execute("SELECT humor FROM movies")
        assert CrowdFill in operator_types(cursor)
        assert PredictFill not in operator_types(cursor)

    def test_predict_only_session_lowers_predictfill_without_crowdfill(self):
        _catalog, conn = make_movies()
        conn.table("movies").fill_values("humor", {i: 5.0 for i in range(1, 11)})
        conn.set_predictor(MeanPredictor())
        cursor = conn.execute("SELECT humor FROM movies")
        assert CrowdFill not in operator_types(cursor)
        assert PredictFill in operator_types(cursor)
        cursor.fetchall()
        assert conn.missing_count("movies", "humor") == 0

    def test_explain_renders_two_stage_plan(self):
        _catalog, conn = make_movies()
        conn.set_value_source(CountingSource({}), batch_size=10)
        conn.set_predictor(MeanPredictor(), sample_fraction=0.25, min_confidence=0.9)
        text = conn.explain("SELECT humor FROM movies")
        assert "CrowdFill(batch_size=10, sample=10)" in text
        assert "PredictFill(sample_fraction=0.25, min_confidence=0.9)" in text


# ---------------------------------------------------------------------------
# Execution: sampling, prediction, provenance, budget, re-acquisition
# ---------------------------------------------------------------------------


class TestHybridExecution:
    def test_hybrid_samples_then_predicts_rest(self):
        _catalog, conn = make_movies(n=40)
        truth = {i: float(i % 5) for i in range(1, 41)}
        source = CountingSource(truth)
        conn.set_value_source(source, batch_size=10)
        predictor = MeanPredictor()
        conn.set_predictor(predictor, sample_fraction=0.25)

        conn.execute("SELECT humor FROM movies").fetchall()
        # 40 candidates, fraction 0.25 -> 10 crowd rows -> 1 platform call.
        assert sum(n for _a, n in source.calls) == 10
        assert len(source.calls) == 1
        assert predictor.fit_calls == [("humor", 10, 30)]
        assert conn.missing_count("movies", "humor") == 0

    def test_provenance_and_confidence_written_back(self):
        _catalog, conn = make_movies(n=40)
        truth = {i: float(i % 5) for i in range(1, 41)}
        conn.set_value_source(CountingSource(truth), batch_size=10)
        conn.set_predictor(MeanPredictor(confidence=0.7), sample_fraction=0.25)
        conn.execute("SELECT humor FROM movies").fetchall()

        counts = conn.provenance_counts("movies", "humor")
        assert counts == {"crowd": 10, "predicted": 30}
        provenance = conn.value_provenance("movies", "humor")
        crowd = [p for p in provenance.values() if p.source == "crowd"]
        predicted = [p for p in provenance.values() if p.source == "predicted"]
        assert all(p.confidence == 1.0 for p in crowd)
        assert all(p.confidence == pytest.approx(0.7) for p in predicted)

    def test_direct_update_resets_provenance_to_stored(self):
        _catalog, conn = make_movies(n=40)
        conn.set_value_source(CountingSource({i: 1.0 for i in range(1, 41)}), batch_size=10)
        conn.set_predictor(MeanPredictor(), sample_fraction=0.25)
        conn.execute("SELECT humor FROM movies").fetchall()
        conn.execute("UPDATE movies SET humor = ? WHERE item_id = ?", (9.5, 1))
        storage = conn.table("movies")
        rowid = storage.select_rowids(lambda row: row["item_id"] == 1)[0]
        assert storage.provenance_of("humor", rowid).source == "stored"

    def test_low_confidence_cells_are_reacquired_by_later_queries(self):
        _catalog, conn = make_movies(n=30)
        truth = {i: float(i % 3) for i in range(1, 31)}
        source = CountingSource(truth)
        conn.set_value_source(source, batch_size=30)
        conn.set_predictor(
            MeanPredictor(confidence=0.4),
            sample_fraction=0.34,
            min_confidence=0.6,
        )
        conn.execute("SELECT humor FROM movies").fetchall()
        first_counts = conn.provenance_counts("movies", "humor")
        # ceil(0.34 * 30) = 11 crowd answers, 19 low-confidence predictions.
        assert first_counts == {"crowd": 11, "predicted": 19}

        # Re-acquisition: full-sample policy turns every low-confidence
        # predicted cell back into a crowd answer on the next query.
        conn.set_predictor(MeanPredictor(confidence=0.4), sample_fraction=1.0, min_confidence=0.6)
        conn.execute("SELECT humor FROM movies").fetchall()
        assert conn.provenance_counts("movies", "humor") == {"crowd": 30}

    def test_budget_caps_the_crowd_sample(self):
        catalog = Catalog()
        session = SessionContext(
            max_cost=0.05,
            predictor=MeanPredictor(),
            acquisition=AcquisitionPolicy(
                sample_fraction=1.0, min_sample=1, crowd_cost_per_value=0.01
            ),
        )
        conn = Connection(catalog, session=session)
        conn.execute("CREATE TABLE movies (item_id INTEGER PRIMARY KEY, name TEXT)")
        conn.executemany(
            "INSERT INTO movies (item_id, name) VALUES (?, ?)",
            [(i, f"movie-{i}") for i in range(1, 41)],
        )
        conn.add_perceptual_column("movies", "humor")
        source = CountingSource({i: 2.0 for i in range(1, 41)})
        conn.set_value_source(source, batch_size=50)
        conn.execute("SELECT humor FROM movies").fetchall()
        # $0.05 at $0.01/value affords 5 crowd answers; the rest is predicted.
        assert sum(n for _a, n in source.calls) == 5
        assert conn.missing_count("movies", "humor") == 0

    def test_predictor_never_trains_on_its_own_predictions(self):
        _catalog, conn = make_movies(n=40)
        truth = {i: float(i % 5) for i in range(1, 61)}
        conn.set_value_source(CountingSource(truth), batch_size=10)
        predictor = MeanPredictor()
        conn.set_predictor(predictor, sample_fraction=0.25)
        conn.execute("SELECT humor FROM movies").fetchall()
        assert predictor.fit_calls == [("humor", 10, 30)]

        # New rows arrive; the next query's training set must contain the
        # 10 crowd answers but none of the 30 previously predicted cells.
        conn.executemany(
            "INSERT INTO movies (item_id, name) VALUES (?, ?)",
            [(i, f"movie-{i}") for i in range(41, 61)],
        )
        conn.execute("SELECT humor FROM movies").fetchall()
        # Training set: the 10 crowd answers of query 1 plus the 10-row
        # sample of the new rows — never the 30 predicted cells.
        assert predictor.fit_calls[-1] == ("humor", 20, 10)

    def test_budget_is_apportioned_across_attributes(self):
        catalog = Catalog()
        session = SessionContext(
            max_cost=0.10,
            predictor=MeanPredictor(),
            acquisition=AcquisitionPolicy(
                sample_fraction=1.0, min_sample=1, crowd_cost_per_value=0.01
            ),
        )
        conn = Connection(catalog, session=session)
        conn.execute("CREATE TABLE movies (item_id INTEGER PRIMARY KEY, name TEXT)")
        conn.executemany(
            "INSERT INTO movies (item_id, name) VALUES (?, ?)",
            [(i, f"movie-{i}") for i in range(1, 41)],
        )
        conn.add_perceptual_column("movies", "humor")
        conn.add_perceptual_column("movies", "suspense")
        source = CountingSource({i: 2.0 for i in range(1, 41)})
        conn.set_value_source(source, batch_size=50)
        conn.execute("SELECT humor, suspense FROM movies").fetchall()
        # $0.10 at $0.01/value affords 10 crowd answers *total*, not per
        # attribute: the plan splits them instead of double-spending.
        assert sum(n for _a, n in source.calls) == 10

    def test_explain_analyze_reports_prediction_stats(self):
        _catalog, conn = make_movies(n=40)
        truth = {i: float(i % 5) for i in range(1, 41)}
        conn.set_value_source(CountingSource(truth), batch_size=10)
        conn.set_predictor(MeanPredictor(), sample_fraction=0.25)
        text = conn.explain_analyze("SELECT humor FROM movies")
        assert "CrowdFill(batch_size=10, sample=10)" in text
        assert "batches=1" in text
        assert "predicted=30" in text
        assert "crowd_calls_saved=3" in text
        assert "rmse=humor:0.100" in text

    def test_unpredictable_cells_stay_missing(self):
        _catalog, conn = make_movies(n=20)

        class NoPredictor:
            def fit_predict(self, attribute, train, targets):
                return PredictionBatch(training_size=len(train))

        conn.set_value_source(CountingSource({i: 1.0 for i in range(1, 21)}), batch_size=5)
        conn.set_predictor(NoPredictor(), sample_fraction=0.5)
        conn.execute("SELECT humor FROM movies").fetchall()
        assert conn.missing_count("movies", "humor") == 10
