"""Tests for the SQL parser."""

from __future__ import annotations

import pytest

from repro.db.sql import ast
from repro.db.sql.parser import parse_sql, parse_statement
from repro.db.types import MISSING
from repro.errors import SQLSyntaxError


class TestSelectParsing:
    def test_simple_select(self):
        statement = parse_statement("SELECT name FROM movies")
        assert isinstance(statement, ast.SelectStatement)
        assert statement.from_table.name == "movies"
        assert statement.items[0].expression == ast.ColumnRef("name")

    def test_select_star(self):
        statement = parse_statement("SELECT * FROM movies")
        assert isinstance(statement.items[0].expression, ast.Star)

    def test_select_qualified_star(self):
        statement = parse_statement("SELECT m.* FROM movies m")
        star = statement.items[0].expression
        assert isinstance(star, ast.Star)
        assert star.table == "m"

    def test_aliases(self):
        statement = parse_statement("SELECT name AS title, year y FROM movies AS m")
        assert statement.items[0].alias == "title"
        assert statement.items[1].alias == "y"
        assert statement.from_table.alias == "m"

    def test_where_comparison(self):
        statement = parse_statement("SELECT * FROM movies WHERE year >= 1980")
        where = statement.where
        assert isinstance(where, ast.BinaryOp)
        assert where.op == ">="
        assert where.right == ast.Literal(1980)

    def test_where_boolean_literals(self):
        statement = parse_statement("SELECT * FROM movies WHERE is_comedy = true")
        assert statement.where.right == ast.Literal(True)

    def test_missing_literal(self):
        statement = parse_statement("SELECT * FROM movies WHERE humor IS MISSING")
        assert isinstance(statement.where, ast.IsNull)
        assert statement.where.missing is True

    def test_is_not_null(self):
        statement = parse_statement("SELECT * FROM movies WHERE year IS NOT NULL")
        assert statement.where.negated is True

    def test_and_or_precedence(self):
        statement = parse_statement("SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3")
        where = statement.where
        assert where.op == "or"
        assert where.right.op == "and"

    def test_not(self):
        statement = parse_statement("SELECT * FROM t WHERE NOT a = 1")
        assert isinstance(statement.where, ast.UnaryOp)
        assert statement.where.op == "not"

    def test_in_list(self):
        statement = parse_statement("SELECT * FROM t WHERE year IN (1980, 1990)")
        assert isinstance(statement.where, ast.InList)
        assert len(statement.where.items) == 2

    def test_not_in_list(self):
        statement = parse_statement("SELECT * FROM t WHERE year NOT IN (1, 2)")
        assert statement.where.negated is True

    def test_between(self):
        statement = parse_statement("SELECT * FROM t WHERE year BETWEEN 1980 AND 1989")
        assert isinstance(statement.where, ast.Between)

    def test_like(self):
        statement = parse_statement("SELECT * FROM t WHERE name LIKE 'R%'")
        assert statement.where.op == "like"

    def test_arithmetic_precedence(self):
        statement = parse_statement("SELECT 1 + 2 * 3")
        expr = statement.items[0].expression
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_parentheses(self):
        statement = parse_statement("SELECT (1 + 2) * 3")
        expr = statement.items[0].expression
        assert expr.op == "*"
        assert expr.left.op == "+"

    def test_unary_minus(self):
        statement = parse_statement("SELECT -5")
        expr = statement.items[0].expression
        assert isinstance(expr, ast.UnaryOp)
        assert expr.op == "neg"

    def test_function_call(self):
        statement = parse_statement("SELECT count(*), avg(year) FROM movies")
        count = statement.items[0].expression
        avg = statement.items[1].expression
        assert count.star is True
        assert avg.name == "avg"

    def test_count_distinct(self):
        statement = parse_statement("SELECT count(DISTINCT year) FROM movies")
        assert statement.items[0].expression.distinct is True

    def test_group_by_having(self):
        statement = parse_statement(
            "SELECT year, count(*) FROM movies GROUP BY year HAVING count(*) > 1"
        )
        assert len(statement.group_by) == 1
        assert statement.having is not None

    def test_order_by_limit_offset(self):
        statement = parse_statement(
            "SELECT name FROM movies ORDER BY year DESC, name LIMIT 10 OFFSET 5"
        )
        assert statement.order_by[0].ascending is False
        assert statement.order_by[1].ascending is True
        assert statement.limit == 10
        assert statement.offset == 5

    def test_distinct(self):
        assert parse_statement("SELECT DISTINCT year FROM movies").distinct is True

    def test_join_on(self):
        statement = parse_statement(
            "SELECT m.name, r.score FROM movies m JOIN ratings r ON m.movie_id = r.movie_id"
        )
        assert len(statement.joins) == 1
        assert statement.joins[0].kind == "inner"
        assert statement.joins[0].right.alias == "r"

    def test_left_join(self):
        statement = parse_statement(
            "SELECT * FROM movies m LEFT JOIN ratings r ON m.movie_id = r.movie_id"
        )
        assert statement.joins[0].kind == "left"

    def test_cross_join(self):
        statement = parse_statement("SELECT * FROM a CROSS JOIN b")
        assert statement.joins[0].kind == "cross"
        assert statement.joins[0].condition is None

    def test_case_expression(self):
        statement = parse_statement(
            "SELECT CASE WHEN year < 1980 THEN 'old' ELSE 'new' END FROM movies"
        )
        expr = statement.items[0].expression
        assert isinstance(expr, ast.CaseExpression)
        assert len(expr.branches) == 1
        assert expr.default == ast.Literal("new")

    def test_qualified_column(self):
        statement = parse_statement("SELECT m.name FROM movies m")
        ref = statement.items[0].expression
        assert ref.table == "m"
        assert ref.key() == "m.name"

    def test_trailing_semicolon_ok(self):
        parse_statement("SELECT 1;")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(SQLSyntaxError):
            parse_statement("SELECT 1 garbage extra tokens FROM")

    def test_missing_from_value(self):
        with pytest.raises(SQLSyntaxError):
            parse_statement("SELECT FROM movies")


class TestDDLParsing:
    def test_create_table(self):
        statement = parse_statement(
            "CREATE TABLE movies (movie_id INTEGER PRIMARY KEY, name TEXT NOT NULL, "
            "humor REAL PERCEPTUAL, year INTEGER DEFAULT 2000)"
        )
        assert isinstance(statement, ast.CreateTableStatement)
        assert statement.table == "movies"
        assert statement.columns[0].primary_key is True
        assert statement.columns[1].not_null is True
        assert statement.columns[2].perceptual is True
        assert statement.columns[3].default == ast.Literal(2000)

    def test_create_table_if_not_exists(self):
        statement = parse_statement("CREATE TABLE IF NOT EXISTS t (a INTEGER)")
        assert statement.if_not_exists is True

    def test_drop_table(self):
        statement = parse_statement("DROP TABLE IF EXISTS movies")
        assert isinstance(statement, ast.DropTableStatement)
        assert statement.if_exists is True

    def test_alter_table_add_column(self):
        statement = parse_statement("ALTER TABLE movies ADD COLUMN is_comedy BOOLEAN PERCEPTUAL")
        assert isinstance(statement, ast.AlterTableAddColumn)
        assert statement.column.name == "is_comedy"
        assert statement.column.perceptual is True

    def test_alter_table_without_column_keyword(self):
        statement = parse_statement("ALTER TABLE movies ADD suspense REAL")
        assert statement.column.name == "suspense"


class TestDMLParsing:
    def test_insert_with_columns(self):
        statement = parse_statement(
            "INSERT INTO movies (movie_id, name) VALUES (1, 'Rocky'), (2, 'Psycho')"
        )
        assert isinstance(statement, ast.InsertStatement)
        assert statement.columns == ("movie_id", "name")
        assert len(statement.rows) == 2

    def test_insert_without_columns(self):
        statement = parse_statement("INSERT INTO t VALUES (1, 2, 3)")
        assert statement.columns == ()
        assert len(statement.rows[0]) == 3

    def test_insert_missing_literal(self):
        statement = parse_statement("INSERT INTO t (a) VALUES (MISSING)")
        assert statement.rows[0][0] == ast.Literal(MISSING)

    def test_update(self):
        statement = parse_statement("UPDATE movies SET year = 2001, name = 'x' WHERE movie_id = 1")
        assert isinstance(statement, ast.UpdateStatement)
        assert len(statement.assignments) == 2
        assert statement.where is not None

    def test_delete(self):
        statement = parse_statement("DELETE FROM movies WHERE year < 1950")
        assert isinstance(statement, ast.DeleteStatement)

    def test_delete_without_where(self):
        assert parse_statement("DELETE FROM movies").where is None


class TestScripts:
    def test_parse_sql_multiple_statements(self):
        statements = parse_sql(
            "CREATE TABLE t (a INTEGER); INSERT INTO t VALUES (1); SELECT * FROM t;"
        )
        assert len(statements) == 3

    def test_unknown_statement(self):
        with pytest.raises(SQLSyntaxError):
            parse_statement("VACUUM movies")


class TestAstHelpers:
    def test_is_aggregate(self):
        statement = parse_statement("SELECT count(*) + 1, year FROM movies GROUP BY year")
        assert ast.is_aggregate(statement.items[0].expression) is True
        assert ast.is_aggregate(statement.items[1].expression) is False

    def test_referenced_columns(self):
        statement = parse_statement(
            "SELECT name FROM movies WHERE year > 1980 AND (rating + 1) * 2 > 10"
        )
        refs = ast.referenced_columns(statement.where)
        assert {ref.name for ref in refs} == {"year", "rating"}
