"""Tests for the row storage layer (inserts, updates, indexes, MISSING accounting)."""

from __future__ import annotations

import pytest

from repro.db.schema import Column, TableSchema, perceptual_column
from repro.db.storage import TableStorage
from repro.db.types import MISSING, ColumnType, is_missing
from repro.errors import ExecutionError, IntegrityError, UnknownColumnError


@pytest.fixture
def storage() -> TableStorage:
    schema = TableSchema(
        "movies",
        [
            Column("movie_id", ColumnType.INTEGER, nullable=False),
            Column("name", ColumnType.TEXT, nullable=False),
            Column("year", ColumnType.INTEGER),
            perceptual_column("is_comedy", ColumnType.BOOLEAN),
        ],
        primary_key="movie_id",
    )
    table = TableStorage(schema)
    table.insert({"movie_id": 1, "name": "Rocky", "year": 1976})
    table.insert({"movie_id": 2, "name": "Psycho", "year": 1960})
    table.insert({"movie_id": 3, "name": "Airplane!", "year": 1980})
    return table


class TestInsert:
    def test_insert_returns_increasing_rowids(self, storage):
        rowid = storage.insert({"movie_id": 9, "name": "Vertigo"})
        assert rowid == 4
        assert len(storage) == 4

    def test_insert_many(self, storage):
        rowids = storage.insert_many(
            [{"movie_id": 10, "name": "a"}, {"movie_id": 11, "name": "b"}]
        )
        assert rowids == [4, 5]

    def test_primary_key_uniqueness(self, storage):
        with pytest.raises(IntegrityError):
            storage.insert({"movie_id": 1, "name": "Duplicate"})

    def test_primary_key_must_not_be_null(self, storage):
        with pytest.raises(IntegrityError):
            storage.insert({"movie_id": None, "name": "x"})

    def test_perceptual_column_defaults_to_missing(self, storage):
        row = storage.get(1)
        assert is_missing(row["is_comedy"])


class TestGetUpdateDelete:
    def test_get_unknown_rowid(self, storage):
        with pytest.raises(ExecutionError):
            storage.get(99)

    def test_update_changes_value_and_index(self, storage):
        storage.update(1, {"year": 1977})
        assert storage.get(1)["year"] == 1977

    def test_update_respects_not_null(self, storage):
        with pytest.raises(IntegrityError):
            storage.update(1, {"name": None})

    def test_update_unknown_column(self, storage):
        with pytest.raises(UnknownColumnError):
            storage.update(1, {"director": "someone"})

    def test_delete(self, storage):
        storage.delete(2)
        assert len(storage) == 2
        with pytest.raises(ExecutionError):
            storage.get(2)

    def test_delete_removes_from_index(self, storage):
        index = storage.index_on("movie_id")
        assert index.lookup(2)
        storage.delete(2)
        assert not index.lookup(2)


class TestIndexes:
    def test_primary_key_indexed_automatically(self, storage):
        index = storage.index_on("movie_id")
        assert index is not None
        assert index.lookup(1)

    def test_create_index_backfills(self, storage):
        index = storage.create_index("year")
        assert index.lookup(1976)
        assert len(index) == 3

    def test_create_index_unknown_column(self, storage):
        with pytest.raises(UnknownColumnError):
            storage.create_index("director")

    def test_create_index_twice_returns_same(self, storage):
        first = storage.create_index("year")
        second = storage.create_index("year")
        assert first is second

    def test_missing_values_not_indexed(self, storage):
        index = storage.create_index("is_comedy")
        assert len(index) == 0

    def test_index_updates_on_update(self, storage):
        index = storage.create_index("year")
        storage.update(1, {"year": 2000})
        assert not index.lookup(1976) or 1 not in index.lookup(1976)
        assert 1 in index.lookup(2000)


class TestScans:
    def test_scan_yields_all_rows(self, storage):
        assert len(list(storage.scan())) == 3

    def test_rows_returns_copies(self, storage):
        rows = storage.rows()
        rows[0]["name"] = "mutated"
        assert storage.get(1)["name"] == "Rocky"

    def test_select_rowids(self, storage):
        rowids = storage.select_rowids(lambda row: row["year"] > 1970)
        assert set(rowids) == {1, 3}


class TestSchemaEvolutionAndMissing:
    def test_add_column_fills_missing(self, storage):
        storage.add_column(perceptual_column("suspense"))
        assert all(is_missing(row["suspense"]) for row in storage.rows())

    def test_add_column_with_value(self, storage):
        storage.add_column(Column("views", ColumnType.INTEGER), fill_value=0)
        assert all(row["views"] == 0 for row in storage.rows())

    def test_missing_rowids_and_fraction(self, storage):
        assert storage.missing_rowids("is_comedy") == [1, 2, 3]
        assert storage.missing_fraction("is_comedy") == 1.0
        storage.update(1, {"is_comedy": True})
        assert storage.missing_rowids("is_comedy") == [2, 3]
        assert storage.missing_fraction("is_comedy") == pytest.approx(2 / 3)

    def test_fill_values(self, storage):
        updated = storage.fill_values("is_comedy", {1: True, 3: False})
        assert updated == 2
        assert storage.get(1)["is_comedy"] is True
        assert storage.get(3)["is_comedy"] is False
        assert is_missing(storage.get(2)["is_comedy"])

    def test_missing_fraction_empty_table(self):
        schema = TableSchema("t", [Column("a", ColumnType.INTEGER)])
        assert TableStorage(schema).missing_fraction("a") == 0.0
