"""Tests for value types, coercion and MISSING semantics."""

from __future__ import annotations

import copy

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.db.types import (
    MISSING,
    ColumnType,
    Missing,
    coerce_value,
    is_absent,
    is_missing,
    python_type_of,
)
from repro.errors import TypeMismatchError


class TestMissingSingleton:
    def test_missing_is_singleton(self):
        assert Missing() is MISSING
        assert Missing() is Missing()

    def test_missing_is_falsy(self):
        # This test *specifies* the sentinel's truthiness, so it is the one
        # place allowed to test it by bool() rather than identity.
        assert not MISSING  # reprolint: disable=missing-identity

    def test_missing_repr(self):
        assert repr(MISSING) == "MISSING"

    def test_is_missing(self):
        assert is_missing(MISSING)
        assert not is_missing(None)
        assert not is_missing(0)
        assert not is_missing(False)

    def test_is_absent_covers_null_and_missing(self):
        assert is_absent(None)
        assert is_absent(MISSING)
        assert not is_absent(0)
        assert not is_absent("")

    def test_copy_preserves_singleton(self):
        assert copy.copy(MISSING) is MISSING
        assert copy.deepcopy(MISSING) is MISSING


class TestColumnTypeParsing:
    @pytest.mark.parametrize(
        "name,expected",
        [
            ("INTEGER", ColumnType.INTEGER),
            ("int", ColumnType.INTEGER),
            ("BIGINT", ColumnType.INTEGER),
            ("real", ColumnType.REAL),
            ("FLOAT", ColumnType.REAL),
            ("double", ColumnType.REAL),
            ("TEXT", ColumnType.TEXT),
            ("varchar", ColumnType.TEXT),
            ("BOOLEAN", ColumnType.BOOLEAN),
            ("bool", ColumnType.BOOLEAN),
        ],
    )
    def test_from_name(self, name, expected):
        assert ColumnType.from_name(name) is expected

    def test_unknown_type_raises(self):
        with pytest.raises(TypeMismatchError):
            ColumnType.from_name("geometry")

    def test_python_type_of(self):
        assert python_type_of(ColumnType.INTEGER) is int
        assert python_type_of(ColumnType.REAL) is float
        assert python_type_of(ColumnType.TEXT) is str
        assert python_type_of(ColumnType.BOOLEAN) is bool


class TestCoercion:
    def test_null_and_missing_pass_through(self):
        for column_type in ColumnType:
            assert coerce_value(None, column_type) is None
            assert coerce_value(MISSING, column_type) is MISSING

    def test_integer_coercion(self):
        assert coerce_value(5, ColumnType.INTEGER) == 5
        assert coerce_value(5.0, ColumnType.INTEGER) == 5
        assert coerce_value("42", ColumnType.INTEGER) == 42
        assert coerce_value(True, ColumnType.INTEGER) == 1

    def test_integer_rejects_fractional(self):
        with pytest.raises(TypeMismatchError):
            coerce_value(5.5, ColumnType.INTEGER)

    def test_integer_rejects_garbage_string(self):
        with pytest.raises(TypeMismatchError):
            coerce_value("five", ColumnType.INTEGER)

    def test_real_coercion(self):
        assert coerce_value(3, ColumnType.REAL) == 3.0
        assert isinstance(coerce_value(3, ColumnType.REAL), float)
        assert coerce_value("2.5", ColumnType.REAL) == 2.5

    def test_real_rejects_garbage(self):
        with pytest.raises(TypeMismatchError):
            coerce_value("abc", ColumnType.REAL)

    def test_text_coercion(self):
        assert coerce_value("hi", ColumnType.TEXT) == "hi"
        assert coerce_value(12, ColumnType.TEXT) == "12"
        assert coerce_value(True, ColumnType.TEXT) == "true"

    def test_text_rejects_collections(self):
        with pytest.raises(TypeMismatchError):
            coerce_value([1, 2], ColumnType.TEXT)

    @pytest.mark.parametrize("value,expected", [
        (True, True), (False, False), (1, True), (0, False),
        ("true", True), ("FALSE", False), ("yes", True), ("no", False),
        ("1", True), ("0", False),
    ])
    def test_boolean_coercion(self, value, expected):
        assert coerce_value(value, ColumnType.BOOLEAN) is expected

    def test_boolean_rejects_other_numbers(self):
        with pytest.raises(TypeMismatchError):
            coerce_value(2, ColumnType.BOOLEAN)

    def test_boolean_rejects_garbage_string(self):
        with pytest.raises(TypeMismatchError):
            coerce_value("maybe", ColumnType.BOOLEAN)


class TestCoercionProperties:
    @given(st.integers(min_value=-10**9, max_value=10**9))
    def test_integer_roundtrip(self, value):
        assert coerce_value(value, ColumnType.INTEGER) == value
        assert coerce_value(str(value), ColumnType.INTEGER) == value

    @given(st.floats(allow_nan=False, allow_infinity=False, width=32))
    def test_real_roundtrip(self, value):
        assert coerce_value(value, ColumnType.REAL) == pytest.approx(value)

    @given(st.text(max_size=50))
    def test_text_identity(self, value):
        assert coerce_value(value, ColumnType.TEXT) == value

    @given(st.booleans())
    def test_boolean_identity(self, value):
        assert coerce_value(value, ColumnType.BOOLEAN) is value

    @given(st.integers(min_value=-1000, max_value=1000))
    def test_coercion_is_idempotent(self, value):
        once = coerce_value(value, ColumnType.REAL)
        twice = coerce_value(once, ColumnType.REAL)
        assert once == twice
