"""Tests for expression evaluation and three-valued logic."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.db.sql import ast
from repro.db.sql.expressions import (
    RowContext,
    evaluate,
    evaluate_predicate,
    expression_label,
)
from repro.db.sql.parser import parse_statement
from repro.db.types import MISSING
from repro.errors import ExecutionError, UnknownColumnError


def context(**values) -> RowContext:
    ctx = RowContext()
    ctx.add_table_row("t", values)
    return ctx


def where_expr(sql_condition: str) -> ast.Expression:
    statement = parse_statement(f"SELECT 1 FROM t WHERE {sql_condition}")
    return statement.where


class TestBasicEvaluation:
    def test_literal(self):
        assert evaluate(ast.Literal(42), RowContext()) == 42

    def test_column_lookup(self):
        assert evaluate(ast.ColumnRef("year"), context(year=1980)) == 1980

    def test_qualified_column_lookup(self):
        assert evaluate(ast.ColumnRef("year", table="t"), context(year=1980)) == 1980

    def test_unknown_column(self):
        with pytest.raises(UnknownColumnError):
            evaluate(ast.ColumnRef("nope"), context(year=1980))

    def test_arithmetic(self):
        assert evaluate(where_expr("2 + 3 * 4 = 14"), RowContext()) is True
        assert evaluate(ast.BinaryOp("-", ast.Literal(10), ast.Literal(4)), RowContext()) == 6
        assert evaluate(ast.BinaryOp("/", ast.Literal(9), ast.Literal(2)), RowContext()) == 4.5

    def test_division_by_zero_is_null(self):
        assert evaluate(ast.BinaryOp("/", ast.Literal(1), ast.Literal(0)), RowContext()) is None

    def test_string_concatenation(self):
        assert evaluate(ast.BinaryOp("||", ast.Literal("a"), ast.Literal("b")), RowContext()) == "ab"

    def test_comparison_operators(self):
        ctx = context(year=1980)
        assert evaluate(where_expr("year = 1980"), ctx) is True
        assert evaluate(where_expr("year != 1980"), ctx) is False
        assert evaluate(where_expr("year < 1990"), ctx) is True
        assert evaluate(where_expr("year >= 1981"), ctx) is False

    def test_incomparable_types_raise(self):
        with pytest.raises(ExecutionError):
            evaluate(where_expr("name > 5"), context(name="Rocky"))

    def test_like(self):
        ctx = context(name="Rocky II")
        assert evaluate(where_expr("name LIKE 'Rocky%'"), ctx) is True
        assert evaluate(where_expr("name LIKE 'rocky%'"), ctx) is True
        assert evaluate(where_expr("name LIKE 'R_cky II'"), ctx) is True
        assert evaluate(where_expr("name LIKE 'Psycho'"), ctx) is False

    def test_in_list(self):
        ctx = context(year=1980)
        assert evaluate(where_expr("year IN (1979, 1980)"), ctx) is True
        assert evaluate(where_expr("year NOT IN (1979, 1980)"), ctx) is False
        assert evaluate(where_expr("year IN (1, 2)"), ctx) is False

    def test_between(self):
        ctx = context(year=1985)
        assert evaluate(where_expr("year BETWEEN 1980 AND 1989"), ctx) is True
        assert evaluate(where_expr("year NOT BETWEEN 1980 AND 1989"), ctx) is False
        assert evaluate(where_expr("year BETWEEN 1990 AND 1999"), ctx) is False

    def test_case_expression(self):
        expr = parse_statement(
            "SELECT CASE WHEN year < 1980 THEN 'old' WHEN year < 2000 THEN 'mid' ELSE 'new' END"
        ).items[0].expression
        assert evaluate(expr, context(year=1970)) == "old"
        assert evaluate(expr, context(year=1990)) == "mid"
        assert evaluate(expr, context(year=2010)) == "new"

    def test_scalar_functions(self):
        ctx = context(name="Rocky", rating=7.86)
        assert evaluate(where_expr("length(name) = 5"), ctx) is True
        assert evaluate(where_expr("upper(name) = 'ROCKY'"), ctx) is True
        assert evaluate(where_expr("lower(name) = 'rocky'"), ctx) is True
        assert evaluate(where_expr("abs(-2) = 2"), ctx) is True
        assert evaluate(where_expr("round(rating, 1) = 7.9"), ctx) is True

    def test_coalesce(self):
        ctx = context(a=None, b=MISSING, c=3)
        expr = parse_statement("SELECT coalesce(a, b, c, 9)").items[0].expression
        assert evaluate(expr, ctx) == 3

    def test_unknown_function(self):
        with pytest.raises(ExecutionError):
            evaluate(parse_statement("SELECT sqrt(4)").items[0].expression, RowContext())

    def test_aggregate_outside_aggregation_raises(self):
        with pytest.raises(ExecutionError):
            evaluate(parse_statement("SELECT count(*)").items[0].expression, RowContext())


class TestThreeValuedLogic:
    def test_null_comparison_is_unknown(self):
        assert evaluate(where_expr("year = 1980"), context(year=None)) is None

    def test_missing_comparison_is_unknown(self):
        assert evaluate(where_expr("year = 1980"), context(year=MISSING)) is None

    def test_unknown_collapses_to_false_in_predicate(self):
        assert evaluate_predicate(where_expr("year = 1980"), context(year=None)) is False
        assert evaluate_predicate(where_expr("year = 1980"), context(year=MISSING)) is False

    def test_and_kleene(self):
        assert evaluate(where_expr("a = 1 AND b = 1"), context(a=1, b=None)) is None
        assert evaluate(where_expr("a = 2 AND b = 1"), context(a=1, b=None)) is False
        assert evaluate(where_expr("a = 1 AND b = 1"), context(a=1, b=1)) is True

    def test_or_kleene(self):
        assert evaluate(where_expr("a = 1 OR b = 1"), context(a=1, b=None)) is True
        assert evaluate(where_expr("a = 2 OR b = 1"), context(a=1, b=None)) is None
        assert evaluate(where_expr("a = 2 OR b = 2"), context(a=1, b=1)) is False

    def test_not_unknown_is_unknown(self):
        assert evaluate(where_expr("NOT b = 1"), context(b=None)) is None

    def test_is_null(self):
        assert evaluate(where_expr("a IS NULL"), context(a=None)) is True
        assert evaluate(where_expr("a IS NULL"), context(a=MISSING)) is True
        assert evaluate(where_expr("a IS NOT NULL"), context(a=5)) is True

    def test_is_missing_distinguishes_null(self):
        assert evaluate(where_expr("a IS MISSING"), context(a=MISSING)) is True
        assert evaluate(where_expr("a IS MISSING"), context(a=None)) is False
        assert evaluate(where_expr("a IS NOT MISSING"), context(a=5)) is True

    def test_in_list_with_unknown_member(self):
        assert evaluate(where_expr("a IN (1, b)"), context(a=5, b=None)) is None
        assert evaluate(where_expr("a IN (5, b)"), context(a=5, b=None)) is True

    def test_arithmetic_with_null_is_null(self):
        assert evaluate(where_expr("a + 1 = 2"), context(a=None)) is None

    def test_empty_predicate_is_true(self):
        assert evaluate_predicate(None, RowContext()) is True


class TestMissingResolver:
    def test_resolver_supplies_value(self):
        calls = []

        def resolver(ref, row):
            calls.append(ref.name)
            return 9.0

        ctx = context(humor=MISSING)
        result = evaluate(where_expr("humor >= 8"), ctx, missing_resolver=resolver)
        assert result is True
        assert calls == ["humor"]

    def test_resolver_returning_missing_keeps_unknown(self):
        ctx = context(humor=MISSING)
        result = evaluate(
            where_expr("humor >= 8"), ctx, missing_resolver=lambda ref, row: MISSING
        )
        assert result is None

    def test_resolver_not_called_for_present_values(self):
        def resolver(ref, row):  # pragma: no cover - should not run
            raise AssertionError("resolver must not be called")

        assert evaluate(where_expr("year = 1980"), context(year=1980), missing_resolver=resolver)


class TestRowContext:
    def test_ambiguous_bare_name(self):
        ctx = RowContext()
        ctx.add_table_row("a", {"id": 1})
        ctx.add_table_row("b", {"id": 2})
        with pytest.raises(ExecutionError):
            ctx.lookup(ast.ColumnRef("id"))
        assert ctx.lookup(ast.ColumnRef("id", table="a")) == 1
        assert ctx.lookup(ast.ColumnRef("id", table="b")) == 2

    def test_set_overrides_ambiguity(self):
        ctx = RowContext()
        ctx.add_table_row("a", {"id": 1})
        ctx.add_table_row("b", {"id": 2})
        ctx.set("id", 3)
        assert ctx.lookup(ast.ColumnRef("id")) == 3

    def test_as_mapping_contains_qualified_keys(self):
        ctx = context(year=1980)
        mapping = ctx.as_mapping()
        assert mapping["t.year"] == 1980
        assert mapping["year"] == 1980


class TestExpressionLabel:
    def test_labels(self):
        statement = parse_statement("SELECT name, count(*), year + 1, -year FROM movies")
        labels = [expression_label(item.expression) for item in statement.items]
        assert labels[0] == "name"
        assert labels[1] == "count(*)"
        assert "year" in labels[2]


class TestEvaluationProperties:
    @given(st.integers(-1000, 1000), st.integers(-1000, 1000))
    def test_comparison_matches_python(self, a, b):
        ctx = context(a=a, b=b)
        assert evaluate(where_expr("a < b"), ctx) is (a < b)
        assert evaluate(where_expr("a = b"), ctx) is (a == b)

    @given(st.integers(-100, 100), st.integers(-100, 100))
    def test_addition_matches_python(self, a, b):
        ctx = context(a=a, b=b)
        expr = parse_statement("SELECT a + b").items[0].expression
        assert evaluate(expr, ctx) == a + b

    @given(st.booleans(), st.booleans())
    def test_and_or_match_python_on_known_values(self, a, b):
        ctx = context(a=a, b=b)
        assert evaluate(where_expr("a AND b"), ctx) is (a and b)
        assert evaluate(where_expr("a OR b"), ctx) is (a or b)
