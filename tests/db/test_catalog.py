"""Tests for the database catalog."""

from __future__ import annotations

import pytest

from repro.db.catalog import Catalog
from repro.db.schema import Column, TableSchema
from repro.db.types import ColumnType
from repro.errors import DuplicateTableError, UnknownTableError


def schema(name: str) -> TableSchema:
    return TableSchema(name, [Column("id", ColumnType.INTEGER)])


class TestCatalog:
    def test_create_and_lookup(self):
        catalog = Catalog()
        storage = catalog.create_table(schema("movies"))
        assert catalog.table("movies") is storage
        assert catalog.table("MOVIES") is storage
        assert catalog.has_table("Movies")

    def test_duplicate_table(self):
        catalog = Catalog()
        catalog.create_table(schema("movies"))
        with pytest.raises(DuplicateTableError):
            catalog.create_table(schema("movies"))

    def test_if_not_exists_returns_existing(self):
        catalog = Catalog()
        first = catalog.create_table(schema("movies"))
        second = catalog.create_table(schema("movies"), if_not_exists=True)
        assert first is second

    def test_unknown_table(self):
        with pytest.raises(UnknownTableError):
            Catalog().table("nope")

    def test_drop_table(self):
        catalog = Catalog()
        catalog.create_table(schema("movies"))
        catalog.drop_table("movies")
        assert not catalog.has_table("movies")
        with pytest.raises(UnknownTableError):
            catalog.drop_table("movies")
        catalog.drop_table("movies", if_exists=True)

    def test_recreated_table_never_reuses_rowids(self):
        """Regression: rowids restarted at 1 after DROP TABLE/re-CREATE,
        so stale references (cached crowd answers, provenance) could alias
        the new incarnation's rows.  The catalog now carries a per-name
        high-water mark forward."""
        catalog = Catalog()
        first = catalog.create_table(schema("movies"))
        first.insert({"id": 1})
        first.insert({"id": 2})
        catalog.drop_table("movies")
        second = catalog.create_table(schema("movies"))
        assert second.insert({"id": 99}) == 3
        assert catalog.rowid_watermarks() == {"movies": 3}
        # A second drop/re-create keeps advancing, never rewinds.
        catalog.drop_table("movies")
        third = catalog.create_table(schema("movies"))
        assert third.insert({"id": 1}) == 4

    def test_table_names_and_iteration(self):
        catalog = Catalog()
        catalog.create_table(schema("a"))
        catalog.create_table(schema("b"))
        assert catalog.table_names() == ["a", "b"]
        assert len(catalog) == 2
        assert len(list(iter(catalog))) == 2
