"""Tests for the physical operator algebra: lowering, joins, CrowdFill, EXPLAIN."""

from __future__ import annotations

from typing import Any, Sequence

import pytest

from repro.db import Catalog, Connection, connect
from repro.db.sql.operators import (
    CrowdFill,
    HashJoin,
    IndexScan,
    NestedLoopJoin,
    SeqScan,
    _ComparableValue,
)
from repro.db.types import MISSING


class CountingSource:
    """ValueSource that records every batch call and answers a constant."""

    def __init__(self, value: Any = 1.0) -> None:
        self.value = value
        self.calls: list[tuple[str, int]] = []

    def request_values(
        self, attribute: str, items: Sequence[tuple[int, dict[str, Any]]]
    ) -> dict[int, Any]:
        self.calls.append((attribute, len(items)))
        return {rowid: self.value for rowid, _row in items}


def make_joined_catalog() -> Catalog:
    catalog = Catalog()
    setup = Connection(catalog)
    setup.execute(
        "CREATE TABLE movies (movie_id INTEGER PRIMARY KEY, name TEXT, year INTEGER)"
    )
    setup.execute(
        "INSERT INTO movies VALUES (1, 'Rocky', 1976), (2, 'Psycho', 1960), "
        "(3, 'Airplane!', 1980), (4, 'Vertigo', 1958)"
    )
    setup.execute("CREATE TABLE ratings (movie_id INTEGER, user_id INTEGER, score REAL)")
    setup.execute(
        "INSERT INTO ratings VALUES (1, 100, 5), (1, 101, 4), (2, 100, 5), (9, 103, 1)"
    )
    return catalog


def operators_of(cursor) -> list[type]:
    assert cursor.plan is not None
    return [type(op) for op in cursor.plan.walk()]


class TestJoinLowering:
    def test_qualified_equi_join_uses_hash_join(self):
        conn = Connection(make_joined_catalog())
        cursor = conn.execute(
            "SELECT m.name FROM movies m JOIN ratings r ON m.movie_id = r.movie_id"
        )
        assert HashJoin in operators_of(cursor)
        assert NestedLoopJoin not in operators_of(cursor)

    def test_reversed_equality_also_uses_hash_join(self):
        conn = Connection(make_joined_catalog())
        cursor = conn.execute(
            "SELECT m.name FROM movies m JOIN ratings r ON r.movie_id = m.movie_id"
        )
        assert HashJoin in operators_of(cursor)

    def test_non_equi_condition_falls_back_to_nested_loop(self):
        conn = Connection(make_joined_catalog())
        cursor = conn.execute(
            "SELECT m.name FROM movies m JOIN ratings r ON m.movie_id < r.movie_id"
        )
        assert NestedLoopJoin in operators_of(cursor)
        assert HashJoin not in operators_of(cursor)

    def test_cross_join_uses_nested_loop(self):
        conn = Connection(make_joined_catalog())
        cursor = conn.execute("SELECT count(*) FROM movies CROSS JOIN ratings")
        assert NestedLoopJoin in operators_of(cursor)

    def test_hash_joins_can_be_disabled(self):
        conn = Connection(make_joined_catalog(), hash_joins=False)
        cursor = conn.execute(
            "SELECT m.name FROM movies m JOIN ratings r ON m.movie_id = r.movie_id"
        )
        assert NestedLoopJoin in operators_of(cursor)
        assert HashJoin not in operators_of(cursor)

    def test_per_row_resolver_disables_hash_join(self):
        conn = Connection(make_joined_catalog())
        conn.set_missing_resolver(lambda ref, row: MISSING)
        cursor = conn.execute(
            "SELECT m.name FROM movies m JOIN ratings r ON m.movie_id = r.movie_id"
        )
        assert NestedLoopJoin in operators_of(cursor)

    def test_point_lookup_uses_index_scan(self):
        conn = Connection(make_joined_catalog())
        cursor = conn.execute("SELECT name FROM movies WHERE movie_id = ?", (2,))
        assert cursor.fetchall() == [("Psycho",)]
        assert IndexScan in operators_of(cursor)


class TestJoinEquivalence:
    """The hash path must produce exactly the nested-loop results."""

    QUERIES = [
        "SELECT m.name, r.score FROM movies m JOIN ratings r "
        "ON m.movie_id = r.movie_id ORDER BY m.movie_id, r.user_id",
        "SELECT m.name, r.score FROM movies m LEFT JOIN ratings r "
        "ON m.movie_id = r.movie_id ORDER BY m.movie_id, r.user_id",
        "SELECT r.movie_id, count(*) AS n FROM ratings r JOIN movies m "
        "ON r.movie_id = m.movie_id GROUP BY r.movie_id ORDER BY n DESC, r.movie_id",
    ]

    @pytest.mark.parametrize("sql", QUERIES)
    def test_hash_and_nested_loop_agree(self, sql):
        catalog = make_joined_catalog()
        hash_rows = Connection(catalog).execute(sql).fetchall()
        nl_rows = Connection(catalog, hash_joins=False).execute(sql).fetchall()
        assert hash_rows == nl_rows

    def test_null_join_keys_never_match(self):
        catalog = Catalog()
        setup = Connection(catalog)
        setup.execute("CREATE TABLE a (id INTEGER PRIMARY KEY, k INTEGER)")
        setup.execute("CREATE TABLE b (id INTEGER PRIMARY KEY, k INTEGER)")
        setup.execute("INSERT INTO a VALUES (1, 10), (2, NULL)")
        setup.execute("INSERT INTO b VALUES (1, 10), (2, NULL)")
        sql = "SELECT a.id, b.id FROM a JOIN b ON a.k = b.k"
        for connection in (Connection(catalog), Connection(catalog, hash_joins=False)):
            assert connection.execute(sql).fetchall() == [(1, 1)]

    def test_left_join_null_row_for_unmatched(self):
        catalog = make_joined_catalog()
        sql = (
            "SELECT m.name, r.score FROM movies m LEFT JOIN ratings r "
            "ON m.movie_id = r.movie_id WHERE m.movie_id = 4"
        )
        for connection in (Connection(catalog), Connection(catalog, hash_joins=False)):
            assert connection.execute(sql).fetchall() == [("Vertigo", None)]


class TestPhysicalExplain:
    def test_join_filter_limit_tree(self):
        conn = Connection(make_joined_catalog())
        text = conn.explain(
            "SELECT m.name FROM movies m JOIN ratings r ON m.movie_id = r.movie_id "
            "WHERE m.year > 1960 LIMIT 2"
        )
        lines = text.splitlines()
        assert "SeqScan" in lines[0]
        assert any("HashJoin" in line for line in lines)
        assert any("Filter" in line for line in lines)
        assert any("Project" in line for line in lines)
        assert any("Limit 2" in line for line in lines)
        # the build side of the join is indented beneath the join operator
        join_index = next(i for i, line in enumerate(lines) if "HashJoin" in line)
        assert lines[join_index + 1].startswith("  ")

    def test_explain_statement_renders_physical_tree(self):
        conn = Connection(make_joined_catalog())
        result = conn.execute("EXPLAIN SELECT name FROM movies WHERE year > 1960").result
        text = "\n".join(row[0] for row in result.rows)
        assert "SeqScan movies" in text
        assert "Filter" in text
        assert "Project name" in text

    def test_explain_analyze_reports_row_counts(self):
        conn = Connection(make_joined_catalog())
        text = conn.explain_analyze("SELECT name FROM movies WHERE year > 1960")
        assert "rows=" in text
        filter_line = next(line for line in text.splitlines() if "Filter" in line)
        assert "rows=2" in filter_line  # Rocky (1976) and Airplane! (1980)

    def test_crowd_fill_appears_with_value_source(self):
        conn = Connection(make_joined_catalog())
        conn.add_perceptual_column("movies", "is_funny")
        conn.set_value_source(CountingSource(True), batch_size=7)
        text = conn.explain(
            "SELECT m.name FROM movies m JOIN ratings r ON m.movie_id = r.movie_id "
            "WHERE m.is_funny = true LIMIT 2"
        )
        assert "CrowdFill(batch_size=7) movies.is_funny" in text
        assert "HashJoin" in text
        assert "Limit 2" in text

    def test_crowd_fill_absent_without_source(self):
        conn = Connection(make_joined_catalog())
        conn.add_perceptual_column("movies", "is_funny")
        assert "CrowdFill" not in conn.explain(
            "SELECT name FROM movies WHERE is_funny = true"
        )


class TestCrowdFillBatching:
    def _connection(self, n_rows: int) -> Connection:
        conn = connect()
        conn.execute("CREATE TABLE items (item_id INTEGER PRIMARY KEY)")
        conn.executemany(
            "INSERT INTO items (item_id) VALUES (?)", [(i,) for i in range(1, n_rows + 1)]
        )
        conn.add_perceptual_column("items", "appeal")
        return conn

    def test_n_missing_rows_produce_ceil_n_over_b_calls(self):
        conn = self._connection(10)
        source = CountingSource(0.9)
        conn.set_value_source(source, batch_size=3)
        (count,) = conn.execute("SELECT count(*) FROM items WHERE appeal > 0.5").fetchone()
        assert count == 10
        # 10 missing rows, batch_size 3 -> ceil(10/3) = 4 coalesced calls
        assert [size for _attr, size in source.calls] == [3, 3, 3, 1]

    def test_batch_of_exact_multiple(self):
        conn = self._connection(6)
        source = CountingSource(0.9)
        conn.set_value_source(source, batch_size=3)
        conn.execute("SELECT count(*) FROM items WHERE appeal > 0.5").fetchone()
        assert [size for _attr, size in source.calls] == [3, 3]

    def test_write_back_persists_values(self):
        conn = self._connection(8)
        source = CountingSource(0.9)
        conn.set_value_source(source, batch_size=4)
        conn.execute("SELECT count(*) FROM items WHERE appeal > 0.5").fetchone()
        assert len(source.calls) == 2
        assert conn.missing_count("items", "appeal") == 0
        # everything persisted: the second query needs no crowd work
        conn.execute("SELECT count(*) FROM items WHERE appeal > 0.5").fetchone()
        assert len(source.calls) == 2

    def test_without_write_back_values_stay_missing(self):
        conn = self._connection(4)
        source = CountingSource(0.9)
        conn.set_value_source(source, batch_size=4)
        conn.session.crowd_write_back = False
        (count,) = conn.execute("SELECT count(*) FROM items WHERE appeal > 0.5").fetchone()
        assert count == 4
        assert conn.missing_count("items", "appeal") == 4
        # The cells stay MISSING in storage, but the repeat query is served
        # from the runtime's cross-query AnswerCache: same answer, zero
        # additional platform calls.
        (count,) = conn.execute("SELECT count(*) FROM items WHERE appeal > 0.5").fetchone()
        assert count == 4
        assert len(source.calls) == 1
        assert conn.acquisition_runtime().cache.stats().hits == 4

    def test_partial_answers_leave_rest_missing(self):
        class PartialSource:
            def request_values(self, attribute, items):
                return {rowid: 1.0 for rowid, _row in items if rowid % 2 == 0}

        conn = self._connection(6)
        conn.set_value_source(PartialSource(), batch_size=10)
        (count,) = conn.execute("SELECT count(appeal) FROM items").fetchone()
        assert count == 3
        assert conn.missing_count("items", "appeal") == 3

    def test_crowd_fill_stats_in_explain_analyze(self):
        conn = self._connection(10)
        conn.set_value_source(CountingSource(0.9), batch_size=5)
        text = conn.explain_analyze("SELECT count(*) FROM items WHERE appeal > 0.5")
        crowd_line = next(line for line in text.splitlines() if "CrowdFill" in line)
        assert "batch_size=5" in crowd_line
        assert "batches=2" in crowd_line
        assert "filled=10/10" in crowd_line

    def test_expansion_query_batches_after_column_is_added(self):
        """The full paper loop: unknown column -> expansion -> batched fill."""
        conn = self._connection(9)
        source = CountingSource(True)
        conn.set_value_source(source, batch_size=4)

        def handler(table: str, column: str) -> bool:
            conn.add_perceptual_column(table, column)
            return True

        conn.set_expansion_handler(handler)
        (count,) = conn.execute("SELECT count(*) FROM items WHERE cult = ?", (True,)).fetchone()
        assert count == 9
        # 9 missing rows, batch_size 4 -> ceil(9/4) = 3 platform calls
        assert [size for _attr, size in source.calls] == [4, 4, 1]

    def test_invalid_batch_size_rejected_at_configuration_time(self):
        conn = self._connection(2)
        with pytest.raises(ValueError):
            conn.set_value_source(CountingSource(1.0), batch_size=0)
        with pytest.raises(ValueError):
            conn.expansion().with_value_source(CountingSource(1.0), batch_size=-1)

    def test_fully_populated_column_streams_without_buffering(self):
        """Regression: CrowdFill must not hold up rows that need no filling."""
        conn = self._connection(50)
        conn.table("items").fill_values(
            "appeal", {rowid: 0.9 for rowid in conn.table("items").rowids()}
        )
        source = CountingSource(0.9)
        conn.set_value_source(source, batch_size=10)
        cursor = conn.execute("SELECT item_id FROM items WHERE appeal > 0.5 LIMIT 5")
        assert len(cursor.fetchall()) == 5
        scan = next(op for op in cursor.plan.walk() if isinstance(op, SeqScan))
        assert scan.rows_scanned == 5  # LIMIT still terminates the scan early
        assert source.calls == []  # nothing was missing, nothing dispatched

    def test_crowd_fill_targets_only_referenced_tables(self):
        """Regression: a same-named perceptual column on a joined table the
        query never reads must not receive crowd dispatches."""
        conn = connect()
        conn.execute("CREATE TABLE movies (movie_id INTEGER PRIMARY KEY, name TEXT)")
        conn.execute("CREATE TABLE reviews (review_id INTEGER PRIMARY KEY, movie_id INTEGER)")
        conn.execute("INSERT INTO movies VALUES (1, 'Rocky'), (2, 'Psycho')")
        conn.execute("INSERT INTO reviews VALUES (10, 1), (11, 2)")
        conn.add_perceptual_column("movies", "is_comedy")
        conn.add_perceptual_column("reviews", "is_comedy")
        source = CountingSource(True)
        conn.set_value_source(source, batch_size=10)
        conn.execute(
            "SELECT m.name FROM movies m JOIN reviews r ON m.movie_id = r.movie_id "
            "WHERE m.is_comedy = ?",
            (True,),
        ).fetchall()
        assert source.calls == [("is_comedy", 2)]  # one batch, movies only
        assert conn.missing_count("reviews", "is_comedy") == 2

    def test_budget_exhausted_session_stops_dispatching(self):
        from repro.db import SessionContext

        conn = self._connection(6)
        conn.session.max_cost = 1.0
        conn.session.cost_spent = 1.0
        assert isinstance(conn.session, SessionContext)
        source = CountingSource(0.9)
        conn.set_value_source(source, batch_size=2)
        (count,) = conn.execute("SELECT count(appeal) FROM items").fetchone()
        assert count == 0  # nothing dispatched, cells stay MISSING
        assert source.calls == []

    def test_cost_aware_source_charges_session(self):
        class CostedSource(CountingSource):
            total_cost = 0.0

            def request_values(self, attribute, items):
                CostedSource.total_cost += 0.25
                return super().request_values(attribute, items)

        conn = self._connection(8)
        conn.set_value_source(CostedSource(0.9), batch_size=4)
        conn.execute("SELECT count(*) FROM items WHERE appeal > 0.5").fetchone()
        assert conn.session.cost_spent == pytest.approx(0.5)  # two batches


class TestComparableValue:
    def test_hash_consistent_with_eq(self):
        assert _ComparableValue(1) == _ComparableValue(1.0)
        assert hash(_ComparableValue(1)) == hash(_ComparableValue(1.0))
        assert _ComparableValue(True) == _ComparableValue(1)
        assert hash(_ComparableValue(True)) == hash(_ComparableValue(1))

    def test_unknowns_share_rank_and_hash(self):
        assert _ComparableValue(None) == _ComparableValue(MISSING)
        assert hash(_ComparableValue(None)) == hash(_ComparableValue(MISSING))

    def test_usable_in_sets(self):
        values = {_ComparableValue(1), _ComparableValue(1.0), _ComparableValue("a")}
        assert len(values) == 2

    def test_nulls_last_regression_both_directions(self):
        conn = connect()
        conn.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)")
        conn.executemany(
            "INSERT INTO t VALUES (?, ?)",
            [(1, 10), (2, None), (3, 5), (4, None), (5, 20)],
        )
        ascending = [r[0] for r in conn.execute("SELECT id FROM t ORDER BY v").fetchall()]
        descending = [r[0] for r in conn.execute("SELECT id FROM t ORDER BY v DESC").fetchall()]
        # NULLS LAST regardless of direction; known keys properly ordered
        assert ascending[:3] == [3, 1, 5]
        assert set(ascending[3:]) == {2, 4}
        assert descending[:3] == [5, 1, 3]
        assert set(descending[3:]) == {2, 4}


class TestScanCounters:
    def test_seq_scan_counts_pulled_rows(self):
        conn = Connection(make_joined_catalog())
        cursor = conn.execute("SELECT name FROM movies")
        cursor.fetchall()
        scan = next(op for op in cursor.plan.walk() if isinstance(op, SeqScan))
        assert scan.rows_scanned == 4

    def test_crowd_fill_operator_exposed_in_plan(self):
        conn = connect()
        conn.execute("CREATE TABLE t (item_id INTEGER PRIMARY KEY)")
        conn.execute("INSERT INTO t VALUES (1), (2)")
        conn.add_perceptual_column("t", "appeal")
        conn.set_value_source(CountingSource(0.5), batch_size=2)
        cursor = conn.execute("SELECT appeal FROM t")
        cursor.fetchall()
        fill = next(op for op in cursor.plan.walk() if isinstance(op, CrowdFill))
        assert fill.batches_dispatched == 1
        assert fill.values_filled == 2
