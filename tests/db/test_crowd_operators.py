"""Tests for the crowd-backed operators (fill, compare, order)."""

from __future__ import annotations

import pytest

from repro.db.crowd_operators import (
    CallableValueSource,
    CrowdCompareOperator,
    CrowdFillOperator,
    CrowdOrderOperator,
    StaticValueSource,
)
from repro.db.schema import Column, TableSchema, perceptual_column
from repro.db.storage import TableStorage
from repro.db.types import MISSING, ColumnType, is_missing
from repro.errors import ExecutionError


@pytest.fixture
def table() -> TableStorage:
    schema = TableSchema(
        "movies",
        [
            Column("item_id", ColumnType.INTEGER, nullable=False),
            Column("name", ColumnType.TEXT),
            perceptual_column("humor"),
        ],
        primary_key="item_id",
    )
    storage = TableStorage(schema)
    for item_id in range(1, 11):
        storage.insert({"item_id": item_id, "name": f"Movie {item_id}"})
    return storage


class TestCrowdFill:
    def test_fill_everything(self, table):
        source = CallableValueSource(lambda attr, rowid, row: float(row["item_id"]))
        report = CrowdFillOperator(source).fill(table, "humor")
        assert report.requested == 10
        assert report.filled == 10
        assert report.coverage == 1.0
        assert table.missing_rowids("humor") == []

    def test_fill_records_crowd_provenance(self, table):
        source = CallableValueSource(lambda attr, rowid, row: float(row["item_id"]))
        CrowdFillOperator(source).fill(table, "humor")
        provenance = table.provenance_map("humor")
        assert provenance, "fill must leave a provenance trail"
        assert all(entry.source == "crowd" for entry in provenance.values())

    def test_partial_fill_reports_unresolved(self, table):
        source = CallableValueSource(
            lambda attr, rowid, row: 5.0 if row["item_id"] % 2 == 0 else MISSING
        )
        report = CrowdFillOperator(source).fill(table, "humor")
        assert report.filled == 5
        assert len(report.unresolved_rowids) == 5
        assert report.coverage == 0.5

    def test_fill_specific_rowids(self, table):
        source = StaticValueSource({1: 9.0, 2: 8.0})
        report = CrowdFillOperator(source).fill(table, "humor", rowids=[1, 2, 3])
        assert report.filled == 2
        assert report.unresolved_rowids == [3]

    def test_fill_respects_batch_size(self, table):
        batches = []

        class RecordingSource:
            def request_values(self, attribute, items):
                batches.append(len(items))
                return {rowid: 1.0 for rowid, _row in items}

        CrowdFillOperator(RecordingSource()).fill(table, "humor", batch_size=3)
        assert batches == [3, 3, 3, 1]

    def test_invalid_batch_size(self, table):
        with pytest.raises(ExecutionError):
            CrowdFillOperator(StaticValueSource({})).fill(table, "humor", batch_size=0)

    def test_nothing_missing_is_noop(self, table):
        source = StaticValueSource({rowid: 1.0 for rowid in table.rowids()})
        CrowdFillOperator(source).fill(table, "humor")
        report = CrowdFillOperator(StaticValueSource({})).fill(table, "humor")
        assert report.requested == 0
        assert report.coverage == 1.0


class TestCrowdCompareAndOrder:
    def test_compare_sign_normalisation(self):
        class Source:
            def compare(self, criterion, left, right):
                return left["v"] - right["v"]

        operator = CrowdCompareOperator(Source())
        assert operator.compare("humor", {"v": 3}, {"v": 1}) == 1
        assert operator.compare("humor", {"v": 1}, {"v": 3}) == -1
        assert operator.compare("humor", {"v": 2}, {"v": 2}) == 0

    def test_compare_rejects_non_numeric(self):
        class BadSource:
            def compare(self, criterion, left, right):
                return "better"

        with pytest.raises(ExecutionError):
            CrowdCompareOperator(BadSource()).compare("humor", {}, {})

    def test_order_sorts_descending_by_default(self):
        class Source:
            def compare(self, criterion, left, right):
                return left["v"] - right["v"]

        rows = [{"v": v} for v in [3, 1, 4, 1, 5, 9, 2, 6]]
        operator = CrowdOrderOperator(Source())
        ordered = operator.order(rows, "humor")
        assert [row["v"] for row in ordered] == sorted([3, 1, 4, 1, 5, 9, 2, 6], reverse=True)

    def test_order_ascending(self):
        class Source:
            def compare(self, criterion, left, right):
                return left["v"] - right["v"]

        rows = [{"v": v} for v in [5, 2, 7]]
        ordered = CrowdOrderOperator(Source()).order(rows, "humor", descending=False)
        assert [row["v"] for row in ordered] == [2, 5, 7]

    def test_order_uses_n_log_n_comparisons(self):
        class Source:
            def compare(self, criterion, left, right):
                return left["v"] - right["v"]

        rows = [{"v": v} for v in range(32)]
        operator = CrowdOrderOperator(Source())
        operator.order(rows, "humor")
        exhaustive = 32 * 31 // 2
        assert 0 < operator.comparisons_used < exhaustive

    def test_order_of_single_row(self):
        class Source:
            def compare(self, criterion, left, right):  # pragma: no cover
                raise AssertionError("no comparisons needed")

        ordered = CrowdOrderOperator(Source()).order([{"v": 1}], "humor")
        assert ordered == [{"v": 1}]


class TestValueSources:
    def test_callable_source_skips_missing(self):
        source = CallableValueSource(lambda attr, rowid, row: MISSING)
        assert source.request_values("humor", [(1, {})]) == {}

    def test_static_source_ignores_unknown_rowids(self):
        source = StaticValueSource({1: True})
        assert source.request_values("x", [(1, {}), (2, {})]) == {1: True}

    def test_static_source_skips_missing_values(self):
        source = StaticValueSource({1: MISSING})
        assert source.request_values("x", [(1, {})]) == {}
        assert not is_missing(source.request_values("x", [(1, {})]).get(1, None))
