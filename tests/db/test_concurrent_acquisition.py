"""Engine-level tests for concurrent crowd acquisition and answer caching.

Covers the contracts the acquisition runtime adds to the query engine:
cross-query cache behaviour (TTL-driven re-acquisition, direct-UPDATE
invalidation), in-flight coalescing across connections sharing a catalog,
determinism of crowd answers across concurrency levels, and the new
EXPLAIN ANALYZE counters.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Sequence

from repro.crowd.platform import CrowdPlatform
from repro.crowd.runtime import AcquisitionRuntime
from repro.crowd.sources import SimulatedCrowdValueSource
from repro.crowd.worker import WorkerPool
from repro.db import Catalog, Connection, SessionContext


class BlockingSource:
    """ValueSource answering a constant, optionally blocking mid-dispatch."""

    def __init__(self, value: Any = 0.9) -> None:
        self.value = value
        self.calls: list[tuple[str, tuple[int, ...]]] = []
        self._lock = threading.Lock()
        self.entered = threading.Event()
        self.release = threading.Event()
        self.release.set()

    def request_values(
        self, attribute: str, items: Sequence[tuple[int, dict[str, Any]]]
    ) -> dict[int, Any]:
        with self._lock:
            self.calls.append((attribute, tuple(rowid for rowid, _row in items)))
        self.entered.set()
        assert self.release.wait(timeout=10.0), "test forgot to release the source"
        return {rowid: self.value for rowid, _row in items}


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def make_items_connection(
    n: int, catalog: Catalog | None = None, session: SessionContext | None = None
) -> Connection:
    conn = Connection(catalog if catalog is not None else Catalog(), session=session)
    if not conn.catalog.has_table("items"):
        conn.execute("CREATE TABLE items (item_id INTEGER PRIMARY KEY, name TEXT)")
        conn.executemany(
            "INSERT INTO items (item_id, name) VALUES (?, ?)",
            [(i, f"item-{i}") for i in range(1, n + 1)],
        )
        conn.add_perceptual_column("items", "appeal")
    return conn


class TestAnswerCacheThroughTheEngine:
    def test_ttl_expiry_triggers_reacquisition(self):
        clock = FakeClock()
        runtime = AcquisitionRuntime(cache_ttl_seconds=60.0, clock=clock)
        conn = make_items_connection(4)
        conn.set_acquisition_runtime(runtime)
        source = BlockingSource()
        conn.set_value_source(source, batch_size=10)
        conn.session.crowd_write_back = False

        conn.execute("SELECT count(appeal) FROM items").fetchone()
        assert len(source.calls) == 1
        # Within the TTL the repeat query is cache-served...
        clock.advance(59.0)
        conn.execute("SELECT count(appeal) FROM items").fetchone()
        assert len(source.calls) == 1
        # ... past it the entries expire and the crowd is asked again.
        clock.advance(2.0)
        conn.execute("SELECT count(appeal) FROM items").fetchone()
        assert len(source.calls) == 2
        assert runtime.cache.stats().expirations == 4

    def test_direct_update_invalidates_cached_cell(self):
        conn = make_items_connection(4)
        runtime = conn.acquisition_runtime()
        source = BlockingSource(value=0.9)
        conn.set_value_source(source, batch_size=10)
        conn.session.crowd_write_back = False

        conn.execute("SELECT count(appeal) FROM items").fetchone()
        assert len(runtime.cache) == 4
        conn.execute("UPDATE items SET appeal = ? WHERE item_id = ?", (0.1, 3))
        stats = runtime.cache.stats()
        assert stats.invalidations == 1
        assert len(runtime.cache) == 3
        # The updated cell holds a stored value now; the other three are
        # cache-served, so the repeat query needs no platform call at all.
        conn.execute("SELECT count(appeal) FROM items").fetchone()
        assert len(source.calls) == 1

    def test_update_invalidates_persisted_crowd_answer(self):
        # write_back=True: the crowd answer is both stored and cached; a
        # direct UPDATE must evict the cache entry (the stored value wins).
        conn = make_items_connection(3)
        runtime = conn.acquisition_runtime()
        conn.set_value_source(BlockingSource(value=0.9), batch_size=10)
        conn.execute("SELECT count(appeal) FROM items").fetchone()
        assert len(runtime.cache) == 3
        conn.execute("UPDATE items SET appeal = ? WHERE item_id = ?", (0.2, 1))
        assert len(runtime.cache) == 2
        assert runtime.cache.get("items", "appeal", 1) == (False, None)

    def test_acquisition_write_back_does_not_invalidate_its_own_entries(self):
        conn = make_items_connection(5)
        runtime = conn.acquisition_runtime()
        conn.set_value_source(BlockingSource(value=0.7), batch_size=10)
        conn.execute("SELECT count(appeal) FROM items").fetchone()
        # fill_values persisted 5 crowd answers; none of those writes may
        # evict the cache entries they correspond to.
        assert len(runtime.cache) == 5
        assert runtime.cache.stats().invalidations == 0

    def test_concurrent_update_beats_in_flight_write_back(self):
        # A direct UPDATE that lands while a crowd dispatch is in flight
        # makes the stored value authoritative: the late-arriving crowd
        # answer must neither overwrite it in storage nor shadow it from
        # the answer cache.
        conn = make_items_connection(4)
        runtime = conn.acquisition_runtime()
        source = BlockingSource(value=0.9)
        conn.set_value_source(source, batch_size=10)
        source.release.clear()

        results: list[list] = []

        def run() -> None:
            results.append(conn.execute("SELECT item_id, appeal FROM items").fetchall())

        worker = Connection(conn.catalog)
        thread = threading.Thread(target=run)
        thread.start()
        assert source.entered.wait(timeout=5.0)  # dispatch in flight
        worker.execute("UPDATE items SET appeal = ? WHERE item_id = ?", (0.5, 2))
        source.release.set()
        thread.join(timeout=10.0)

        table = conn.catalog.table("items")
        assert table.get(2)["appeal"] == 0.5  # the stored value survived
        assert table.provenance_of("appeal", 2).source == "stored"
        assert runtime.cache.get("items", "appeal", 2) == (False, None)
        # The other three cells were written back as crowd answers.
        assert conn.provenance_counts("items", "appeal")["crowd"] == 3

    def test_delete_evicts_cached_answers(self):
        conn = make_items_connection(4)
        runtime = conn.acquisition_runtime()
        conn.set_value_source(BlockingSource(), batch_size=10)
        conn.session.crowd_write_back = False
        conn.execute("SELECT count(appeal) FROM items").fetchone()
        assert len(runtime.cache) == 4
        conn.execute("DELETE FROM items WHERE item_id = ?", (2,))
        # Rowids are never reused, but dead entries must not squat in the
        # cache's LRU capacity.
        assert len(runtime.cache) == 3

    def test_drop_table_invalidates_cached_answers(self):
        conn = make_items_connection(3)
        runtime = conn.acquisition_runtime()
        conn.set_value_source(BlockingSource(), batch_size=10)
        conn.session.crowd_write_back = False
        conn.execute("SELECT count(appeal) FROM items").fetchone()
        assert len(runtime.cache) == 3
        conn.execute("DROP TABLE items")
        # A re-created table reuses rowids from 1; stale answers must not
        # leak into its cells.
        assert len(runtime.cache) == 0


class TestSharedRuntimeKnobs:
    def test_ignored_session_knobs_warn(self):
        import pytest

        catalog = Catalog()
        first = make_items_connection(2, catalog)
        first.acquisition_runtime()  # shared runtime created with defaults
        second = Connection(catalog, session=SessionContext(answer_cache_ttl=60.0))
        with pytest.warns(RuntimeWarning, match="first-caller-wins"):
            runtime = second.acquisition_runtime()
        # First-caller-wins: the TTL knob did not apply...
        assert runtime.cache.ttl_seconds is None
        # ... and the warning fires once per connection, not per statement.
        import warnings as warnings_module

        with warnings_module.catch_warnings():
            warnings_module.simplefilter("error")
            second.acquisition_runtime()

    def test_ignored_knobs_callback_replaces_warning(self):
        # The server installs on_runtime_knobs_ignored on tenant sessions
        # so mismatches aggregate into one log line instead of warning
        # once per tenant; with the hook set, no RuntimeWarning escapes.
        import warnings as warnings_module

        catalog = Catalog()
        first = make_items_connection(2, catalog)
        first.acquisition_runtime()  # shared runtime created with defaults
        calls: list[int] = []
        session = SessionContext(
            answer_cache_ttl=60.0, on_runtime_knobs_ignored=lambda: calls.append(1)
        )
        second = Connection(catalog, session=session)
        with warnings_module.catch_warnings():
            warnings_module.simplefilter("error")
            second.acquisition_runtime()
        assert calls == [1]
        # Still once per connection, exactly like the warning path.
        second.acquisition_runtime()
        assert calls == [1]

    def test_default_knob_sessions_never_warn(self):
        # A session that never expressed runtime knobs must not be warned
        # about a shared runtime configured by someone else.
        import warnings as warnings_module

        catalog = Catalog()
        pinned = Connection(
            catalog, session=SessionContext(answer_cache_ttl=60.0, answer_cache_size=8)
        )
        pinned.acquisition_runtime()  # creates the shared runtime, custom knobs
        plain = Connection(catalog)
        with warnings_module.catch_warnings():
            warnings_module.simplefilter("error")
            runtime = plain.acquisition_runtime()
        assert runtime.cache.ttl_seconds == 60.0


class TestCrossConnectionCoalescing:
    def test_concurrent_identical_queries_share_one_dispatch(self):
        catalog = Catalog()
        first = make_items_connection(4, catalog)
        second = Connection(catalog)
        source = BlockingSource(value=0.8)
        for conn in (first, second):
            conn.set_value_source(source, batch_size=10)
            conn.session.crowd_write_back = False

        source.release.clear()
        counts: list[int] = []

        def run(conn: Connection) -> None:
            (count,) = conn.execute("SELECT count(appeal) FROM items").fetchone()
            counts.append(count)

        owner = threading.Thread(target=run, args=(first,))
        owner.start()
        assert source.entered.wait(timeout=5.0)  # first dispatch in flight
        joiner = threading.Thread(target=run, args=(second,))
        joiner.start()
        time.sleep(0.05)
        source.release.set()
        owner.join(timeout=10.0)
        joiner.join(timeout=10.0)

        assert counts == [4, 4]
        # One platform dispatch served both connections: the second query's
        # cells were coalesced onto the in-flight batch (or cache-served if
        # the joiner lost the race to the dispatch finishing).
        assert len(source.calls) == 1
        runtime = catalog.acquisition_runtime()
        assert runtime.total_coalesced + runtime.total_cache_hits >= 4


class TestConcurrencyDeterminism:
    ATTRIBUTES = ("funny", "scary", "romantic")

    def run_workload(self, concurrency: int) -> dict[str, dict[int, Any]]:
        """One fresh catalog + seeded simulated crowd, queried once."""
        truth = {
            attribute: {i: (i + offset) % 3 == 0 for i in range(1, 25)}
            for offset, attribute in enumerate(self.ATTRIBUTES)
        }
        session = SessionContext(max_concurrent_batches=concurrency)
        conn = make_items_connection(24, session=session)
        for attribute in self.ATTRIBUTES:
            conn.add_perceptual_column("items", attribute)
        source = SimulatedCrowdValueSource(
            CrowdPlatform(seed=11),
            WorkerPool.build(n_honest=20, n_spammers=3, seed=5),
            truth=truth,
            judgments_per_item=3,
            items_per_hit=8,
            seed=42,
        )
        # Small batches force several dispatches per attribute, so at
        # concurrency 4 their completion order genuinely interleaves.
        conn.set_value_source(source, batch_size=8)
        conn.execute(
            "SELECT item_id, funny, scary, romantic FROM items"
        ).fetchall()
        return {
            attribute: conn.column_values("items", attribute)
            for attribute in self.ATTRIBUTES
        }

    def test_same_answers_at_concurrency_1_and_4(self):
        # Child seeds derive from request identity, so however the four
        # workers interleave the dispatches, every batch reproduces the
        # answers the sequential run obtained.
        assert self.run_workload(1) == self.run_workload(4)


class TestExplainAnalyzeCounters:
    def test_reports_wall_time_cache_hits_and_coalescing(self):
        conn = make_items_connection(4)
        conn.set_value_source(BlockingSource(), batch_size=10)
        conn.session.crowd_write_back = False
        conn.execute("SELECT count(appeal) FROM items").fetchone()
        text = conn.explain_analyze("SELECT count(appeal) FROM items")
        crowd_line = next(line for line in text.splitlines() if "CrowdFill" in line)
        # Second run: every cell comes from the cross-query answer cache.
        assert "cache_hits=4" in crowd_line
        assert "coalesced=0" in crowd_line
        assert "batches=0" in crowd_line
        # Every operator line carries its inclusive wall time.
        for line in text.splitlines():
            assert "time=" in line
