"""Tests for the experiment harness (context plus Tables 1-6, Figures 3-4)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.experiments.boosting import run_boosting_experiments
from repro.experiments.context import (
    MovieExperimentConfig,
    expert_reference_gmeans,
    get_movie_context,
)
from repro.experiments.crowd_quality import run_crowd_quality_experiments
from repro.experiments.neighbors import run_nearest_neighbor_showcase
from repro.experiments.other_domains import (
    get_domain_context,
    run_other_domain_experiment,
    small_scale,
)
from repro.experiments.questionable import run_questionable_experiment
from repro.experiments.reporting import (
    render_boosting_series,
    render_other_domain_table,
    render_table1,
    render_table2,
    render_table3,
    render_table4,
    render_tsvm_rows,
)
from repro.experiments.small_samples import run_small_sample_experiment
from repro.experiments.tsvm_comparison import run_tsvm_comparison
from repro.errors import ExperimentError


@pytest.fixture(scope="module")
def crowd_outcome(movie_context):
    return run_crowd_quality_experiments(movie_context, seed=17)


class TestContext:
    def test_small_config_dimensions(self, movie_context):
        config = movie_context.config
        assert movie_context.space.n_items == config.n_movies
        assert movie_context.space.n_dimensions == config.n_factors
        assert movie_context.metadata_space.n_items == config.n_movies
        assert len(movie_context.crowd_sample) == config.crowd_sample_size

    def test_context_is_cached(self):
        first = get_movie_context(MovieExperimentConfig.small())
        second = get_movie_context(MovieExperimentConfig.small())
        assert first is second

    def test_reference_and_genres(self, movie_context):
        assert set(movie_context.genres) == {
            "Comedy", "Documentary", "Drama", "Family", "Horror", "Romance",
        }
        labels = movie_context.reference_labels("Comedy")
        assert len(labels) == movie_context.config.n_movies

    def test_sample_truth_subset_of_reference(self, movie_context):
        truth = movie_context.sample_truth("Comedy")
        assert set(truth) <= set(movie_context.reference_labels("Comedy"))
        assert len(truth) == len(movie_context.crowd_sample)

    def test_expert_reference_gmeans_in_paper_range(self, movie_context):
        scores = expert_reference_gmeans(
            movie_context.experts, movie_context.reference, "Comedy"
        )
        assert set(scores) == {"Netflix", "RottenTomatoes", "IMDb"}
        assert all(0.85 <= value <= 1.0 for value in scores.values())

    def test_paper_scale_config_exists(self):
        config = MovieExperimentConfig.paper_scale()
        assert config.n_movies == 10_562
        assert config.n_factors == 100


class TestCrowdQuality:
    def test_three_rows_in_order(self, crowd_outcome):
        labels = [row.experiment for row in crowd_outcome.rows]
        assert labels == ["Exp. 1: All", "Exp. 2: Trusted", "Exp. 3: Lookup"]

    def test_accuracy_ordering_matches_paper(self, crowd_outcome):
        exp1, exp2, exp3 = crowd_outcome.rows
        assert exp1.percent_correct < exp2.percent_correct < exp3.percent_correct
        assert exp3.percent_correct > 0.9

    def test_lookup_experiment_is_slowest(self, crowd_outcome):
        exp1, _exp2, exp3 = crowd_outcome.rows
        assert exp3.minutes > exp1.minutes

    def test_costs_and_judgments_positive(self, crowd_outcome):
        for row in crowd_outcome.rows:
            assert row.cost > 0
            assert row.judgments > 0
            assert 0 < row.n_classified <= row.n_items

    def test_runs_returned_for_boosting(self, crowd_outcome):
        assert set(crowd_outcome.runs) == {"exp1", "exp2", "exp3"}

    def test_render_table1(self, crowd_outcome):
        text = render_table1(crowd_outcome.rows)
        assert "Exp. 1: All" in text
        assert "%Correct" in text


class TestBoosting:
    def test_series_structure(self, movie_context, crowd_outcome):
        series = run_boosting_experiments(
            movie_context, crowd_outcome, retrain_every_minutes=15, seed=23
        )
        assert len(series) == 3
        for entry in series:
            assert entry.points, "every series needs at least one checkpoint"
            final = entry.final_point
            assert final.relative_time == pytest.approx(1.0, abs=1e-6)
            assert final.cost > 0

    def test_boosting_beats_crowd_at_the_end(self, movie_context, crowd_outcome):
        series = run_boosting_experiments(
            movie_context, crowd_outcome, retrain_every_minutes=15, seed=23
        )
        # Experiments 4 and 5 (boosting Exp 1/2): the extractor classifies
        # every item, so it should beat the partial crowd coverage.
        for entry in series[:2]:
            final = entry.final_point
            assert final.boosted_correct > final.crowd_correct

    def test_series_render_and_accessors(self, movie_context, crowd_outcome):
        series = run_boosting_experiments(
            movie_context, crowd_outcome, retrain_every_minutes=20, seed=23
        )
        over_time = series[0].correct_over_time()
        over_money = series[0].correct_over_money()
        assert len(over_time) == len(series[0].points)
        assert len(over_money) == len(series[0].points)
        text = render_boosting_series(series)
        assert "boosted correct" in text


class TestSmallSamples:
    @pytest.fixture(scope="class")
    def rows(self, movie_context):
        return run_small_sample_experiment(
            movie_context,
            n_values=(5, 10),
            n_repetitions=2,
            genres=["Comedy", "Horror"],
            seed=11,
        )

    def test_row_structure(self, rows):
        assert [row.genre for row in rows] == ["Comedy", "Horror", "Mean"]
        for row in rows:
            assert set(row.perceptual) == {5, 10}
            assert set(row.metadata) == {5, 10}

    def test_perceptual_space_beats_metadata_space(self, rows):
        mean_row = rows[-1]
        assert mean_row.perceptual[10] > mean_row.metadata[10]
        assert mean_row.perceptual[10] > 0.55

    def test_gmean_grows_with_sample_size(self, rows):
        mean_row = rows[-1]
        assert mean_row.perceptual[10] >= mean_row.perceptual[5] - 0.05

    def test_reference_columns_present(self, rows):
        assert set(rows[0].reference) == {"Netflix", "RottenTomatoes", "IMDb"}

    def test_render_table3(self, rows):
        text = render_table3(rows, n_values=(5, 10))
        assert "Perc n=10" in text
        assert "Mean" in text


class TestQuestionable:
    @pytest.fixture(scope="class")
    def rows(self, movie_context):
        return run_questionable_experiment(
            movie_context,
            noise_levels=(0.1, 0.2),
            n_repetitions=1,
            genres=["Comedy"],
            seed=29,
        )

    def test_row_structure(self, rows):
        assert [row.genre for row in rows] == ["Comedy", "Mean"]
        assert set(rows[0].perceptual) == {10, 20}

    def test_perceptual_space_beats_metadata(self, rows):
        mean_row = rows[-1]
        perceptual_recall = mean_row.perceptual[20][1]
        metadata_recall = mean_row.metadata[20][1]
        assert perceptual_recall > metadata_recall

    def test_values_are_probabilities(self, rows):
        for row in rows:
            for precision, recall in list(row.perceptual.values()) + list(row.metadata.values()):
                if not math.isnan(precision):
                    assert 0.0 <= precision <= 1.0
                if not math.isnan(recall):
                    assert 0.0 <= recall <= 1.0

    def test_render_table4(self, rows):
        text = render_table4(rows, noise_keys=(10, 20))
        assert "Perc x=10%" in text


class TestNeighbors:
    def test_showcase_structure(self, movie_context):
        columns, purity = run_nearest_neighbor_showcase(movie_context, n_anchors=3, k=5)
        assert len(columns) == 3
        for column in columns:
            assert len(column.neighbors) == 5
            assert column.anchor_id not in [n for n, _name, _d in column.neighbors]
            distances = [d for _n, _name, d in column.neighbors]
            assert distances == sorted(distances)
        assert 0.0 <= purity <= 1.0

    def test_purity_beats_random_guessing(self, movie_context):
        _columns, purity = run_nearest_neighbor_showcase(movie_context)
        prevalence = np.mean(list(movie_context.reference_labels("Comedy").values()))
        random_purity = prevalence**2 + (1 - prevalence) ** 2
        assert purity > random_purity

    def test_render_table2(self, movie_context):
        columns, purity = run_nearest_neighbor_showcase(movie_context)
        text = render_table2(columns, purity)
        assert "Nearest neighbours" in text


class TestOtherDomains:
    def test_restaurants_rows(self):
        rows = run_other_domain_experiment(
            "restaurants",
            n_values=(10, 20),
            n_repetitions=1,
            categories=["Category: Fast Food", "Ambience: Trendy"],
            scale=small_scale("restaurants"),
            seed=41,
        )
        assert [row.category for row in rows][-1] == "Mean"
        mean_row = rows[-1]
        assert mean_row.gmeans[20] > 0.5

    def test_boardgames_perceptual_beats_factual(self):
        rows = run_other_domain_experiment(
            "board_games",
            n_values=(20,),
            n_repetitions=2,
            categories=["Party Game", "Modular Board"],
            scale=small_scale("board_games"),
            seed=41,
        )
        by_name = {row.category: row for row in rows}
        assert by_name["Party Game"].gmeans[20] > by_name["Modular Board"].gmeans[20]

    def test_unknown_domain(self):
        with pytest.raises(ExperimentError):
            run_other_domain_experiment("airlines")
        with pytest.raises(ExperimentError):
            get_domain_context("airlines")
        with pytest.raises(ExperimentError):
            small_scale("airlines")

    def test_render_other_domain_table(self):
        rows = run_other_domain_experiment(
            "restaurants",
            n_values=(10,),
            n_repetitions=1,
            categories=["Good For Kids"],
            scale=small_scale("restaurants"),
            seed=3,
        )
        text = render_other_domain_table(rows, title="Table 5", n_values=(10,))
        assert "Table 5" in text


class TestTSVMComparison:
    def test_comparison_rows(self, movie_context):
        rows = run_tsvm_comparison(movie_context, genres=["Comedy"], n_per_class=10, seed=47)
        assert len(rows) == 1
        row = rows[0]
        assert row.tsvm_seconds > row.svm_seconds
        assert row.slowdown > 1.0
        assert abs(row.svm_gmean - row.tsvm_gmean) < 0.35
        text = render_tsvm_rows(rows)
        assert "TSVM" in text
