"""End-to-end integration tests: the full paper workflow on one small corpus."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    DirectCrowdPolicy,
    GoldSampleCollector,
    PerceptualSpacePolicy,
    QuestionableResponseDetector,
    SchemaExpander,
)
from repro.crowd import CrowdPlatform, WorkerPool
from repro.db import Connection
from repro.experiments.questionable import corrupt_labels
from repro.learn.metrics import g_mean


@pytest.fixture(scope="module")
def loaded_db(small_corpus):
    db = Connection()
    db.run_statement(
        "CREATE TABLE movies (item_id INTEGER PRIMARY KEY, name TEXT NOT NULL, year INTEGER)"
    )
    db.insert_rows(
        "movies",
        [
            {"item_id": r["item_id"], "name": r["name"], "year": r["year"]}
            for r in small_corpus.items
        ],
    )
    return db


class TestEndToEndSchemaExpansion:
    def test_figure2_workflow(self, loaded_db, small_corpus, small_space):
        """The full Figure-2 workflow: query -> gold sample -> extraction -> answer."""
        truth = small_corpus.labels_for("Comedy")
        platform = CrowdPlatform(seed=31)
        pool = WorkerPool.build(n_honest=20, n_experts=10, n_spammers=15, seed=31)
        collector = GoldSampleCollector(platform, pool.only_trusted(), seed=31)
        policy = PerceptualSpacePolicy(small_space, collector, gold_sample_size=60, seed=31)
        expander = SchemaExpander(
            loaded_db, policy, key_column="item_id", truth={"is_comedy": truth}
        )
        expander.attach()

        result = loaded_db.run_statement(
            "SELECT name FROM movies WHERE is_comedy = true ORDER BY year DESC LIMIT 10"
        )
        assert 0 < len(result) <= 10

        report = expander.reports[0]
        assert report.coverage == 1.0
        assert report.cost < 5.0

        # Quality of the expanded column against the ground truth.
        values = loaded_db.column_values("movies", "is_comedy")
        keys = loaded_db.column_values("movies", "item_id")
        predictions, labels = [], []
        for rowid, value in values.items():
            item = int(keys[rowid])
            predictions.append(bool(value))
            labels.append(truth[item])
        assert g_mean(np.array(labels), np.array(predictions)) > 0.55

    def test_perceptual_space_cheaper_than_direct_crowd(self, small_corpus, small_space):
        truth = small_corpus.labels_for("Comedy")
        item_ids = sorted(truth)
        platform = CrowdPlatform(seed=37)
        pool = WorkerPool.build(n_honest=25, n_spammers=20, n_experts=10, seed=37)

        crowd_policy = DirectCrowdPolicy(platform, pool, judgments_per_item=10)
        crowd_result = crowd_policy.expand("is_comedy", item_ids, truth)

        collector = GoldSampleCollector(platform, pool.only_trusted(), seed=37)
        space_policy = PerceptualSpacePolicy(small_space, collector, gold_sample_size=60, seed=37)
        space_result = space_policy.expand("is_comedy", item_ids, truth)

        assert space_result.cost < crowd_result.cost / 2
        assert space_result.coverage_count == len(item_ids)
        assert crowd_result.coverage_count <= len(item_ids)

    def test_data_cleaning_workflow(self, small_corpus, small_space):
        """Section 4.4: flag questionable labels, re-verify, quality improves."""
        truth = {
            i: l for i, l in small_corpus.labels_for("Comedy").items() if i in small_space
        }
        corrupted, _swapped = corrupt_labels(truth, 0.2, seed=5)
        detector = QuestionableResponseDetector(small_space, seed=5)
        repaired = detector.repair("is_comedy", corrupted, verified_labels=truth)
        before = np.mean([corrupted[i] == truth[i] for i in truth])
        after = np.mean([repaired[i] == truth[i] for i in truth])
        assert after > before

    def test_public_api_importable(self):
        import repro

        assert repro.__version__
        assert hasattr(repro, "connect")
        assert hasattr(repro, "AcquisitionPolicy")
        assert hasattr(repro, "SchemaExpander")
        assert hasattr(repro, "EuclideanEmbeddingModel")
