"""Shared fixtures for the test suite.

Heavy artefacts (corpora, perceptual spaces, the experiment context) are
session-scoped so the several hundred tests stay fast; everything is built
from fixed seeds so failures are reproducible.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

from repro.datasets.movies import build_movie_corpus

# Hypothesis profiles: the default CI runs keep the stock example budget;
# the nightly deep-tests workflow selects the exhaustive profile with
# ``--hypothesis-profile=nightly`` (deadlines off: shared session fixtures
# make first-example wall-clock noisy on CI runners).
settings.register_profile("ci", settings.default)
settings.register_profile(
    "nightly",
    max_examples=1000,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
from repro.db.connection import Connection
from repro.experiments.context import MovieExperimentConfig, get_movie_context
from repro.perceptual.euclidean_embedding import EuclideanEmbeddingModel
from repro.perceptual.factorization import FactorModelConfig
from repro.perceptual.ratings import RatingDataset


@pytest.fixture(scope="session")
def movie_context():
    """The small movie experiment context shared by experiment tests."""
    return get_movie_context(MovieExperimentConfig.small())


@pytest.fixture(scope="session")
def small_corpus():
    """A small synthetic movie corpus for dataset and core tests."""
    return build_movie_corpus(n_movies=200, n_users=500, ratings_per_user=30, seed=0)


@pytest.fixture(scope="session")
def small_space(small_corpus):
    """A perceptual space trained on the small corpus."""
    model = EuclideanEmbeddingModel(
        FactorModelConfig(n_factors=12, n_epochs=10, seed=0)
    )
    model.fit(small_corpus.ratings)
    return model.to_space()


@pytest.fixture(scope="session")
def tiny_ratings():
    """A tiny deterministic rating dataset (structured, not random)."""
    rng = np.random.default_rng(7)
    items = rng.integers(1, 61, size=4000)
    users = rng.integers(1, 201, size=4000)
    scores = np.clip(np.rint(rng.normal(3.5, 1.0, size=4000)), 1, 5)
    return RatingDataset(items, users, scores)


@pytest.fixture
def movies_db() -> Connection:
    """A fresh connection with a small movies table."""
    db = Connection()
    db.run_statement(
        "CREATE TABLE movies ("
        " movie_id INTEGER PRIMARY KEY,"
        " name TEXT NOT NULL,"
        " year INTEGER,"
        " rating REAL,"
        " humor REAL PERCEPTUAL)"
    )
    db.run_statement(
        "INSERT INTO movies (movie_id, name, year, rating) VALUES "
        "(1, 'Rocky', 1976, 8.1), "
        "(2, 'Psycho', 1960, 8.5), "
        "(3, 'Airplane!', 1980, 7.7), "
        "(4, 'Vertigo', 1958, 8.3), "
        "(5, 'Dirty Dancing', 1987, 7.0)"
    )
    return db


@pytest.fixture
def blob_classification_data():
    """Two separable Gaussian blobs for classifier tests."""
    rng = np.random.default_rng(3)
    n = 60
    X = np.vstack([rng.normal(0.0, 1.0, (n, 6)), rng.normal(2.2, 1.0, (n, 6))])
    y = np.array([False] * n + [True] * n)
    return X, y
