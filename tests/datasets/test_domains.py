"""Tests for the movie, restaurant and board-game corpus builders and experts."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.boardgames import (
    BOARDGAME_CATEGORIES,
    FACTUAL_BOARDGAME_CATEGORIES,
    build_boardgame_corpus,
)
from repro.datasets.experts import (
    build_expert_databases,
    majority_reference,
)
from repro.datasets.movies import MOVIE_GENRES, build_movie_corpus, item_name, popular_item_ids
from repro.datasets.restaurants import RESTAURANT_CATEGORIES, build_restaurant_corpus
from repro.errors import ReproError
from repro.learn.metrics import g_mean


class TestMovieCorpus:
    def test_genres_present(self, small_corpus):
        assert set(small_corpus.ground_truth) == set(MOVIE_GENRES)

    def test_prevalences_roughly_match_spec(self, small_corpus):
        for genre, target in MOVIE_GENRES.items():
            assert small_corpus.prevalence_of(genre) == pytest.approx(target, abs=0.06)

    def test_metadata_documents_cover_all_items(self, small_corpus):
        assert set(small_corpus.metadata_documents) == set(small_corpus.item_ids)
        assert all(len(doc) > 10 for doc in small_corpus.metadata_documents.values())

    def test_items_have_movie_fields(self, small_corpus):
        record = small_corpus.items[0]
        assert {"item_id", "name", "year", "director", "actors", "country"} <= set(record)

    def test_reproducible(self):
        first = build_movie_corpus(n_movies=50, n_users=100, ratings_per_user=10, seed=5)
        second = build_movie_corpus(n_movies=50, n_users=100, ratings_per_user=10, seed=5)
        assert [r["name"] for r in first.items] == [r["name"] for r in second.items]
        assert np.array_equal(first.ratings.scores, second.ratings.scores)

    def test_popular_item_ids(self, small_corpus):
        popular = popular_item_ids(small_corpus, k=3)
        assert len(popular) == 3
        counts = small_corpus.ratings.item_rating_counts()
        top_count = counts.max()
        first_position = small_corpus.ratings.item_position(popular[0])
        assert counts[first_position] == top_count

    def test_item_name_lookup(self, small_corpus):
        item_id = small_corpus.item_ids[0]
        assert item_name(small_corpus, item_id) == small_corpus.items[0]["name"]
        assert item_name(small_corpus, 10**9) == str(10**9)


class TestExpertDatabases:
    def test_expert_labels_are_noisy_but_close(self, small_corpus):
        experts = build_expert_databases(small_corpus.ground_truth, seed=0)
        assert len(experts) == 3
        for expert in experts:
            truth = small_corpus.ground_truth["Comedy"]
            labels = expert.labels_for("Comedy")
            agreement = np.mean([labels[i] == truth[i] for i in truth])
            assert 0.9 < agreement < 1.0

    def test_expert_gmean_against_majority_in_paper_range(self, small_corpus):
        experts = build_expert_databases(small_corpus.ground_truth, seed=0)
        reference = majority_reference(experts)
        for expert in experts:
            truth = reference["Comedy"]
            common = sorted(truth)
            score = g_mean(
                np.array([truth[i] for i in common]),
                np.array([expert.labels["Comedy"][i] for i in common]),
            )
            assert 0.85 < score < 1.0

    def test_majority_reference_covers_items(self, small_corpus):
        experts = build_expert_databases(small_corpus.ground_truth, seed=0)
        reference = majority_reference(experts)
        assert set(reference) == set(small_corpus.ground_truth)
        assert len(reference["Comedy"]) == len(small_corpus.item_ids)

    def test_partial_coverage(self, small_corpus):
        experts = build_expert_databases(small_corpus.ground_truth, coverage=0.8, seed=0)
        labels = experts[0].labels_for("Comedy")
        assert len(labels) < len(small_corpus.item_ids)

    def test_validation(self, small_corpus):
        with pytest.raises(ReproError):
            build_expert_databases(small_corpus.ground_truth, error_rates={})
        with pytest.raises(ReproError):
            build_expert_databases(small_corpus.ground_truth, error_rates={"X": 0.7})
        with pytest.raises(ReproError):
            build_expert_databases(small_corpus.ground_truth, coverage=0.0)
        with pytest.raises(ReproError):
            majority_reference([])

    def test_unknown_category_lookup(self, small_corpus):
        experts = build_expert_databases(small_corpus.ground_truth, seed=0)
        with pytest.raises(ReproError):
            experts[0].labels_for("Western")


class TestOtherDomainCorpora:
    @pytest.fixture(scope="class")
    def restaurants(self):
        return build_restaurant_corpus(n_restaurants=150, n_users=300, ratings_per_user=15, seed=2)

    @pytest.fixture(scope="class")
    def boardgames(self):
        return build_boardgame_corpus(n_games=150, n_users=300, ratings_per_user=20, seed=2)

    def test_restaurant_categories(self, restaurants):
        assert set(restaurants.ground_truth) == set(RESTAURANT_CATEGORIES)
        assert restaurants.name == "restaurants"

    def test_restaurant_metadata(self, restaurants):
        record = restaurants.items[0]
        assert {"cuisine", "neighborhood", "price_level"} <= set(record)

    def test_boardgame_categories(self, boardgames):
        assert set(boardgames.ground_truth) == set(BOARDGAME_CATEGORIES)
        assert boardgames.name == "board_games"

    def test_boardgame_rating_scale(self, boardgames):
        assert boardgames.ratings.scores.max() <= 10.0
        assert boardgames.ratings.scores.min() >= 1.0

    def test_factual_categories_weakly_coupled_to_traits(self, boardgames):
        """Factual categories are mostly random w.r.t. the perceptual traits."""
        for name in FACTUAL_BOARDGAME_CATEGORIES:
            labels = boardgames.labels_for(name)
            prevalence = np.mean(list(labels.values()))
            target = BOARDGAME_CATEGORIES[name]
            assert prevalence == pytest.approx(target, abs=0.12)

    def test_prevalences_within_bounds(self, restaurants):
        for category, target in RESTAURANT_CATEGORIES.items():
            assert restaurants.prevalence_of(category) == pytest.approx(target, abs=0.08)
