"""Tests for the latent-trait world generator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.synthetic import CategorySpec, DomainCorpus, SyntheticWorld, WorldConfig
from repro.errors import ReproError


@pytest.fixture(scope="module")
def world() -> SyntheticWorld:
    return SyntheticWorld(WorldConfig(n_items=120, n_users=300, ratings_per_user=25, seed=1))


class TestWorldConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_items": 1},
            {"n_users": 0},
            {"n_traits": 0},
            {"ratings_per_user": 0},
            {"rating_scale": (5.0, 1.0)},
            {"rating_noise": -1.0},
            {"trait_cluster_count": 0},
        ],
    )
    def test_invalid_config(self, kwargs):
        with pytest.raises(ReproError):
            WorldConfig(**kwargs)


class TestWorldStructure:
    def test_shapes(self, world):
        config = world.config
        assert world.item_traits.shape == (config.n_items, config.n_traits)
        assert world.user_preferences.shape == (config.n_users, config.n_traits)
        assert len(world.item_ids) == config.n_items
        assert len(world.user_ids) == config.n_users

    def test_popularity_is_distribution(self, world):
        assert world.item_popularity.sum() == pytest.approx(1.0)
        assert np.all(world.item_popularity > 0)

    def test_deterministic_given_seed(self):
        config = WorldConfig(n_items=50, n_users=80, seed=9)
        first = SyntheticWorld(config)
        second = SyntheticWorld(config)
        assert np.allclose(first.item_traits, second.item_traits)
        assert np.allclose(first.user_bias, second.user_bias)

    def test_expected_rating_uses_distance(self, world):
        # A user's rating of a close item must exceed that of a distant item
        # (biases held fixed by comparing with the same item/user pair order).
        distances = np.linalg.norm(world.item_traits - world.user_preferences[0], axis=1)
        close, far = int(np.argmin(distances)), int(np.argmax(distances))
        close_rating = world.expected_rating(close, 0) - world.item_bias[close]
        far_rating = world.expected_rating(far, 0) - world.item_bias[far]
        assert close_rating > far_rating


class TestRatingGeneration:
    def test_rating_values_on_scale(self, world):
        ratings = world.generate_ratings()
        low, high = world.config.rating_scale
        assert ratings.scores.min() >= low
        assert ratings.scores.max() <= high
        assert ratings.n_items <= world.config.n_items
        assert ratings.n_users == world.config.n_users

    def test_rating_volume_matches_config(self, world):
        ratings = world.generate_ratings()
        expected = world.config.n_users * world.config.ratings_per_user
        assert 0.7 * expected < ratings.n_ratings < 1.3 * expected

    def test_ratings_reproducible(self, world):
        first = world.generate_ratings(seed=3)
        second = world.generate_ratings(seed=3)
        assert np.array_equal(first.scores, second.scores)

    def test_popular_items_receive_more_ratings(self, world):
        ratings = world.generate_ratings()
        counts = ratings.item_rating_counts()
        assert counts.max() > 3 * max(1, int(np.median(counts)))


class TestCategories:
    def test_make_categories_and_truth(self, world):
        categories = world.make_categories(["A", "B"], prevalences=[0.2, 0.4], seed=0)
        truth = world.ground_truth_for(categories)
        assert set(truth) == {"A", "B"}
        prevalence_a = np.mean(list(truth["A"].values()))
        prevalence_b = np.mean(list(truth["B"].values()))
        assert prevalence_a == pytest.approx(0.2, abs=0.05)
        assert prevalence_b == pytest.approx(0.4, abs=0.05)

    def test_prevalence_validation(self):
        with pytest.raises(ReproError):
            CategorySpec(name="bad", weights=(1.0,), prevalence=1.5)

    def test_mismatched_prevalences(self, world):
        with pytest.raises(ReproError):
            world.make_categories(["A"], prevalences=[0.1, 0.2])

    def test_category_scores_align_with_truth(self, world):
        category = world.make_categories(["A"], prevalences=[0.3], seed=1)[0]
        truth = world.ground_truth_for([category])["A"]
        scores = world.category_scores(category)
        positive_scores = [scores[i] for i, label in truth.items() if label]
        negative_scores = [scores[i] for i, label in truth.items() if not label]
        assert np.mean(positive_scores) > np.mean(negative_scores)


class TestDomainCorpus:
    def test_accessors(self, small_corpus):
        assert isinstance(small_corpus, DomainCorpus)
        assert small_corpus.item_ids == [r["item_id"] for r in small_corpus.items]
        labels = small_corpus.labels_for("Comedy")
        assert set(labels) == set(small_corpus.item_ids)
        assert 0.0 < small_corpus.prevalence_of("Comedy") < 1.0

    def test_unknown_category(self, small_corpus):
        with pytest.raises(ReproError):
            small_corpus.labels_for("Western")

    def test_summary(self, small_corpus):
        summary = small_corpus.summary()
        assert summary["n_items"] == len(small_corpus.items)
        assert summary["n_categories"] == 6
        assert 0.0 < summary["density"] < 1.0
